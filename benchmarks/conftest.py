"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the
paper. Conventions:

* every benchmark runs its experiment exactly once
  (``benchmark.pedantic(..., rounds=1)``) — the *virtual* times inside
  the experiment are the result, the wall time only measures the
  simulator;
* the rendered artifact (the paper-style table/series) is printed and
  also written to ``benchmarks/results/<name>.txt`` so it survives
  pytest's output capture;
* graph sizes honor ``REPRO_SCALE`` (see ``repro.config``).
"""

import pathlib

import pytest

from repro.core import GumConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> str:
    """Print an artifact and persist it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n(written to {path})")
    return text


@pytest.fixture(scope="session")
def gum_config():
    """The full GUM configuration used across experiments.

    Uses the *learned* polynomial cost model (trained once per
    session), exactly as the paper's system does.
    """
    return GumConfig(cost_model="default")


@pytest.fixture(scope="session")
def oracle_config():
    """Oracle-cost-model variant for experiments that isolate policy
    effects from cost-model error (Exp-7 quantifies that error)."""
    return GumConfig(cost_model="oracle")
