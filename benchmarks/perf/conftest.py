"""Shared fixtures for the hot-path performance suite.

``benchmarks/perf`` is the regression harness the ISSUE-2 tentpole
added: it locks in the vectorized per-iteration hot path three ways —

1. **equivalence** (``test_equivalence.py``): the vectorized kernels
   produce bit-identical outputs to straightforward reference
   implementations (the pre-vectorization code, kept here as the
   executable specification);
2. **speedup** (``test_hotpath.py``): the vectorized kernels beat the
   reference implementations by the required factor *measured in the
   same process*, so the check is machine-independent;
3. **baseline gate** (``test_hotpath.py``): machine-normalized scores
   must not regress >30% against ``benchmarks/perf/baseline.json``
   (refresh with ``python -m repro bench --update-baseline``).

The suite also emits ``BENCH_hotpath.json`` (repo root by default,
``REPRO_BENCH_OUT`` overrides), which CI uploads as an artifact.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.bench import perfharness

PERF_DIR = pathlib.Path(__file__).parent
BASELINE_PATH = PERF_DIR / "baseline.json"


@pytest.fixture(scope="session")
def bench_report():
    """Run the microbenchmark suite once per session and persist it."""
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))
    report = perfharness.run_suite(repeats=repeats)
    out = os.environ.get("REPRO_BENCH_OUT", "BENCH_hotpath.json")
    perfharness.write_report(report, out)
    print(f"\n{perfharness.format_report(report)}\nreport: {out}")
    return report


@pytest.fixture(scope="session")
def problem_64x8():
    """The ISSUE's 8-GPU x 64-fragment FSteal microbench instance."""
    return perfharness._random_problem(64, 8)


# ----------------------------------------------------------------------
# Reference (pre-vectorization) implementations: the executable spec
# the vectorized kernels must match bit for bit.
# ----------------------------------------------------------------------
def naive_assembly(problem):
    """The legacy nested-loop constraint assembly of ``_lp_relaxation``.

    Returns (c, a_ub, a_eq, b_eq, allowed, num_x) with the same
    variable ordering the vectorized assembler uses.
    """
    from repro.core.milp import _cost_scale

    scale = _cost_scale(problem.costs)
    costs, workloads = problem.costs / scale, problem.workloads
    n_frag, n_work = problem.num_fragments, problem.num_workers
    allowed = np.isfinite(costs) & (workloads[:, None] > 0)
    var_index = -np.ones((n_frag, n_work), dtype=np.int64)
    var_index[allowed] = np.arange(int(allowed.sum()))
    num_x = int(allowed.sum())
    num_vars = num_x + 1
    c = np.zeros(num_vars)
    c[-1] = 1.0
    a_ub = np.zeros((n_work, num_vars))
    for i in range(n_frag):
        for j in range(n_work):
            if allowed[i, j]:
                a_ub[j, var_index[i, j]] = costs[i, j]
    a_ub[:, -1] = -1.0
    rows = [i for i in range(n_frag) if workloads[i] > 0]
    a_eq = np.zeros((len(rows), num_vars))
    for r, i in enumerate(rows):
        for j in range(n_work):
            if allowed[i, j]:
                a_eq[r, var_index[i, j]] = 1.0
    b_eq = workloads[rows].astype(np.float64)
    return c, a_ub, a_eq, b_eq, allowed, num_x


def naive_tree_predict(model, features):
    """The legacy per-row Python ``while`` traversal of the CART tree."""
    features = np.atleast_2d(np.asarray(features, dtype=np.float64))
    out = np.empty(features.shape[0])
    for row in range(features.shape[0]):
        node = 0
        while True:
            feature, value, left, right = model._nodes[node]
            if feature < 0:
                out[row] = value
                break
            node = left if features[row, feature] <= value else right
    return np.exp(out) / 1e9


def naive_price_chunks(engine, plan, fragment_features, context,
                       num_workers):
    """The legacy per-chunk Python pricing loop of ``_run_iteration``."""
    from repro import config

    timing = engine.timing
    busy = np.zeros(num_workers)
    compute_part = np.zeros(num_workers)
    comm_part = np.zeros(num_workers)
    for chunk in plan.chunks:
        if chunk.edges == 0:
            continue
        features = fragment_features[chunk.owner]
        compute = timing.compute_seconds(chunk.edges, features)
        home = int(context.fragment_home[chunk.owner])
        remote_edges = chunk.edges - chunk.hub_edges
        comm = remote_edges * timing.comm_seconds_per_edge(
            home, chunk.worker
        ) + chunk.hub_edges * timing.comm_seconds_per_edge(
            chunk.worker, chunk.worker
        )
        if chunk.worker != home:
            comm += timing.transfer_seconds(
                home, chunk.worker,
                chunk.vertices.size * config.BYTES_PER_VERTEX,
            )
        if engine.options.kernel_per_chunk:
            compute += timing.kernel_launch_seconds(1)
        busy[chunk.worker] += compute + comm
        compute_part[chunk.worker] += compute
        comm_part[chunk.worker] += comm
    return busy, compute_part, comm_part
