"""Execution-backend gates: speedup floor and coordination budget.

The shared-memory backend exists for exactly one reason — wall-clock —
and is only allowed to buy it without touching anything else. This
suite pins both sides of that bargain:

1. **speedup floor**: on a multi-core host (CI runners have >= 4
   vCPUs) the shmem superstep over the big generated graph must beat
   the serial superstep by ``SPEEDUP_FLOOR``. Both sides are measured
   in the same process on the same host, so the check transfers
   between machines. Hosts without enough cores skip (a process pool
   cannot beat a serial loop on one core).
2. **coordination budget**: the session's self-measured host overhead
   (task dispatch + result collection, from
   ``RunResult.backend_stats``) must stay a small per-task cost — the
   backend parallelizes array crunching, not queue juggling.

The ``backend.*`` cases also feed the calibrated ``baseline.json``
regression gate via the shared ``bench_report`` fixture.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.backend.shared import live_block_names
from repro.bench import perfharness
from repro.graph import datasets

SPEEDUP_FLOOR = 2.0
#: host seconds of queue traffic per dispatched task, amortized
COORDINATION_BUDGET_PER_TASK = 0.010
BEST_OF = 3


def _best_superstep_seconds(superstep) -> float:
    timing = perfharness.time_callable(
        superstep, repeats=BEST_OF, min_seconds=0.05
    )
    return timing.seconds


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="shmem speedup needs >= 4 cores for 4 worker processes",
)
def test_shmem_superstep_speedup():
    serial_session, serial_step = perfharness._backend_fixture("serial")
    try:
        serial_seconds = _best_superstep_seconds(serial_step)
    finally:
        serial_session.close()
    shmem_session, shmem_step = perfharness._backend_fixture("shmem")
    try:
        shmem_seconds = _best_superstep_seconds(shmem_step)
    finally:
        shmem_session.close()
    ratio = serial_seconds / shmem_seconds
    print(f"\nshmem superstep speedup: {ratio:.2f}x "
          f"(serial {serial_seconds * 1e3:.1f} ms, "
          f"shmem {shmem_seconds * 1e3:.1f} ms)")
    assert live_block_names() == ()
    assert ratio >= SPEEDUP_FLOOR


def test_shmem_coordination_overhead_budget():
    """Dispatch+collect host seconds per task stay under budget.

    Collection *waits* for workers, so the waited-on compute is part
    of the measurement only on an oversubscribed host; the per-task
    budget is sized for the steady state where dispatch and collect
    are queue traffic. A full TX/bfs run (hundreds of supersteps)
    amortizes worker startup out of the picture.
    """
    graph = datasets.load("TX")
    result = repro.run(graph, "bfs", num_gpus=4, backend="shmem",
                       source=0)
    stats = result.backend_stats
    assert stats is not None and stats["tasks"] > 0
    per_task = (
        stats["dispatch_seconds"] + stats["collect_seconds"]
    ) / stats["tasks"]
    print(f"\ncoordination: {per_task * 1e6:.0f} us/task over "
          f"{stats['tasks']} tasks "
          f"(startup {stats['startup_seconds']:.2f} s)")
    assert live_block_names() == ()
    assert per_task < COORDINATION_BUDGET_PER_TASK


def test_backend_cases_in_report(bench_report):
    """The backend.* family is measured and lands in the report."""
    names = set(bench_report["benchmarks"])
    assert "backend.serial.superstep.rmat16.4w" in names
    assert "backend.shmem.superstep.rmat16.4w" in names
