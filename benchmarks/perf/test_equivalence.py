"""Bit-identity checks: vectorized hot path vs reference loops.

Each test compares a vectorized kernel against the straightforward
nested-loop implementation it replaced (kept in ``conftest.py`` as the
executable specification).  Everything is compared with
``np.array_equal`` — the vectorization must be *exact*, not merely
close, so solver decisions cannot drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from conftest import naive_assembly, naive_price_chunks, naive_tree_predict
from repro.bench import perfharness
from repro.core.milp import (
    HiGHSSolver,
    _assemble_constraints,
    make_solver,
)


@pytest.mark.parametrize("n_frag,n_work,seed", [
    (8, 8, 0), (64, 8, 0), (64, 8, 7), (16, 4, 3), (1, 1, 0),
])
def test_dense_assembly_bit_identical(n_frag, n_work, seed):
    problem = perfharness._random_problem(n_frag, n_work, seed=seed)
    c, a_ub, a_eq, b_eq, allowed, num_x = naive_assembly(problem)
    system = _assemble_constraints(problem)
    assert system.num_x == num_x
    assert np.array_equal(system.allowed, allowed)
    assert np.array_equal(system.c, c)
    assert np.array_equal(system.a_ub, a_ub)
    assert np.array_equal(system.a_eq, a_eq)
    assert np.array_equal(system.b_eq, b_eq)


def test_sparse_assembly_matches_dense(problem_64x8):
    dense = _assemble_constraints(problem_64x8)
    sparse_sys = _assemble_constraints(problem_64x8, use_sparse=True)
    assert np.array_equal(sparse_sys.a_ub.toarray(), dense.a_ub)
    assert np.array_equal(sparse_sys.a_eq.toarray(), dense.a_eq)
    assert np.array_equal(sparse_sys.c, dense.c)
    assert sparse_sys.scale == dense.scale


def test_lp_solution_matches_naive_matrices(problem_64x8):
    """linprog over naive matrices == linprog inside ``_lp_relaxation``."""
    c, a_ub, a_eq, b_eq, allowed, num_x = naive_assembly(problem_64x8)
    b_ub = np.zeros(a_ub.shape[0])
    reference = linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=(0, None), method="highs",
    )
    assert reference.success
    solver = make_solver("lp")
    solution = solver.solve(problem_64x8)
    problem_64x8.validate_assignment(solution.assignment)
    # The LP inputs are bit-identical, so the relaxation value the
    # rounding starts from must be too.
    system = _assemble_constraints(problem_64x8)
    vectorized = linprog(
        system.c, A_ub=system.a_ub, b_ub=system.b_ub,
        A_eq=system.a_eq, b_eq=system.b_eq,
        bounds=(0, None), method="highs",
    )
    assert vectorized.fun == reference.fun
    assert np.array_equal(vectorized.x, reference.x)


def test_highs_objective_matches_naive_matrices(problem_64x8):
    """The sparse-assembled MILP reproduces the dense formulation."""
    c, a_ub, a_eq, b_eq, allowed, num_x = naive_assembly(problem_64x8)
    integrality = np.ones(num_x + 1)
    integrality[-1] = 0.0
    reference = milp(
        c,
        constraints=[
            LinearConstraint(a_ub, -np.inf, np.zeros(a_ub.shape[0])),
            LinearConstraint(a_eq, b_eq, b_eq),
        ],
        integrality=integrality,
        bounds=Bounds(lb=0.0),
    )
    assert reference.success
    solution = HiGHSSolver().solve(problem_64x8)
    problem_64x8.validate_assignment(solution.assignment)
    scale = _assemble_constraints(problem_64x8).scale
    assert solution.objective == pytest.approx(
        reference.fun * scale, rel=1e-9
    )


def test_tree_predict_bit_identical():
    from repro.core.costmodel import DecisionTreeModel

    rng = np.random.default_rng(1)
    train = rng.uniform(0.0, 200.0, size=(512, 6))
    costs = np.exp(rng.normal(-20.0, 0.4, size=512))
    model = DecisionTreeModel()
    model.fit(train, costs)
    batch = rng.uniform(0.0, 200.0, size=(2048, 6))
    assert np.array_equal(model.predict(batch),
                          naive_tree_predict(model, batch))


def test_pricing_bit_identical():
    engine, plan, features, context, n_gpus = (
        perfharness._pricing_fixture()
    )
    vec = engine._price_chunks(plan, features, context, n_gpus)
    ref = naive_price_chunks(engine, plan, features, context, n_gpus)
    for got, want in zip(vec, ref):
        assert np.array_equal(got, want)


def test_pricing_empty_plan_is_zero():
    from repro.runtime.scheduler import IterationPlan

    engine, _plan, features, context, n_gpus = (
        perfharness._pricing_fixture()
    )
    empty = IterationPlan(chunks=[], active_workers=[0])
    busy, compute, comm = engine._price_chunks(
        empty, features, context, n_gpus
    )
    assert not busy.any() and not compute.any() and not comm.any()


# ----------------------------------------------------------------------
# ISSUE-4: decision amortization equivalence.
#
# ``amortize=False`` must reproduce pre-amortization virtual times bit
# for bit (the committed reference was recorded with ``--no-amortize``
# and its total matches the pre-amortization seed exactly);
# ``amortize=True`` must keep answers and iteration counts identical
# and land within tolerance on the virtual clock.
# ----------------------------------------------------------------------
import json

from conftest import PERF_DIR

REFERENCE_BFS_MANIFEST = (
    PERF_DIR.parent / "reference" / "tx-bfs-4gpu" / "manifest.json"
)


def test_amortize_disabled_bit_identical_to_reference(capsys):
    from repro.cli import main

    manifest = json.loads(REFERENCE_BFS_MANIFEST.read_text())
    assert manifest["fingerprint"]["workload"]["amortize"] is False
    code = main([
        "run", "--graph", "TX", "--algorithm", "bfs",
        "--engine", "gum", "--gpus", "4", "--cost-model", "oracle",
        "--no-amortize", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_ms"] == manifest["summary"]["total_ms"]
    assert payload["iterations"] == manifest["summary"]["iterations"]


def test_amortization_preserves_results_within_tolerance():
    from repro.core import GumConfig, GumEngine
    from repro.graph import road_network, with_random_weights
    from repro.hardware import dgx1
    from repro.partition import random_partition

    graph = with_random_weights(road_network(6, 80, seed=3), seed=1)
    partition = random_partition(graph, 8, seed=0)

    def run(config):
        return GumEngine(dgx1(8), config=config).run(
            graph, partition, "sssp", source=0
        )

    exact = run(GumConfig(cost_model="oracle", amortize=False))
    exact_again = run(GumConfig(cost_model="oracle", amortize=False))
    amortized = run(GumConfig(cost_model="oracle", amortize=True))

    # exact mode is deterministic down to the bit
    assert exact.total_seconds == exact_again.total_seconds
    # amortization never changes answers or the iteration structure
    assert np.array_equal(exact.values, amortized.values)
    assert exact.num_iterations == amortized.num_iterations
    # the virtual clock stays within tolerance of the exact path
    ratio = amortized.total_seconds / exact.total_seconds
    assert 0.85 <= ratio <= 1.15
