"""Speedup floor and baseline regression gate for the hot path.

The ISSUE-2 acceptance criterion — "LP/MILP constraint assembly and
per-iteration pricing show >=3x speedup on the 8-GPU x 64-fragment
microbench" — is asserted here by timing the vectorized kernel against
the reference loop *in the same process*, which makes the check hold
on any machine.  The committed ``baseline.json`` gate then guards
against future regressions using calibration-normalized scores.
"""

from __future__ import annotations

import os

import pytest

from conftest import (
    BASELINE_PATH,
    naive_assembly,
    naive_price_chunks,
    naive_tree_predict,
)
from repro.bench import perfharness
from repro.core.milp import _assemble_constraints

SPEEDUP_FLOOR = 3.0


def _speedup(reference, candidate, repeats=5, min_seconds=0.05):
    ref = perfharness.time_callable(
        reference, repeats=repeats, min_seconds=min_seconds
    )
    new = perfharness.time_callable(
        candidate, repeats=repeats, min_seconds=min_seconds
    )
    return ref.seconds / new.seconds


def test_assembly_speedup(problem_64x8):
    ratio = _speedup(
        lambda: naive_assembly(problem_64x8),
        lambda: _assemble_constraints(problem_64x8),
    )
    print(f"\nconstraint assembly speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR


def test_pricing_speedup():
    engine, plan, features, context, n_gpus = (
        perfharness._pricing_fixture()
    )
    ratio = _speedup(
        lambda: naive_price_chunks(
            engine, plan, features, context, n_gpus
        ),
        lambda: engine._price_chunks(plan, features, context, n_gpus),
    )
    print(f"\nchunk pricing speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR


def test_tree_predict_speedup():
    from repro.core.costmodel import DecisionTreeModel
    import numpy as np

    rng = np.random.default_rng(1)
    train = rng.uniform(0.0, 200.0, size=(512, 6))
    costs = np.exp(rng.normal(-20.0, 0.4, size=512))
    model = DecisionTreeModel()
    model.fit(train, costs)
    batch = rng.uniform(0.0, 200.0, size=(4096, 6))
    ratio = _speedup(
        lambda: naive_tree_predict(model, batch),
        lambda: model.predict(batch),
    )
    print(f"\ntree predict speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR


def test_bench_report_schema(bench_report):
    assert bench_report["schema"] == perfharness.SCHEMA
    assert bench_report["calibration_seconds"] > 0
    cases = bench_report["benchmarks"]
    assert set(perfharness.BENCH_CASES) == set(cases)
    for name, entry in cases.items():
        assert entry["seconds"] > 0, name
        assert entry["score"] > 0, name


def test_no_regression_vs_baseline(bench_report):
    if os.environ.get("REPRO_BENCH_SKIP_GATE"):
        pytest.skip("gate disabled via REPRO_BENCH_SKIP_GATE")
    if not BASELINE_PATH.exists():
        pytest.skip(
            "no committed baseline; run "
            "`python -m repro bench --update-baseline`"
        )
    baseline = perfharness.load_report(BASELINE_PATH)
    regressions = perfharness.compare_reports(bench_report, baseline)
    # Only fail on regressions that reproduce on a fresh measurement —
    # transient host noise (CPU contention, frequency scaling) does not.
    confirmed = perfharness.confirm_regressions(regressions, baseline)
    assert not confirmed, "\n" + perfharness.format_regressions(
        confirmed
    )


# ----------------------------------------------------------------------
# ISSUE-4: decision amortization must cut the per-iteration decision
# path by >=3x on the tail-heavy road workload (measured in-process,
# against the same arbitrator with amortization disabled).
# ----------------------------------------------------------------------
def test_decision_iteration_amortization_speedup():
    cold = perfharness.BENCH_CASES[
        "decision.iteration.cold.tailTX.8gpu"
    ].setup()
    amortized = perfharness.BENCH_CASES[
        "decision.iteration.amortized.tailTX.8gpu"
    ].setup()
    ratio = _speedup(cold, amortized)
    print(f"\ndecision amortization speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR


def test_osteal_bracket_speedup():
    scan = perfharness.BENCH_CASES["decision.osteal.scan.8gpu"].setup()
    bracket = perfharness.BENCH_CASES[
        "decision.osteal.bracket.8gpu"
    ].setup()
    ratio = _speedup(scan, bracket)
    print(f"\nosteal bracket-search speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR


def test_plan_cache_hit_beats_cold_solve():
    cold = perfharness.BENCH_CASES["decision.fsteal.cold.64x8"].setup()
    cached = perfharness.BENCH_CASES[
        "decision.fsteal.cached.64x8"
    ].setup()
    ratio = _speedup(cold, cached)
    print(f"\nplan-cache hit speedup: {ratio:.1f}x")
    assert ratio >= SPEEDUP_FLOOR
