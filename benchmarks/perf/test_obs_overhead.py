"""Observability self-cost budget: streaming must stay under 3%.

The live-telemetry tentpole makes observability default-on for any
instrumented run, which is only tenable if the instruments pay for
themselves: the engine self-measures the host seconds spent inside
span/metric emission (``RunResult.obs_seconds``) and reports it as
``obs_overhead_pct`` of run wall time. This suite pins that number
under the 3% budget and proves the virtual clock is untouched — a
streamed run and a silent run must charge bit-identical simulated
time, or observability would perturb the physics it observes.

Overhead is measured best-of-N (noise only ever inflates the
percentage, never deflates it), mirroring ``time_callable``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import perfharness
from repro.bench.workloads import (
    algorithm_params,
    cached_partition,
    make_engine,
    prepare_graph,
)
from repro.core import GumConfig
from repro.obs import InMemorySink, MetricsRegistry, StreamingSink, Tracer

OVERHEAD_BUDGET_PCT = 3.0
BEST_OF = 3


def _run_tx_bfs(stream: bool):
    """One fully instrumented TX/bfs/4gpu run, optionally streaming."""
    metrics = MetricsRegistry()
    sinks = [InMemorySink()]
    devnull = None
    if stream:
        devnull = open(os.devnull, "w")
        sinks.append(StreamingSink(devnull, metrics=metrics))
    tracer = Tracer(sinks=sinks)
    engine = make_engine("gum", num_gpus=4, tracer=tracer, metrics=metrics)
    graph = prepare_graph("TX", "bfs")
    partition = cached_partition(graph, 4)
    result = engine.run(graph, partition, "bfs",
                        **algorithm_params("bfs", "TX"))
    for sink in sinks:
        sink.close()
    if devnull is not None:
        devnull.close()
    return result


def test_streaming_overhead_within_budget():
    """obs_overhead_pct < 3% with live streaming + metrics attached."""
    _run_tx_bfs(stream=True)  # warm caches outside the measurement
    best = min(
        _run_tx_bfs(stream=True).obs_overhead_pct()
        for _ in range(BEST_OF)
    )
    print(f"\nstreaming obs overhead (best of {BEST_OF}): {best:.2f}%")
    assert best is not None
    assert best < OVERHEAD_BUDGET_PCT


def test_untraced_run_reports_zero_overhead():
    """With no observers the engine spends nothing on observability."""
    engine = make_engine("gum", num_gpus=4)
    graph = prepare_graph("TX", "bfs")
    partition = cached_partition(graph, 4)
    result = engine.run(graph, partition, "bfs",
                        **algorithm_params("bfs", "TX"))
    assert result.obs_seconds == 0.0
    assert result.run_wall_seconds > 0.0
    assert result.obs_overhead_pct() == 0.0


def test_streaming_never_touches_virtual_clock():
    """Streamed and silent runs charge bit-identical simulated time."""
    silent = _run_tx_bfs(stream=False)
    streamed = _run_tx_bfs(stream=True)
    assert streamed.total_ms == silent.total_ms
    assert streamed.timeseries() == silent.timeseries()


def _run_tx_bfs_ledger(ledger: bool):
    """One metrics-instrumented TX/bfs/4gpu run, recording on or off.

    Both sides carry a registry so the cost-model prediction audit —
    part of the instrumented feed since before the ledger existed —
    runs identically in each; the wall-time delta isolates what the
    ledger itself adds.
    """
    engine = make_engine("gum", num_gpus=4, metrics=MetricsRegistry(),
                         gum_config=GumConfig(ledger=ledger))
    graph = prepare_graph("TX", "bfs")
    partition = cached_partition(graph, 4)
    return engine.run(graph, partition, "bfs",
                      **algorithm_params("bfs", "TX"))


def test_ledger_recording_within_budget():
    """Default-on decision recording fits inside the 3% obs budget.

    The ledger has no self-measurement hook of its own (it runs inside
    plan(), not the emit path), so the budget is pinned on host wall
    time directly: recording may cost at most the obs budget's share
    of the fastest recording-off instrumented run.
    """
    _run_tx_bfs_ledger(True)  # warm caches outside the measurement
    # each round is a back-to-back off/on pair, so host-speed drift
    # (thermal, noisy neighbors) hits both sides of one delta alike;
    # the best round is the cleanest measurement of the marginal cost,
    # which unpaired noise can only overstate
    rounds = []
    for _ in range(2 * BEST_OF):
        off = _run_tx_bfs_ledger(False).run_wall_seconds
        on = _run_tx_bfs_ledger(True).run_wall_seconds
        rounds.append((on - off) / off)
    overhead_pct = 100.0 * max(0.0, min(rounds))
    print(f"\nledger recording overhead (best of {2 * BEST_OF} "
          f"paired rounds): {overhead_pct:.2f}%")
    assert overhead_pct < OVERHEAD_BUDGET_PCT


def test_ledger_recording_never_touches_virtual_clock():
    """Recording on and off charge bit-identical simulated time."""
    on = _run_tx_bfs_ledger(True)
    off = _run_tx_bfs_ledger(False)
    assert on.ledger is not None and off.ledger is None
    assert on.total_ms == off.total_ms
    assert on.timeseries() == off.timeseries()


def test_obs_bench_family_registered():
    """The obs.* cases exist so the suite gate covers emission cost."""
    obs_cases = sorted(
        name for name in perfharness.BENCH_CASES if name.startswith("obs.")
    )
    assert obs_cases == [
        "obs.emit.iteration",
        "obs.ledger_overhead.analytics",
        "obs.ledger_overhead.record",
        "obs.prom.render",
        "obs.slo.check",
        "obs.snapshot.light",
        "obs.stream.span",
    ]


def test_obs_bench_cases_run(bench_report):
    """Every obs.* case produces a finite positive timing in the suite."""
    benchmarks = bench_report["benchmarks"]
    for name in perfharness.BENCH_CASES:
        if not name.startswith("obs."):
            continue
        assert name in benchmarks
        assert benchmarks[name]["seconds"] > 0.0
        assert benchmarks[name]["score"] > 0.0
