"""Observability self-cost budget: streaming must stay under 3%.

The live-telemetry tentpole makes observability default-on for any
instrumented run, which is only tenable if the instruments pay for
themselves: the engine self-measures the host seconds spent inside
span/metric emission (``RunResult.obs_seconds``) and reports it as
``obs_overhead_pct`` of run wall time. This suite pins that number
under the 3% budget and proves the virtual clock is untouched — a
streamed run and a silent run must charge bit-identical simulated
time, or observability would perturb the physics it observes.

Overhead is measured best-of-N (noise only ever inflates the
percentage, never deflates it), mirroring ``time_callable``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import perfharness
from repro.bench.workloads import (
    algorithm_params,
    cached_partition,
    make_engine,
    prepare_graph,
)
from repro.obs import InMemorySink, MetricsRegistry, StreamingSink, Tracer

OVERHEAD_BUDGET_PCT = 3.0
BEST_OF = 3


def _run_tx_bfs(stream: bool):
    """One fully instrumented TX/bfs/4gpu run, optionally streaming."""
    metrics = MetricsRegistry()
    sinks = [InMemorySink()]
    devnull = None
    if stream:
        devnull = open(os.devnull, "w")
        sinks.append(StreamingSink(devnull, metrics=metrics))
    tracer = Tracer(sinks=sinks)
    engine = make_engine("gum", num_gpus=4, tracer=tracer, metrics=metrics)
    graph = prepare_graph("TX", "bfs")
    partition = cached_partition(graph, 4)
    result = engine.run(graph, partition, "bfs",
                        **algorithm_params("bfs", "TX"))
    for sink in sinks:
        sink.close()
    if devnull is not None:
        devnull.close()
    return result


def test_streaming_overhead_within_budget():
    """obs_overhead_pct < 3% with live streaming + metrics attached."""
    _run_tx_bfs(stream=True)  # warm caches outside the measurement
    best = min(
        _run_tx_bfs(stream=True).obs_overhead_pct()
        for _ in range(BEST_OF)
    )
    print(f"\nstreaming obs overhead (best of {BEST_OF}): {best:.2f}%")
    assert best is not None
    assert best < OVERHEAD_BUDGET_PCT


def test_untraced_run_reports_zero_overhead():
    """With no observers the engine spends nothing on observability."""
    engine = make_engine("gum", num_gpus=4)
    graph = prepare_graph("TX", "bfs")
    partition = cached_partition(graph, 4)
    result = engine.run(graph, partition, "bfs",
                        **algorithm_params("bfs", "TX"))
    assert result.obs_seconds == 0.0
    assert result.run_wall_seconds > 0.0
    assert result.obs_overhead_pct() == 0.0


def test_streaming_never_touches_virtual_clock():
    """Streamed and silent runs charge bit-identical simulated time."""
    silent = _run_tx_bfs(stream=False)
    streamed = _run_tx_bfs(stream=True)
    assert streamed.total_ms == silent.total_ms
    assert streamed.timeseries() == silent.timeseries()


def test_obs_bench_family_registered():
    """The obs.* cases exist so the suite gate covers emission cost."""
    obs_cases = sorted(
        name for name in perfharness.BENCH_CASES if name.startswith("obs.")
    )
    assert obs_cases == [
        "obs.emit.iteration",
        "obs.prom.render",
        "obs.slo.check",
        "obs.snapshot.light",
        "obs.stream.span",
    ]


def test_obs_bench_cases_run(bench_report):
    """Every obs.* case produces a finite positive timing in the suite."""
    benchmarks = bench_report["benchmarks"]
    for name in perfharness.BENCH_CASES:
        if not name.startswith("obs."):
            continue
        assert name in benchmarks
        assert benchmarks[name]["seconds"] > 0.0
        assert benchmarks[name]["score"] > 0.0
