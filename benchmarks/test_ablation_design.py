"""Ablations — remaining design choices from DESIGN.md §6.

* activation thresholds t1/t2/t3 (always-steal vs gated vs never),
* hub caching on/off,
* cost-model arm (oracle / learned / uniform) on a DLB-heavy workload.
"""

from conftest import emit
from repro.bench import Cell, run_cell
from repro.core import GumConfig


def _run_thresholds(model):
    arms = {
        "never": GumConfig(fsteal=False, osteal=False, cost_model=model),
        "gated (default)": GumConfig(cost_model=model),
        "always": GumConfig(
            cost_model=model, t1_min_edges=0, t2_imbalance_edges=0,
            t2_imbalance_ratio=0.0, t3_runtime_seconds=1.0,
            osteal_cooldown=1,
        ),
    }
    lines = ["Ablation: stealing-activation thresholds "
             "(SSSP on WB, 8 GPUs)", "",
             "policy            total(ms)  overhead(ms)  steals"]
    totals = {}
    for name, config in arms.items():
        result = run_cell(Cell("gum", "sssp", "WB", 8),
                          gum_config=config)
        totals[name] = result.total_seconds
        steals = sum(r.fsteal_applied for r in result.iterations)
        lines.append(
            f"{name:16s}  {result.total_ms:9.1f}  "
            f"{result.breakdown.overhead * 1e3:12.2f}  {steals:6d}"
        )
    return lines, totals


def _run_hub_cache(model):
    lines = ["", "Ablation: hub caching (SSSP on SW, seg partition)",
             "", "arm        total(ms)"]
    totals = {}
    for name, hub in (("hub on", True), ("hub off", False)):
        config = GumConfig(cost_model=model, hub_cache=hub,
                           t4_hub_in_degree=32)
        result = run_cell(
            Cell("gum", "sssp", "SW", 8, "seg"), gum_config=config
        )
        totals[name] = result.total_seconds
        lines.append(f"{name:9s}  {result.total_ms:9.1f}")
    return lines, totals


def _run_cost_model_arms():
    lines = ["", "Ablation: cost-model arm (SSSP on SW, 8 GPUs)", "",
             "arm       total(ms)"]
    totals = {}
    for arm in ("oracle", "default", "uniform"):
        result = run_cell(Cell("gum", "sssp", "SW", 8),
                          gum_config=GumConfig(cost_model=arm))
        totals[arm] = result.total_seconds
        lines.append(f"{arm:8s}  {result.total_ms:9.1f}")
    return lines, totals


def _run_all(gum_config):
    model = gum_config.cost_model
    t_lines, thresholds = _run_thresholds(model)
    h_lines, hubs = _run_hub_cache(model)
    c_lines, arms = _run_cost_model_arms()
    return "\n".join(t_lines + h_lines + c_lines), thresholds, hubs, arms


def test_ablation_design_choices(benchmark, gum_config):
    text, thresholds, hubs, arms = benchmark.pedantic(
        _run_all, args=(gum_config,), rounds=1, iterations=1
    )
    emit("ablation_design", text)
    # gated stealing beats never stealing
    assert thresholds["gated (default)"] < thresholds["never"]
    # gating does not lose much versus always-steal (and avoids its
    # overhead on sparse iterations)
    assert thresholds["gated (default)"] < thresholds["always"] * 1.15
    # hub caching never hurts on a hub-heavy graph
    assert hubs["hub on"] <= hubs["hub off"] * 1.01
    # the learned model lands between uniform and oracle
    assert arms["oracle"] <= arms["default"] * 1.05
    assert arms["default"] <= arms["uniform"] * 1.10
