"""Ablation — estimate-and-reassign vs classic peek-and-grab stealing.

Exp-3 argues GUM balances better than "general work stealing methods
[that] follow the peek-and-grap style which relies on the unpredictable
behaviors of each worker at runtime" — but the paper never measures
that contrast. This ablation does: the same BSP engine runs three
policies on the same DLB-heavy workloads:

* ``bsp``        — no stealing (the straggler baseline);
* ``peeksteal``  — reactive Cilk-style stealing: idle workers grab half
  of the most-loaded peer's queue, blind to costs and topology;
* ``gum``        — planned stealing with the learned cost model.
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, run_cell

GRAPHS = ("SW", "OR", "WB")


def _run_contrast(gum_config):
    lines = [
        "Ablation: planned (GUM) vs reactive (peek-and-grab) stealing "
        "— SSSP, 8 GPUs",
        "",
        "graph  policy      total(ms)  stall  stolen_edges",
    ]
    totals = {}
    for graph in GRAPHS:
        for engine in ("bsp", "peeksteal", "gum"):
            result = run_cell(
                Cell(engine, "sssp", graph, 8), gum_config=gum_config
            )
            totals[(graph, engine)] = result
            stolen = sum(r.stolen_edges for r in result.iterations)
            lines.append(
                f"{graph:5s}  {engine:10s}  {result.total_ms:9.1f}"
                f"  {result.stall_fraction():5.0%}  {stolen:12d}"
            )
        lines.append("")
    lines.append(
        "(the paper's Exp-3 claim: holistic estimate-and-reassign "
        "beats reactive peek-and-grab where DLB is strong — SW/OR; "
        "on the near-balanced WB both hover at the static baseline)"
    )
    return "\n".join(lines), totals


def test_ablation_peeksteal(benchmark, gum_config):
    text, totals = benchmark.pedantic(
        _run_contrast, args=(gum_config,), rounds=1, iterations=1
    )
    emit("ablation_peeksteal", text)
    for graph in GRAPHS:
        static = totals[(graph, "bsp")]
        peek = totals[(graph, "peeksteal")]
        gum = totals[(graph, "gum")]
        # all three compute identical answers
        assert np.allclose(static.values, peek.values)
        assert np.allclose(static.values, gum.values)
    # planned stealing wins where DLB is strong (the Exp-3 regime);
    # on the near-balanced WB both stay within noise of static
    for graph in ("SW", "OR"):
        assert (
            totals[(graph, "gum")].total_seconds
            < totals[(graph, "peeksteal")].total_seconds
        )
    assert (
        totals[("WB", "gum")].total_seconds
        < totals[("WB", "bsp")].total_seconds * 1.05
    )
    # reactive stealing still beats no stealing where DLB is strong
    assert (
        totals[("SW", "peeksteal")].total_seconds
        < totals[("SW", "bsp")].total_seconds
    )
    # and reduces stall versus static
    assert (
        totals[("SW", "peeksteal")].stall_fraction()
        < totals[("SW", "bsp")].stall_fraction()
    )
