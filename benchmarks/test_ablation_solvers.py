"""Ablation — FSteal solver backends (DESIGN.md §6.1).

The paper uses SCIP for the per-iteration MILP. This ablation compares
the four backends on (a) isolated instances harvested from a real run
(decision latency and min-max quality) and (b) end-to-end SSSP runs.
The finding that motivates GUM's thresholds: the heuristic is ~20x
cheaper per decision at a few percent quality loss, so it is the right
default for the per-iteration hot path.
"""

import time

import numpy as np

from conftest import emit
from repro import config as repro_config
from repro.bench import Cell, cached_partition, prepare_graph, run_cell
from repro.core import (
    FStealProblem,
    GumConfig,
    OracleCostModel,
    build_cost_matrix,
    make_solver,
)
from repro.graph.features import frontier_features
from repro.hardware import dgx1, measure_comm_cost_matrix
from repro.runtime import Frontier

SOLVERS = ("greedy", "lp", "bnb", "highs")


def _harvest_instances(num=6):
    """FSteal instances from the busiest iterations of a real run."""
    graph = prepare_graph("SW", "sssp")
    partition = cached_partition(graph, 8, "random")
    comm = measure_comm_cost_matrix(dgx1(8), repro_config.BYTES_PER_EDGE)
    from repro.algorithms import make_algorithm

    algorithm = make_algorithm("sssp")
    from repro.bench import pick_source

    state = algorithm.init(graph, source=pick_source("SW"))
    instances = []
    while state.frontier and state.iteration < 40:
        parts = state.frontier.split_by_owner(partition.owner, 8)
        workloads = np.array([p.work(graph) for p in parts])
        if workloads.max() > 500:
            features = [
                frontier_features(graph, p.vertices) for p in parts
            ]
            costs = build_cost_matrix(
                comm, features, OracleCostModel(),
                np.arange(8, dtype=np.int64),
            )
            instances.append(FStealProblem(costs, workloads))
        state.frontier = algorithm.step(graph, state)
        state.iteration += 1
    return instances[:num]


def _run_ablation():
    instances = _harvest_instances()
    lines = [
        "Ablation: FSteal solver backends",
        "",
        f"(a) {len(instances)} instances harvested from SSSP on SW:",
        "solver   mean_latency(ms)  mean_quality_vs_exact",
    ]
    exact = [make_solver("highs").solve(p).objective for p in instances]
    stats = {}
    for name in SOLVERS:
        solver = make_solver(name)
        start = time.perf_counter()
        objectives = [solver.solve(p).objective for p in instances]
        latency = (time.perf_counter() - start) / len(instances)
        quality = float(np.mean(
            [o / max(e, 1e-30) for o, e in zip(objectives, exact)]
        ))
        stats[name] = (latency, quality)
        lines.append(f"{name:7s}  {latency * 1e3:16.2f}  {quality:20.3f}")

    lines += ["", "(b) end-to-end SSSP on SW, 8 GPUs:",
              "solver   total(ms)  real_decision(ms)"]
    totals = {}
    for name in ("greedy", "lp"):
        result = run_cell(
            Cell("gum", "sssp", "SW", 8),
            gum_config=GumConfig(cost_model="oracle", solver=name),
        )
        totals[name] = result.total_seconds
        lines.append(
            f"{name:7s}  {result.total_ms:9.1f}  "
            f"{result.real_decision_seconds * 1e3:17.1f}"
        )
    return "\n".join(lines), stats, totals


def test_ablation_solvers(benchmark):
    text, stats, totals = benchmark.pedantic(_run_ablation, rounds=1,
                                             iterations=1)
    emit("ablation_solvers", text)
    # the heuristic is much faster per decision...
    assert stats["greedy"][0] < 0.5 * stats["highs"][0]
    # ...at bounded quality loss
    assert stats["greedy"][1] < 1.35
    assert stats["lp"][1] < 1.05
    # and end-to-end virtual results barely differ
    assert abs(totals["greedy"] - totals["lp"]) < 0.3 * totals["lp"]
