"""Extension — delta-PageRank, the paper's third LT-afflicted workload.

The introduction names delta-PageRank alongside SSSP and BFS as an
algorithm whose "long-tailed phenomenon significantly limits
scalability": as residuals drain, active sets shrink to a trickle and
synchronization dominates. The paper never evaluates it; this
extension does, showing that OSteal's group folding transfers to the
incremental-PageRank workload unchanged.
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, run_cell, switch_points
from repro.core import GumConfig


def _run_delta_pr(gum_config):
    model = gum_config.cost_model
    lines = ["Extension: delta-PageRank under the long tail", ""]
    gains = {}
    for graph in ("U2", "USA"):
        on = run_cell(Cell("gum", "dpr", graph, 8),
                      gum_config=gum_config)
        off = run_cell(
            Cell("gum", "dpr", graph, 8),
            gum_config=GumConfig(fsteal=True, osteal=False,
                                 cost_model=model),
        )
        sizes = [r.frontier_size for r in on.iterations]
        shrink = sizes[0] / max(1, sizes[-1])
        gains[graph] = off.total_seconds / on.total_seconds
        events = switch_points(on.group_size_series())
        lines += [
            f"[{graph}] {on.num_iterations} rounds; active set "
            f"{sizes[0]} -> {sizes[-1]} ({shrink:.0f}x shrink)",
            f"  group-size switches: {events[:12]}",
            f"  sync: {off.breakdown.sync * 1e3:.1f} -> "
            f"{on.breakdown.sync * 1e3:.1f} ms, end-to-end gain "
            f"{gains[graph]:.2f}x",
            "",
        ]
        assert np.allclose(on.values, off.values)
    return "\n".join(lines), gains


def test_extension_delta_pagerank(benchmark, gum_config):
    text, gains = benchmark.pedantic(
        _run_delta_pr, args=(gum_config,), rounds=1, iterations=1
    )
    emit("extension_delta_pagerank", text)
    # OSteal must not hurt, and must help on the road network
    assert gains["USA"] > 1.0
    assert gains["U2"] > 0.95
