"""Extension — GUM on other interconnect topologies.

The conclusion conjectures that GUM's design "may also benefit other
...asymmetric link-topology clusters". This extension runs the same
workload on three 8-GPU machines — the DGX-1 hybrid cube mesh, a
plain NVLink ring, and an NVSwitch-like all-to-all — and shows that
(a) the stealing machinery adapts to each topology without changes
and (b) richer interconnects make stealing cheaper and the run faster.
"""

import numpy as np

from conftest import emit
from repro.bench import algorithm_params, cached_partition, prepare_graph
from repro.core import GumConfig, GumEngine
from repro.hardware import dgx1, fully_connected, ring_topology

TOPOLOGIES = {
    "dgx1 cube mesh": lambda: dgx1(8),
    "nvlink ring": lambda: ring_topology(8, lanes=2),
    "nvswitch all-to-all": lambda: fully_connected(8, lanes=2),
}


def _run_topologies(gum_config):
    graph = prepare_graph("SW", "sssp")
    partition = cached_partition(graph, 8, "random")
    params = algorithm_params("sssp", "SW")
    lines = [
        "Extension: GUM across interconnect topologies "
        "(SSSP on SW, 8 GPUs)",
        "",
        "topology              aggregate_bw  total(ms)  stall  stolen",
    ]
    totals = {}
    for name, factory in TOPOLOGIES.items():
        topology = factory()
        engine = GumEngine(
            topology, config=GumConfig(cost_model=gum_config.cost_model)
        )
        result = engine.run(graph, partition, "sssp", **params)
        totals[name] = result.total_seconds
        stolen = sum(r.stolen_edges for r in result.iterations)
        lines.append(
            f"{name:20s}  {topology.aggregate_bandwidth(range(8)):10.0f}"
            f"  {result.total_ms:9.1f}  {result.stall_fraction():5.0%}"
            f"  {stolen:6d}"
        )
        totals[f"{name}/values"] = result.values
    baseline = totals["dgx1 cube mesh/values"]
    for name in TOPOLOGIES:
        assert np.allclose(totals[f"{name}/values"], baseline)
    return "\n".join(lines), totals


def test_extension_topologies(benchmark, gum_config):
    text, totals = benchmark.pedantic(
        _run_topologies, args=(gum_config,), rounds=1, iterations=1
    )
    emit("extension_topologies", text)
    # richer interconnects help (small tolerance: cheaper links invite
    # more stealing, whose migration costs eat part of the gain)
    assert (
        totals["nvswitch all-to-all"]
        <= totals["dgx1 cube mesh"] * 1.05
    )
    assert totals["dgx1 cube mesh"] <= totals["nvlink ring"] * 1.02
