"""Figure 10 (Exp-5) — incremental speedups of GUM's optimizations.

Speedup over the Gunrock baseline on a scale-free graph (soc-orkut
stand-in) and a long-diameter graph (road-USA stand-in), adding one
feature at a time: the bare engine, +opt (common intra-GPU
optimizations: message aggregation, direction switching), +FSteal,
+OSteal. Paper: the bare engine matches Gunrock, FSteal buys ~3.2x on
traversal algorithms, OSteal dominates on road networks, PR benefits
least from FSteal.
"""

from conftest import emit
from repro.bench import Cell, format_table, run_cell
from repro.core import GumConfig
from repro.runtime import EngineOptions

ALGORITHMS = ("bfs", "wcc", "pr", "sssp")
GRAPHS = ("OR", "USA")

NO_OPT = EngineOptions(
    aggregate_messages=False, direction_optimized_bfs=False
)


def _arms(model):
    no_steal = dict(fsteal=False, osteal=False, hub_cache=False,
                    cost_model=model)
    return [
        ("baseline", GumConfig(**no_steal), NO_OPT),
        ("+opt", GumConfig(**no_steal), None),
        ("+fsteal", GumConfig(fsteal=True, osteal=False, hub_cache=True,
                              cost_model=model), None),
        ("+osteal", GumConfig(fsteal=True, osteal=True, hub_cache=True,
                              cost_model=model), None),
    ]


def _run_incremental(gum_config):
    model = gum_config.cost_model
    sections = []
    speedups = {}
    for graph in GRAPHS:
        cells = {}
        for algorithm in ALGORITHMS:
            reference = run_cell(Cell("gunrock", algorithm, graph, 8))
            for arm_name, config, options in _arms(model):
                result = run_cell(
                    Cell("gum", algorithm, graph, 8),
                    gum_config=config, options=options,
                )
                speedup = reference.total_seconds / result.total_seconds
                cells[(arm_name, algorithm)] = speedup
                speedups[(graph, algorithm, arm_name)] = speedup
        sections.append(
            format_table(
                rows=[arm for arm, __, __ in _arms(model)],
                columns=list(ALGORITHMS),
                cells=cells,
                title=f"Fig 10 [{graph}] — speedup over Gunrock "
                      "(higher is better)",
                unit="x speedup",
            )
        )
    return "\n\n".join(sections), speedups


def test_fig10_incremental(benchmark, gum_config):
    text, speedups = benchmark.pedantic(
        _run_incremental, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig10_incremental", text)
    # features stack: each arm at least roughly preserves the previous
    for graph in GRAPHS:
        for algorithm in ALGORITHMS:
            base = speedups[(graph, algorithm, "baseline")]
            full = speedups[(graph, algorithm, "+osteal")]
            assert full >= base * 0.9
    # FSteal moves traversal algorithms more than PR (paper's claim)
    fsteal_gain = lambda g, a: (
        speedups[(g, a, "+fsteal")] / speedups[(g, a, "+opt")]
    )
    assert fsteal_gain("OR", "sssp") > fsteal_gain("OR", "pr") * 0.95
    # OSteal is the decisive feature on the road network
    assert (
        speedups[("USA", "sssp", "+osteal")]
        > speedups[("USA", "sssp", "+opt")]
    )
