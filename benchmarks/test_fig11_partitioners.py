"""Figure 11 (Exp-6) — work stealing across partitioners.

SSSP on OR, U2, LJ under the three partitioner families (seg / random /
metis-like), with and without stealing. The paper reports stealing
gains of 1.25-1.63x (seg), 1.24-2.29x (random), 1.19-1.60x (metis):
stealing rectifies whatever workload distribution the static
partitioner produced.
"""

from conftest import emit
from repro.bench import Cell, format_table, run_cell
from repro.core import GumConfig

GRAPHS = ("OR", "U2", "LJ")
PARTITIONERS = ("seg", "random", "metis")


def _run_partitioners(gum_config):
    model = gum_config.cost_model
    no_steal = GumConfig(fsteal=False, osteal=False, cost_model=model)
    cells = {}
    gains = {}
    for graph in GRAPHS:
        for partitioner in PARTITIONERS:
            base = run_cell(
                Cell("gum", "sssp", graph, 8, partitioner),
                gum_config=no_steal,
            )
            steal = run_cell(
                Cell("gum", "sssp", graph, 8, partitioner),
                gum_config=gum_config,
            )
            cells[(partitioner, graph)] = base.total_ms
            cells[(f"{partitioner}+S", graph)] = steal.total_ms
            gains[(partitioner, graph)] = (
                base.total_seconds / steal.total_seconds
            )
    rows = []
    for partitioner in PARTITIONERS:
        rows += [partitioner, f"{partitioner}+S"]
    table = format_table(
        rows=rows, columns=list(GRAPHS), cells=cells,
        title="Fig 11 — SSSP virtual ms by partitioner "
              "(+S = stealing enabled)",
        best_of_column=True,
    )
    gain_lines = [
        f"stealing gain on {partitioner}: "
        + ", ".join(
            f"{graph}={gains[(partitioner, graph)]:.2f}x"
            for graph in GRAPHS
        )
        for partitioner in PARTITIONERS
    ]
    gain_lines.append(
        "(paper: seg 1.25-1.63x, random 1.24-2.29x, metis 1.19-1.60x)"
    )
    return table + "\n\n" + "\n".join(gain_lines), gains


def test_fig11_partitioners(benchmark, gum_config):
    text, gains = benchmark.pedantic(
        _run_partitioners, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig11_partitioners", text)
    # stealing helps under every partitioner on every graph
    for key, gain in gains.items():
        assert gain > 1.0, key
    # the sloppier the partitioner, the more stealing rectifies:
    # random gains at least as much as the locality-aware seg on average
    avg = lambda p: sum(gains[(p, g)] for g in GRAPHS) / len(GRAPHS)
    assert avg("random") > 0.9 * avg("seg")
