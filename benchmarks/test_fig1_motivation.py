"""Figure 1 — the motivating timeline: DLB and LT under a BSP baseline.

Reproduces the paper's opening observation by running SSSP on the
webbase stand-in with the Gunrock model on 8 GPUs and reporting, per
iteration: each GPU's busy time, the straggler spread (the DLB
problem), and the fraction of late iterations dominated by
synchronization (the LT problem).
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, run_cell


def _run_timeline():
    result = run_cell(Cell("gunrock", "sssp", "WB", 8))
    busy = result.busy_matrix() * 1e3  # ms
    lines = [
        "Figure 1: per-GPU timeline of SSSP (Gunrock model, WB stand-in,"
        " 8 GPUs)",
        "",
        "iter  frontier_edges  "
        + "".join(f"{'gpu' + str(g):>8}" for g in range(8))
        + "   spread",
    ]
    spreads = []
    step = max(1, result.num_iterations // 24)
    for idx in range(0, result.num_iterations, step):
        record = result.iterations[idx]
        row = busy[idx]
        spread = row.max() / max(row[row > 0].min(), 1e-12) if np.any(
            row > 0
        ) else 1.0
        spreads.append(row.max() / max(row.min(), 1e-12)
                       if row.min() > 0 else np.nan)
        lines.append(
            f"{idx:4d}  {record.frontier_edges:14d}  "
            + "".join(f"{v:8.2f}" for v in row)
            + f"  {spread:6.2f}x"
        )
    # DLB: worst straggler ratio over busy iterations
    full = busy[busy.min(axis=1) > 0]
    worst = float((full.max(axis=1) / full.min(axis=1)).max()) if len(
        full
    ) else float("nan")
    # LT: sync share over the last half of the run
    tail = result.iterations[result.num_iterations // 2:]
    tail_sync = sum(r.breakdown.sync for r in tail)
    tail_total = sum(r.breakdown.total for r in tail)
    sync_share = sum(
        r.breakdown.sync for r in result.iterations
    ) / result.total_seconds
    lines += [
        "",
        f"(1) DLB: worst per-iteration straggler ratio = {worst:.2f}x "
        "(paper observes up to 4.2x)",
        f"(2) LT : sync share of full run = {sync_share:.0%}; of the "
        f"tail half = {tail_sync / tail_total:.0%} "
        "(paper: ~21% of total)",
        f"total: {result.total_ms:.1f} virtual ms over "
        f"{result.num_iterations} iterations, "
        f"stall fraction {result.stall_fraction():.0%}",
    ]
    return "\n".join(lines)


def test_fig1_motivation(benchmark):
    text = benchmark.pedantic(_run_timeline, rounds=1, iterations=1)
    emit("fig1_motivation", text)
    assert "DLB" in text
