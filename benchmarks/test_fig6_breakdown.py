"""Figure 6 (Exp-2) — GUM runtime breakdown at 1/2/4/8 GPUs.

One representative large graph per domain (the paper uses five large
graphs); the breakdown buckets are the paper's: computation,
communication (incl. starvation), serialization, synchronization, and
overhead (ID conversion + stealing decisions).
"""

from conftest import emit
from repro.bench import Cell, format_breakdown, run_cell

GRAPHS = ("OR", "U5", "USA")
ALGORITHMS = ("bfs", "wcc", "pr", "sssp")
GPU_COUNTS = (1, 2, 4, 8)


def _run_breakdowns(gum_config):
    sections = []
    speedups = {}
    for algorithm in ALGORITHMS:
        for graph in GRAPHS:
            labels = []
            rows = []
            totals = {}
            for gpus in GPU_COUNTS:
                result = run_cell(
                    Cell("gum", algorithm, graph, gpus),
                    gum_config=gum_config,
                )
                labels.append(f"{gpus} GPU{'s' if gpus > 1 else ''}")
                rows.append(result.breakdown.scaled_ms())
                totals[gpus] = result.total_seconds
            speedups[(algorithm, graph)] = totals[1] / totals[8]
            sections.append(
                format_breakdown(
                    labels, rows,
                    title=f"Fig 6 [{algorithm.upper()} on {graph}] — "
                          "GUM breakdown",
                )
            )
    sections.append(
        "8-GPU speedups over 1 GPU: "
        + ", ".join(
            f"{a}/{g}={s:.2f}x" for (a, g), s in sorted(speedups.items())
        )
    )
    return "\n\n".join(sections), speedups


def test_fig6_breakdown(benchmark, gum_config):
    text, speedups = benchmark.pedantic(
        _run_breakdowns, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig6_breakdown", text)
    # paper: near-linear scaling on the compute-bound social workloads
    assert speedups[("pr", "OR")] > 4.0
    assert speedups[("bfs", "OR")] > 2.0
    # road networks scale worse (the LT regime caps parallel efficiency)
    assert speedups[("sssp", "USA")] < speedups[("pr", "OR")]
