"""Figure 7 (Exp-2) — strong scaling of GUM vs Gunrock vs Groute.

Runtime at 1..8 GPUs on one graph per domain. Expected shape:

* GUM keeps scaling to 8 GPUs;
* Gunrock's SSSP is fast at 1 GPU (near-far) but scales poorly;
* Groute is strong at 1 GPU (async, no sync) and at even GPU counts,
  and degrades at odd counts that cannot form an NVLink ring.
"""

from conftest import emit
from repro.bench import Cell, format_table, run_cell

GRAPHS = ("OR", "U5", "USA")
ALGORITHMS = ("bfs", "sssp", "pr")
GPU_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)
ENGINES = ("gunrock", "groute", "gum")


def _run_scaling(gum_config):
    sections = []
    data = {}
    for algorithm in ALGORITHMS:
        for graph in GRAPHS:
            cells = {}
            for engine in ENGINES:
                for gpus in GPU_COUNTS:
                    result = run_cell(
                        Cell(engine, algorithm, graph, gpus),
                        gum_config=gum_config,
                    )
                    cells[(engine, str(gpus))] = result.total_ms
                    data[(engine, algorithm, graph, gpus)] = (
                        result.total_seconds
                    )
            sections.append(
                format_table(
                    rows=list(ENGINES),
                    columns=[str(g) for g in GPU_COUNTS],
                    cells=cells,
                    title=f"Fig 7 [{algorithm.upper()} on {graph}] — "
                          "virtual ms vs #GPUs",
                    best_of_column=True,
                )
            )
    return "\n\n".join(sections), data


def test_fig7_scaling(benchmark, gum_config):
    text, data = benchmark.pedantic(
        _run_scaling, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig7_scaling", text)
    # GUM scales: 8 GPUs beat 1 GPU on the big social workload
    assert data[("gum", "pr", "OR", 8)] < data[("gum", "pr", "OR", 1)]
    # GUM wins at full scale on every shown workload
    for algorithm in ALGORITHMS:
        for graph in GRAPHS:
            gum8 = data[("gum", algorithm, graph, 8)]
            assert gum8 <= data[("gunrock", algorithm, graph, 8)] * 1.05
            assert gum8 <= data[("groute", algorithm, graph, 8)] * 1.05
    # Groute odd-count pathology: parallel efficiency dips at 5 GPUs
    # (no NVLink ring exists; some hops fall back to PCIe), below both
    # even neighbors
    def efficiency(gpus):
        return data[("groute", "bfs", "OR", 1)] / (
            gpus * data[("groute", "bfs", "OR", gpus)]
        )

    assert efficiency(5) < efficiency(4)
    assert efficiency(5) < efficiency(6)
