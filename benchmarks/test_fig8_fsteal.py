"""Figure 8 (Exp-3) — FSteal load-balance effectiveness.

SSSP on the sinaweibo stand-in, 8 GPUs, frontier stealing on vs off.
The paper highlights the two busiest iterations: without FSteal the
fast GPUs waste most of their cycles waiting (72%/67% in the paper);
with FSteal the stall collapses (to ~4%), and transit GPUs may steal
while being stolen from (the NVLink-asymmetry effect).
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, run_cell
from repro.core import GumConfig


def _per_gpu_rows(record):
    busy = record.busy_seconds * 1e3
    stall = record.stall_seconds * 1e3
    lines = ["  gpu   busy(ms)  stall(ms)  stall%"]
    critical = busy.max()
    for gpu in range(busy.size):
        share = stall[gpu] / critical if critical > 0 else 0.0
        lines.append(
            f"  {gpu:3d}  {busy[gpu]:9.3f}  {stall[gpu]:9.3f}  {share:6.0%}"
        )
    return lines


def _run_fsteal_comparison(gum_config):
    on_config = GumConfig(
        fsteal=True, osteal=False, cost_model=gum_config.cost_model,
    )
    off_config = GumConfig(fsteal=False, osteal=False,
                           cost_model=gum_config.cost_model)
    on = run_cell(Cell("gum", "sssp", "SW", 8), gum_config=on_config)
    off = run_cell(Cell("gum", "sssp", "SW", 8), gum_config=off_config)
    # the two busiest iterations, as in the paper's #5/#6
    busiest = np.argsort(
        [-r.frontier_edges for r in off.iterations]
    )[:2]
    lines = ["Figure 8: FSteal effectiveness (SSSP on SW, 8 GPUs)", ""]
    for idx in sorted(busiest.tolist()):
        rec_off, rec_on = off.iterations[idx], on.iterations[idx]
        lines.append(
            f"iteration #{idx} without FSteal "
            f"(wall {rec_off.wall_seconds * 1e3:.2f} ms):"
        )
        lines += _per_gpu_rows(rec_off)
        lines.append(
            f"iteration #{idx} with FSteal "
            f"(wall {rec_on.wall_seconds * 1e3:.2f} ms, "
            f"stolen {rec_on.stolen_edges} edges):"
        )
        lines += _per_gpu_rows(rec_on)
        lines.append("")
    lines += [
        f"run stall fraction: without = {off.stall_fraction():.0%}, "
        f"with = {on.stall_fraction():.0%} (paper: 72% -> 4%)",
        f"end-to-end: without = {off.total_ms:.1f} ms, "
        f"with = {on.total_ms:.1f} ms "
        f"({off.total_seconds / on.total_seconds:.2f}x)",
    ]
    return "\n".join(lines), on, off


def test_fig8_fsteal_effectiveness(benchmark, gum_config):
    text, on, off = benchmark.pedantic(
        _run_fsteal_comparison, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig8_fsteal", text)
    assert on.stall_fraction() < 0.5 * off.stall_fraction()
    assert on.total_seconds < off.total_seconds
    assert np.allclose(on.values, off.values)
