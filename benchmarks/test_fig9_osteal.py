"""Figure 9 (Exp-4) — the OSteal switching process.

SSSP on the webbase and road-USA stand-ins: the communication-group
size over iterations. The paper's walk on webbase is 8 -> 6 -> 4 -> 1
late in the run (an 11% end-to-end gain); on road-USA the group spends
most of the run tiny, for a 3.2x gain.
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, format_series, run_cell, switch_points
from repro.core import GumConfig


def _run_switching(gum_config):
    lines = []
    gains = {}
    for graph in ("WB", "USA"):
        with_osteal = run_cell(
            Cell("gum", "sssp", graph, 8), gum_config=gum_config
        )
        without = run_cell(
            Cell("gum", "sssp", graph, 8),
            gum_config=GumConfig(
                fsteal=True, osteal=False,
                cost_model=gum_config.cost_model,
            ),
        )
        sizes = with_osteal.group_size_series()
        events = switch_points(sizes)
        gains[graph] = without.total_seconds / with_osteal.total_seconds
        lines.append(
            format_series(
                f"Fig 9 [{graph}]: group size n over iterations",
                [e[0] for e in events],
                [float(e[1]) for e in events],
                x_label="iteration", y_label="n",
                max_points=30,
            )
        )
        lines.append(
            f"  iterations={with_osteal.num_iterations}, "
            f"final n={sizes[-1]}, min n={min(sizes)}, "
            f"sync: {without.breakdown.sync * 1e3:.1f} -> "
            f"{with_osteal.breakdown.sync * 1e3:.1f} ms, "
            f"end-to-end gain {gains[graph]:.2f}x "
            + ("(paper: 1.11x)" if graph == "WB" else "(paper: 3.2x)")
        )
        lines.append("")
    return "\n".join(lines), gains


def test_fig9_osteal_switching(benchmark, gum_config):
    text, gains = benchmark.pedantic(
        _run_switching, args=(gum_config,), rounds=1, iterations=1
    )
    emit("fig9_osteal", text)
    # the long-diameter road graph benefits substantially; webbase's
    # tail is structurally short at this scale, so its gain is
    # compressed toward 1.0 (never a loss) — see EXPERIMENTS.md
    assert gains["USA"] > 1.15
    assert gains["WB"] > 0.97
    assert gains["USA"] > gains["WB"]
