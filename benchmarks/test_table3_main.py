"""Table III (Exp-1) — GUM vs Gunrock vs Groute, 4 algorithms x 15 graphs.

All systems run on the same 8-GPU virtual DGX-1 with the same random
partition, as in the paper. Expected shape (not absolute numbers):

* GUM wins broadly, especially traversal algorithms (BFS/SSSP);
* the largest factors appear on road networks (the LT regime);
* Groute wins WCC on road networks (asynchronous local convergence);
* Groute's PageRank is the worst column (async re-propagation tax).
"""

from conftest import emit
from repro.bench import Cell, format_table, run_cell
from repro.graph import datasets

ENGINES = ("gunrock", "groute", "gum")
ALGORITHMS = ("bfs", "wcc", "pr", "sssp")


def _run_table(gum_config):
    sections = []
    wins = {engine: 0 for engine in ENGINES}
    for algorithm in ALGORITHMS:
        cells = {}
        for graph in datasets.dataset_names():
            for engine in ENGINES:
                result = run_cell(
                    Cell(engine, algorithm, graph, 8),
                    gum_config=gum_config,
                )
                cells[(engine, graph)] = result.total_ms
            best = min(ENGINES,
                       key=lambda e: cells[(e, graph)])
            wins[best] += 1
        sections.append(
            format_table(
                rows=list(ENGINES),
                columns=datasets.dataset_names(),
                cells=cells,
                title=f"Table III [{algorithm.upper()}] — virtual ms, "
                      "8 GPUs, random partition",
                best_of_column=True,
            )
        )
    total = sum(wins.values())
    sections.append(
        "column wins: "
        + ", ".join(f"{engine}={wins[engine]}/{total}"
                    for engine in ENGINES)
    )
    return "\n\n".join(sections), wins


def test_table3_main_results(benchmark, gum_config):
    text, wins = benchmark.pedantic(
        _run_table, args=(gum_config,), rounds=1, iterations=1
    )
    emit("table3_main", text)
    # the headline claim: GUM wins the majority of cells
    assert wins["gum"] > wins["gunrock"]
    assert wins["gum"] > wins["groute"]
