"""Table IV (Exp-3/4) — the cost of the stealing machinery itself.

Report each mechanism's decision cost (virtual ms charged to the
overhead bucket, plus the *actual* wall time of the Python decision
code, which is a property of this simulator, not of the modelled
GPUs) and the ratio of time saved to overhead paid. The paper's
ratios: FSteal 19-38x, OSteal 5-32x on uk-2002/webbase.

Substitution note: at our scale the uk-2002 stand-in converges in a
handful of iterations and exercises neither mechanism, so each
mechanism is measured on workloads where it activates — FSteal on the
DLB-heavy sinaweibo + webbase stand-ins, OSteal on the long-tailed
webbase + road-USA stand-ins. That preserves the table's question
("does the machinery pay for itself when used?") at this scale.
"""

from conftest import emit
from repro.bench import Cell, run_cell
from repro.core import GumConfig

FSTEAL_GRAPHS = ("SW", "WB")
OSTEAL_GRAPHS = ("WB", "USA")


def _mechanism_cost(result, mechanism):
    """Virtual overhead charged while the mechanism was active."""
    if mechanism == "fsteal":
        return sum(
            r.breakdown.overhead for r in result.iterations
            if r.fsteal_applied
        )
    return result.breakdown.overhead


def _run_overhead(gum_config):
    model = gum_config.cost_model
    lines = [
        "Table IV: work-stealing overhead (SSSP)",
        "",
        "mechanism  graph  GPUs  overhead(ms)  real_py(ms)  saved(ms)"
        "   ratio",
    ]
    ratios = {}
    for mechanism in ("fsteal", "osteal"):
        graphs = FSTEAL_GRAPHS if mechanism == "fsteal" else OSTEAL_GRAPHS
        for graph in graphs:
            for gpus in (2, 4, 8):
                if mechanism == "fsteal":
                    on_cfg = GumConfig(fsteal=True, osteal=False,
                                       cost_model=model)
                    off_cfg = GumConfig(fsteal=False, osteal=False,
                                        cost_model=model)
                else:
                    on_cfg = GumConfig(fsteal=True, osteal=True,
                                       cost_model=model)
                    off_cfg = GumConfig(fsteal=True, osteal=False,
                                        cost_model=model)
                on = run_cell(Cell("gum", "sssp", graph, gpus),
                              gum_config=on_cfg)
                off = run_cell(Cell("gum", "sssp", graph, gpus),
                               gum_config=off_cfg)
                cost = (
                    _mechanism_cost(on, mechanism)
                    - (_mechanism_cost(off, "osteal")
                       if mechanism == "osteal" else 0.0)
                )
                cost = max(cost, 1e-9)
                saved = off.total_seconds - on.total_seconds
                ratio = saved / cost
                ratios[(mechanism, graph, gpus)] = ratio
                lines.append(
                    f"{mechanism:9s}  {graph:5s}  {gpus:4d}  "
                    f"{cost * 1e3:12.3f}  "
                    f"{on.real_decision_seconds * 1e3:11.1f}  "
                    f"{saved * 1e3:9.2f}  {ratio:6.1f}x"
                )
    lines.append("")
    lines.append("(paper ratios: FSteal 19-38x, OSteal 5-32x; overhead "
                 "<= 17 ms / 6 ms)")
    return "\n".join(lines), ratios


def test_table4_overhead(benchmark, gum_config):
    text, ratios = benchmark.pedantic(
        _run_overhead, args=(gum_config,), rounds=1, iterations=1
    )
    emit("table4_overhead", text)
    # stealing must pay for itself by a comfortable margin at 8 GPUs
    assert ratios[("fsteal", "SW", 8)] > 3.0
    assert ratios[("osteal", "USA", 8)] > 3.0
