"""Table V (Exp-7) — cost-model accuracy and its effect on performance.

Trains the four learning families on the running-log corpus (the
paper's 624-graph corpus, at laptop scale), reports held-out RMSRE and
training time, then replays FSteal-driven SSSP with each learned ``g``
vs the exact oracle to measure the performance retained ("slowdown" in
the paper's terminology: oracle-time / model-time, 1.0 = as good as
exact costs).

Paper shape: polynomial and SVR-class models are accurate and retain
~93-94% of oracle performance at modest training cost; linear
regression is drastically worse; the paper picks polynomial for
cost-efficiency.
"""

import numpy as np

from conftest import emit
from repro.bench import Cell, run_cell
from repro.core import (
    MODEL_FAMILIES,
    GumConfig,
    collect_training_data,
    default_training_corpus,
    rmsre,
)


def _run_table5():
    features, costs = collect_training_data(default_training_corpus())
    rng = np.random.default_rng(0)
    order = rng.permutation(costs.size)
    split = int(0.8 * costs.size)
    train, test = order[:split], order[split:]

    oracle = run_cell(
        Cell("gum", "sssp", "SW", 8),
        gum_config=GumConfig(cost_model="oracle"),
    )
    lines = [
        "Table V: accuracy and training time of the cost model",
        f"  (training corpus: {costs.size} samples from "
        f"{len(default_training_corpus())} graphs x 4 algorithms)",
        "",
        "model        RMSRE(test)  train_time(s)  perf_vs_oracle",
    ]
    metrics = {}
    for name in ("linear", "polynomial", "svr", "tree"):
        model = MODEL_FAMILIES[name]()
        report = model.fit(features[train], costs[train])
        test_rmsre = rmsre(model.predict(features[test]), costs[test])
        replay = run_cell(
            Cell("gum", "sssp", "SW", 8),
            gum_config=GumConfig(cost_model=model),
        )
        retained = oracle.total_seconds / replay.total_seconds
        metrics[name] = (test_rmsre, report.train_seconds, retained)
        lines.append(
            f"{name:12s}  {test_rmsre:10.3f}  {report.train_seconds:13.1f}"
            f"  {retained:14.2f}"
        )
    lines += [
        "",
        "(paper: linear 26.7 / poly 0.33 / SVR 0.21 / tree 0.42 RMSRE;"
        " slowdown 0.54 / 0.93 / 0.94 / 0.88)",
    ]
    return "\n".join(lines), metrics


def test_table5_costmodel(benchmark):
    text, metrics = benchmark.pedantic(_run_table5, rounds=1,
                                       iterations=1)
    emit("table5_costmodel", text)
    # linear is clearly the worst model; polynomial is much better
    assert metrics["linear"][0] > 2.0 * metrics["polynomial"][0]
    # sophisticated models retain most of the oracle's performance
    for name in ("polynomial", "svr", "tree"):
        assert metrics[name][2] > 0.85
    # the learned policies never collapse below 50% of oracle quality
    assert metrics["linear"][2] > 0.5
