#!/usr/bin/env python3
"""Chaos drill: inject faults into a run and prove the answer survives.

Loads a scenario file (default: every scenario committed under
``benchmarks/scenarios/``), replays it against TX/bfs on 4 virtual
GPUs, and checks the three promises of ``repro.chaos``:

1. **Correctness is untouchable** — the faulted run's output matches
   the scipy reference oracle exactly; faults cost time, never answers.
2. **Degradation is graceful** — dead workers are evicted and their
   fragments re-homed, degraded links reroute steal traffic, solver
   timeouts fall through the backend chain.
3. **Chaos is deterministic** — replaying the same scenario yields the
   same virtual time, bit for bit.

This script doubles as the CI ``chaos-smoke`` validation driver.

Run:  python examples/chaos_drill.py
      python examples/chaos_drill.py --scenario benchmarks/scenarios/kill-worker.json
"""

import argparse
import sys
from pathlib import Path

import numpy as np

import repro
from repro.algorithms.validate import reference_bfs
from repro.bench.runner import Cell, run_cell

SCENARIO_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "scenarios"


def drill(scenario_path: Path, graph: str = "TX", algorithm: str = "bfs",
          gpus: int = 4) -> None:
    scenario = repro.ChaosScenario.from_file(scenario_path)
    print(f"\n=== scenario {scenario.name!r} "
          f"({len(scenario)} fault(s), seed {scenario.seed}) ===")
    if scenario.description:
        print(f"  {scenario.description}")

    # healthy baseline for the time comparison
    healthy = run_cell(Cell("gum", algorithm, graph, num_gpus=gpus))

    # the faulted run, twice, to demonstrate determinism
    results = [
        run_cell(Cell("gum", algorithm, graph, num_gpus=gpus),
                 chaos=repro.ChaosController(scenario))
        for _ in range(2)
    ]
    faulted = results[0]
    assert faulted.total_seconds == results[1].total_seconds, \
        "chaos must be deterministic"

    # promise 1: validate against the scipy oracle, not just the
    # healthy run — an independent ground truth
    loaded = repro.datasets.load(graph)
    if algorithm == "bfs":
        from repro.bench.workloads import algorithm_params

        params = algorithm_params(algorithm, graph)
        expected = reference_bfs(loaded, params["source"])
        assert np.array_equal(faulted.values, expected), \
            "faulted output diverged from the reference oracle"
    assert np.array_equal(faulted.values, healthy.values)

    stats = faulted.chaos
    print(f"  healthy : {healthy.total_ms:8.3f} ms "
          f"({healthy.num_iterations} iterations)")
    print(f"  faulted : {faulted.total_ms:8.3f} ms "
          f"({faulted.num_iterations} iterations, deterministic replay)")
    print(f"  injected: {stats['faults_injected']} fault(s); "
          f"evictions={stats['evictions']} "
          f"links_degraded={stats['links_degraded']} "
          f"solver_fallbacks={stats['solver_fallbacks']} "
          f"transfer_retries={stats['transfer_retries']}")
    for event in stats["events"]:
        print(f"    - {event}")
    print("  output validated against the scipy reference oracle")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario", metavar="PATH", default=None,
        help="one scenario file (default: all of benchmarks/scenarios/)",
    )
    parser.add_argument("--graph", default="TX")
    parser.add_argument("--algorithm", default="bfs")
    parser.add_argument("--gpus", type=int, default=4)
    args = parser.parse_args()

    paths = (
        [Path(args.scenario)]
        if args.scenario
        else sorted(SCENARIO_DIR.glob("*.json"))
    )
    if not paths:
        print(f"no scenarios found under {SCENARIO_DIR}", file=sys.stderr)
        return 1
    for path in paths:
        drill(path, graph=args.graph, algorithm=args.algorithm,
              gpus=args.gpus)
    print(f"\nall {len(paths)} drill(s) passed: faults cost time, "
          "never answers.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
