#!/usr/bin/env python3
"""The cost-model v2 feedback loop, end to end.

Run a workload under the shipped cost model and record it, harvest the
run's own decision ledger into a training corpus, fit candidate model
families with held-out RMSRE against the shipped baseline, validate by
replaying the recording (bit-identical under the original model,
per-iteration error attribution under the fitted one), then rerun the
workload with the fitted artifact plugged in.

Run:  python examples/costmodel_loop.py
"""

import tempfile
from pathlib import Path

import repro
from repro.core.costmodel_v2 import (
    fit_candidates,
    harvest,
    load_artifact,
    save_artifact,
)
from repro.replay import format_replay_result, replay_run
from repro.runs import RunRegistry, workload_fingerprint


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-costmodel-loop-"))
    registry = RunRegistry(workdir / "runs")

    # --- 1. run under the shipped model and record -------------------
    graph = repro.datasets.load("TX")
    baseline = repro.run(graph, "pr", num_gpus=8)
    run_id = registry.record_result(baseline, workload_fingerprint(
        engine="gum", algorithm="pr", graph=graph.name, num_gpus=8,
    ))
    print(f"recorded {run_id}: {baseline.total_ms:.2f} virtual ms, "
          f"online RMSRE {baseline.ledger.final_rmsre:.4f}\n")

    # --- 2. harvest the registry into a training corpus --------------
    corpus = harvest(registry)
    print(f"harvested {len(corpus)} samples from "
          f"{len(corpus.runs)} run(s)")

    # --- 3. fit candidates, held out against the shipped model -------
    outcome = fit_candidates(corpus, model="auto", folds=5, seed=0)
    for name, report in sorted(outcome.candidates.items()):
        marker = "  <-- chosen" if name == outcome.family else ""
        print(f"  {name:<10}: held-out RMSRE "
              f"{report.cv_rmsre:.4f}{marker}")
    print(f"  shipped   : held-out RMSRE "
          f"{outcome.baseline.cv_rmsre:.4f}  (baseline)")
    assert outcome.beats_shipped

    artifact_path = workdir / "model.json"
    artifact = save_artifact(outcome.model, artifact_path,
                             provenance=outcome.report())
    print(f"\nartifact: {artifact_path} "
          f"(family={artifact['family']}, "
          f"digest={artifact['digest'][:8]})\n")

    # --- 4. validate by replay ---------------------------------------
    pinned = replay_run(registry, run_id)
    assert pinned.bit_identical  # the original model reproduces itself
    print(format_replay_result(pinned))
    print()
    what_if = replay_run(registry, run_id,
                         cost_model=str(artifact_path))
    print(format_replay_result(what_if))

    # --- 5. close the loop: rerun under the fitted model -------------
    refit = repro.run(graph, "pr", num_gpus=8,
                      cost_model=load_artifact(artifact_path))
    delta = baseline.total_ms - refit.total_ms
    print(f"\nrerun under {refit.ledger.model}: "
          f"{baseline.total_ms:.2f} -> {refit.total_ms:.2f} virtual ms "
          f"({delta:+.2f} ms), online RMSRE "
          f"{baseline.ledger.final_rmsre:.4f} -> "
          f"{refit.ledger.final_rmsre:.4f}")


if __name__ == "__main__":
    main()
