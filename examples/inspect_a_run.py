#!/usr/bin/env python3
"""Inspecting a run: traces, timelines, and extension algorithms.

Shows the observability surface of the library: run delta-stepping
SSSP and k-core (extension algorithms beyond the paper's four),
render the per-GPU timeline as ASCII art (the Figure-1 view), and
export a JSON-lines trace for offline analysis.

Run:  python examples/inspect_a_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.runtime import (
    load_trace,
    render_timeline,
    save_trace,
    utilization_report,
)


def main() -> None:
    graph = repro.with_random_weights(repro.datasets.load("CA"), seed=9)
    partition = repro.random_partition(graph, 8, seed=0)
    engine = repro.GumEngine(repro.dgx1(8))
    source = int(np.argmax(graph.out_degrees()))

    # --- delta-stepping SSSP (extension algorithm) -------------------
    result = engine.run(graph, partition, "dsssp", source=source)
    print(f"delta-stepping SSSP: {result.total_ms:.1f} virtual ms, "
          f"{result.num_iterations} bucket phases")
    plain = engine.run(graph, partition, "sssp", source=source)
    assert np.allclose(result.values, plain.values)
    print(f"plain frontier SSSP: {plain.total_ms:.1f} virtual ms, "
          f"{plain.num_iterations} supersteps "
          "(same distances, different schedule)\n")

    # --- the timeline view (Figure 1 in a terminal) -------------------
    print(render_timeline(plain, max_iterations=6, width=32))

    # --- utilization and trace export ----------------------------------
    report = utilization_report(plain)
    print("\nper-GPU utilization:",
          [f"{u:.0%}" for u in report["per_gpu_utilization"]])
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "sssp_trace.jsonl"
        save_trace(plain, trace_path)
        header, records = load_trace(trace_path)
        print(f"trace: {len(records)} iteration records "
              f"({trace_path.stat().st_size} bytes), "
              f"header total = {header['total_ms']:.1f} ms")

    # --- k-core (extension algorithm) ----------------------------------
    social = repro.datasets.load("OR")
    cores = repro.run(social, "kcore", k=8, num_gpus=8)
    members = int((cores.values >= 0).sum())
    print(f"\n8-core of {social.name}: {members} of "
          f"{social.num_vertices} vertices "
          f"({cores.num_iterations} peeling rounds, "
          f"{cores.total_ms:.1f} virtual ms)")


if __name__ == "__main__":
    main()
