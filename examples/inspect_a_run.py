#!/usr/bin/env python3
"""Inspecting a run: timelines, critical-path analysis, the registry.

Walks the full observability loop on a small graph: run delta-stepping
SSSP and k-core (extension algorithms beyond the paper's four), render
the per-GPU timeline as ASCII art (the Figure-1 view), attribute the
end-to-end time along the critical path, ask what-if questions, then
archive the run in a registry and diff it against itself.

Run:  python examples/inspect_a_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.obs import WhatIf, analyze, replay
from repro.obs.analysis import format_replay, format_report
from repro.runs import RunRegistry, diff_manifests, format_diff, \
    workload_fingerprint
from repro.runtime import render_timeline, utilization_report


def main() -> None:
    graph = repro.with_random_weights(repro.datasets.load("CA"), seed=9)
    partition = repro.random_partition(graph, 8, seed=0)
    engine = repro.GumEngine(repro.dgx1(8))
    source = int(np.argmax(graph.out_degrees()))

    # --- delta-stepping SSSP (extension algorithm) -------------------
    result = engine.run(graph, partition, "dsssp", source=source)
    print(f"delta-stepping SSSP: {result.total_ms:.1f} virtual ms, "
          f"{result.num_iterations} bucket phases")
    plain = engine.run(graph, partition, "sssp", source=source)
    assert np.allclose(result.values, plain.values)
    print(f"plain frontier SSSP: {plain.total_ms:.1f} virtual ms, "
          f"{plain.num_iterations} supersteps "
          "(same distances, different schedule)\n")

    # --- the timeline view (Figure 1 in a terminal) -------------------
    print(render_timeline(plain, max_iterations=6, width=32))
    report = utilization_report(plain)
    print("\nper-GPU utilization:",
          [f"{u:.0%}" for u in report["per_gpu_utilization"]])

    # --- critical-path attribution ------------------------------------
    attribution = analyze(plain)
    print()
    print(format_report(attribution))
    bucket_sum = sum(attribution.buckets_ms.values())
    assert abs(bucket_sum - attribution.total_ms) < 1e-6 * bucket_sum
    # the no-op replay invariant: re-simulating changes nothing
    noop = replay(plain)
    assert noop.total_ms == noop.baseline_ms and noop.delta_ms == 0.0

    # --- what-if: speed up the dominant straggler ---------------------
    straggler = attribution.dominant_straggler()
    if straggler is not None:
        faster = replay(plain, WhatIf(gpu_compute_scale={straggler: 0.5}))
        print(format_replay(faster))
    print(format_replay(replay(plain, WhatIf(zero_decision_overhead=True))))

    # --- archive the run and diff it against itself -------------------
    with tempfile.TemporaryDirectory() as tmp:
        registry = RunRegistry(Path(tmp) / "runs")
        run_id = registry.record_result(
            plain,
            workload_fingerprint(engine="gum", algorithm="sssp",
                                 graph="CA", num_gpus=8),
        )
        manifest = registry.load_manifest(run_id)
        print(f"\nrecorded {run_id} "
              f"({len(registry.load_run_trace(run_id)[1])} trace records, "
              f"git {manifest['fingerprint']['provenance']['git_sha'][:9]})")
        diff = diff_manifests(manifest, manifest)
        print(format_diff(diff, verbose=False))
        # the archived trace analyzes identically to the live result
        archived = analyze(registry.load_run_trace(run_id))
        assert abs(archived.total_ms - plain.total_ms) < 1e-6 * plain.total_ms

    # --- k-core (extension algorithm) ----------------------------------
    social = repro.datasets.load("OR")
    cores = repro.run(social, "kcore", k=8, num_gpus=8)
    members = int((cores.values >= 0).sum())
    print(f"\n8-core of {social.name}: {members} of "
          f"{social.num_vertices} vertices "
          f"({cores.num_iterations} peeling rounds, "
          f"{cores.total_ms:.1f} virtual ms)")


if __name__ == "__main__":
    main()
