#!/usr/bin/env python3
"""Quickstart: run GUM on a simulated 8-GPU server.

Loads the soc-sinaweibo stand-in graph (the paper's DLB showcase),
partitions it across eight virtual V100s connected by the DGX-1 NVLink
cube mesh, runs SSSP under GUM's work-stealing arbitrator, and prints
what the paper's evaluation cares about: virtual runtime, the time
breakdown, and GPU utilization.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A graph. Stand-ins for all 15 paper graphs are bundled;
    #    you can also build your own via repro.from_edges / rmat / ...
    graph = repro.with_random_weights(repro.datasets.load("SW"), seed=11)
    print(f"graph: {graph}")

    # 2. A machine: 8 virtual V100s, hybrid-cube-mesh NVLink.
    topology = repro.dgx1(8)
    print(f"machine: {topology} "
          f"(aggregate NVLink "
          f"{topology.aggregate_bandwidth(range(8)):.0f} GB/s)")

    # 3. An edge-cut partition (the paper's default: random).
    partition = repro.random_partition(graph, topology.num_gpus, seed=0)

    # 4. The GUM engine: FSteal + OSteal + hub caching, learned costs.
    engine = repro.GumEngine(topology)

    source = int(np.argmax(graph.out_degrees()))
    result = engine.run(graph, partition, "sssp", source=source)

    print(f"\nSSSP from vertex {source}: "
          f"{int(np.isfinite(result.values).sum())} reachable vertices, "
          f"max distance "
          f"{result.values[np.isfinite(result.values)].max():.0f}")
    print(f"virtual runtime : {result.total_ms:8.2f} ms "
          f"({result.num_iterations} supersteps)")
    print(f"GPU stall share : {result.stall_fraction():8.1%}")
    print("breakdown (ms)  :", {
        bucket: round(ms, 2)
        for bucket, ms in result.breakdown.scaled_ms().items()
    })
    stolen = sum(r.stolen_edges for r in result.iterations)
    print(f"stolen edges    : {stolen} "
          f"(over {sum(r.fsteal_applied for r in result.iterations)} "
          "FSteal iterations)")

    # Compare with the no-stealing baseline on the same inputs.
    baseline = repro.BSPEngine(topology).run(
        graph, partition, "sssp", source=source
    )
    assert np.array_equal(result.values, baseline.values), \
        "stealing must never change answers"
    print(f"\nvs static BSP   : {baseline.total_ms:8.2f} ms "
          f"-> GUM is {baseline.total_seconds / result.total_seconds:.2f}x "
          "faster on this workload")


if __name__ == "__main__":
    main()
