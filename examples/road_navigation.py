#!/usr/bin/env python3
"""Road-network routing: SSSP and the long-tail problem.

The second motivating workload: shortest paths over a road network,
whose enormous diameter produces thousands of near-empty iterations
where synchronization overhead dominates (the LT problem). This
example runs SSSP on the road-USA stand-in and visualizes OSteal's
group-size switching — the reproduction of the paper's Figure 9
behaviour as a library user would see it.

Run:  python examples/road_navigation.py
"""

import numpy as np

import repro
from repro.bench import switch_points


def main() -> None:
    graph = repro.datasets.load("USA")
    weighted = repro.with_random_weights(graph, seed=11)
    print(f"graph: {weighted}")
    print(f"pseudo-diameter ~ {repro.graph.pseudo_diameter(graph)} "
          "(the LT ingredient)\n")

    partition = repro.random_partition(weighted, 8, seed=0)
    source = int(np.argmax(weighted.out_degrees()))

    # GUM with OSteal (the default).
    engine = repro.GumEngine(repro.dgx1(8))
    result = engine.run(weighted, partition, "sssp", source=source)
    reachable = np.isfinite(result.values)
    print(f"SSSP from {source}: {int(reachable.sum())} reachable, "
          f"mean distance {result.values[reachable].mean():.1f}")
    print(f"virtual runtime: {result.total_ms:.1f} ms over "
          f"{result.num_iterations} iterations\n")

    print("OSteal switching (iteration -> active GPU count):")
    events = switch_points(result.group_size_series())
    for iteration, group in events[:20]:
        print(f"  iteration {iteration:5d}: n = {group}")
    if len(events) > 20:
        print(f"  ... {len(events) - 20} more switches")

    # What the long tail costs without OSteal.
    config = repro.GumConfig(fsteal=True, osteal=False)
    flat = repro.GumEngine(repro.dgx1(8), config=config).run(
        weighted, partition, "sssp", source=source
    )
    print(f"\nsynchronization time: "
          f"{flat.breakdown.sync * 1e3:.1f} ms without OSteal vs "
          f"{result.breakdown.sync * 1e3:.1f} ms with")
    print(f"end-to-end: {flat.total_ms:.1f} -> {result.total_ms:.1f} ms "
          f"({flat.total_seconds / result.total_seconds:.2f}x)")

    # Point-to-point query on top of the SSSP field.
    target = int(np.argmax(np.where(reachable, result.values, -1)))
    print(f"\nfarthest reachable vertex: {target} at distance "
          f"{result.values[target]:.0f}")


if __name__ == "__main__":
    main()
