#!/usr/bin/env python3
"""Live telemetry and SLO gating, end to end.

Streams a GUM run as repro-live JSON lines while it executes, replays
the stream in the `repro top` dashboard model, then evaluates a
repro-slo/1 policy against the run: first the shipping rules (green),
then a tightened copy (red) — the loop a CI gate runs on every build
(see the slo-gate job in .github/workflows/ci.yml).

Run:  python examples/slo_gate.py
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.cli import result_summary
from repro.obs import MetricsRegistry, StreamingSink, Tracer
from repro.obs.slo import SLO_SCHEMA, evaluate, policy_from_dict
from repro.obs.top import follow_stream

RULES = {
    "schema": SLO_SCHEMA,
    "rules": [
        {"metric": "total_ms", "max": 35.0},
        {"metric": "p99_iteration_ms", "max": 1.0},
        {"metric": "min_gpu_utilization", "min": 0.9},
        {"metric": "max_stall_fraction", "max": 0.05},
        # CI's budget is 3% measured warm and best-of-3
        # (benchmarks/perf/test_obs_overhead.py); one-shot wall-clock
        # measurements are noisier, so this demo leaves slack
        {"metric": "obs_overhead_pct", "max": 6.0, "required": False},
        # anomaly scan; BFS phase structure is expected, so the
        # ceiling sits above its natural z-scores
        {"series": "wall_ms", "zscore_max": 120.0, "warmup": 5},
    ],
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="slo-gate-"))
    stream_path = workdir / "live.jsonl"

    # --- stream the run live ------------------------------------------
    graph = repro.datasets.load("TX")
    source = int(np.argmax(graph.out_degrees()))
    # one silent warm-up run so the overhead measurement reflects
    # steady state (cost-model training and cache fills land here,
    # not on the tracer's tab)
    repro.run(graph, "bfs", num_gpus=4, source=source)
    metrics = MetricsRegistry()
    tracer = Tracer(sinks=[StreamingSink(
        stream_path,
        meta={"engine": "gum", "algorithm": "bfs", "graph": "TX",
              "num_gpus": 4},
        metrics=metrics,
        snapshot_every=10,
    )])
    result = repro.run(
        graph, "bfs", num_gpus=4, source=source,
        tracer=tracer, metrics=metrics,
    )
    tracer.close()
    summary = result_summary(result)
    print(f"streamed {result.num_iterations} supersteps to "
          f"{stream_path}")
    print(f"virtual time {result.total_ms:.2f} ms, observability "
          f"overhead {summary['obs_overhead_pct']:.2f}% of run wall "
          "time\n")

    # --- what a consumer sees: replay the stream in the dashboard ----
    frames = []
    follow_stream(stream_path, frames.append, follow=False, ansi=False)
    print(frames[-1])

    # --- the gate, green ----------------------------------------------
    policy = policy_from_dict(RULES, source="examples/slo_gate.py")
    report = evaluate(policy, summary, result.timeseries(),
                      subject="live TX/bfs run")
    print("\n".join(report.lines()))
    assert report.ok and report.exit_code == 0

    # --- the gate, red: tighten p99 below what the run achieves ------
    tightened = {
        "schema": SLO_SCHEMA,
        "rules": [{"metric": "p99_iteration_ms", "max": 0.1}],
    }
    red = evaluate(policy_from_dict(tightened), summary,
                   result.timeseries(), subject="tightened rules")
    print()
    print("\n".join(red.lines()))
    assert not red.ok and red.exit_code == 1
    print("\nexit codes: 0 = objectives hold, 1 = violation, "
          "2 = bad input — CI branches on exactly this")


if __name__ == "__main__":
    main()
