#!/usr/bin/env python3
"""Social-network analytics: PageRank + community structure at scale.

The workload from the paper's introduction: ranking and connectivity
analysis over a skewed social graph, where hub vertices cause the
dynamic load-imbalance (DLB) problem. This example runs PageRank and
WCC on the soc-orkut stand-in under all three engine models and shows
why stealing matters on skewed inputs.

Run:  python examples/social_network_analytics.py
"""

import numpy as np

import repro


def run_engine(name, graph, partition, algorithm, **params):
    topology = repro.dgx1(partition.num_fragments)
    if name == "gum":
        engine = repro.GumEngine(topology)
    elif name == "gunrock":
        engine = repro.GunrockEngine(topology)
    else:
        engine = repro.GrouteEngine(topology)
    return engine.run(graph, partition, algorithm, **params)


def main() -> None:
    graph = repro.datasets.load("OR")
    summary = repro.graph.degree_summary(graph)
    print(f"graph: {graph}")
    print(f"degree skew: gini={summary.gini:.2f}, "
          f"max degree {summary.max_out_degree} vs "
          f"mean {summary.avg_out_degree:.1f} — the DLB ingredient\n")

    partition = repro.random_partition(graph, 8, seed=0)

    # --- PageRank: who are the influencers? -------------------------
    print("== PageRank (30 rounds) ==")
    results = {}
    for engine in ("gunrock", "groute", "gum"):
        results[engine] = run_engine(
            engine, graph, partition, "pr", max_rounds=30, tol=1e-12
        )
        print(f"  {engine:8s}: {results[engine].total_ms:9.1f} virtual ms"
              f"  (stall {results[engine].stall_fraction():.0%})")
    ranks = results["gum"].values
    top = np.argsort(-ranks)[:5]
    print("  top-5 vertices by rank:",
          [(int(v), f"{ranks[v]:.2e}") for v in top])

    # --- WCC: community structure ------------------------------------
    print("\n== Connected components ==")
    sym = repro.symmetrize(graph)
    sym_partition = repro.random_partition(sym, 8, seed=0)
    for engine in ("gunrock", "groute", "gum"):
        result = run_engine(engine, sym, sym_partition, "wcc")
        labels = result.values.astype(np.int64)
        sizes = np.bincount(np.unique(labels, return_inverse=True)[1])
        print(f"  {engine:8s}: {result.total_ms:9.1f} virtual ms — "
              f"{sizes.size} components, "
              f"largest covers {sizes.max() / sym.num_vertices:.0%}")

    # --- why GUM wins here -------------------------------------------
    print("\n== The stealing effect on this graph ==")
    config = repro.GumConfig(fsteal=False, osteal=False,
                             cost_model="oracle")
    no_steal = repro.GumEngine(repro.dgx1(8), config=config).run(
        graph, partition, "pr", max_rounds=30, tol=1e-12
    )
    steal = results["gum"]
    print(f"  without stealing: {no_steal.total_ms:9.1f} ms "
          f"(stall {no_steal.stall_fraction():.0%})")
    print(f"  with stealing   : {steal.total_ms:9.1f} ms "
          f"(stall {steal.stall_fraction():.0%})")
    print(f"  -> {no_steal.total_seconds / steal.total_seconds:.2f}x from "
          "rebalancing hub-induced skew")


if __name__ == "__main__":
    main()
