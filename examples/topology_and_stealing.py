#!/usr/bin/env python3
"""Under the hood: topologies, cost matrices, and a hand-rolled FSteal.

Shows the library as a toolkit: inspect the NVLink topology the way
the stealing algorithms see it, build the paper's cost coefficients
``c_ij = 1/B_ij + g(W_i)`` by hand, solve one FSteal instance with
different backends, and walk the OSteal reduction tree.

Run:  python examples/topology_and_stealing.py
"""

import numpy as np

import repro
from repro import config
from repro.core import (
    FStealProblem,
    OracleCostModel,
    ReductionTree,
    build_cost_matrix,
    make_solver,
    select_vertices,
)
from repro.graph.features import frontier_features
from repro.hardware import measure_comm_cost_matrix
from repro.runtime import Frontier


def main() -> None:
    topology = repro.dgx1(8)
    np.set_printoptions(precision=1, suppress=True, linewidth=120)

    print("== The machine (paper Figure 2 class) ==")
    print("NVLink lanes between GPU pairs:")
    print(topology.lane_matrix)
    print("\neffective bandwidth (GB/s), multi-hop transit allowed:")
    print(topology.effective_bandwidth_matrix())
    print(f"\nGPU0 <-> GPU7 have no direct link, but transit gives "
          f"{topology.effective_bandwidth(0, 7):.0f} GB/s "
          f"(PCIe fallback would be 12)")

    print("\n== One FSteal instance, by hand ==")
    graph = repro.datasets.load("SW")
    partition = repro.random_partition(graph, 8, seed=0)
    # pretend iteration frontier: a skewed slice of the vertex space
    rng = np.random.default_rng(0)
    frontier = Frontier(rng.integers(0, graph.num_vertices, 4000))
    fragments = [
        Frontier.from_sorted(part)
        for part in partition.split_frontier(frontier.vertices)
    ]
    workloads = np.array([f.work(graph) for f in fragments])
    print(f"per-fragment workloads l_i: {workloads} "
          f"(max/min = {workloads.max() / max(1, workloads.min()):.2f}x)")

    comm = measure_comm_cost_matrix(topology, config.BYTES_PER_EDGE)
    features = [
        frontier_features(graph, f.vertices) for f in fragments
    ]
    costs = build_cost_matrix(
        comm, features, OracleCostModel(), np.arange(8)
    )
    print(f"cost coefficients c_ij (ns/edge):")
    print(costs * 1e9)

    problem = FStealProblem(costs, workloads)
    static = np.diag(workloads)
    print(f"\nno stealing        : makespan "
          f"{problem.objective(static) * 1e3:.3f} ms")
    for backend in ("greedy", "lp", "highs"):
        solution = make_solver(backend).solve(problem)
        print(f"solver {backend:7s}     : makespan "
              f"{solution.objective * 1e3:.3f} ms")

    solution = make_solver("lp").solve(problem)
    moved = int(
        solution.assignment.sum() - np.trace(solution.assignment)
    )
    print(f"edges moved off their home GPU: {moved} "
          f"({moved / max(1, workloads.sum()):.0%})")
    chunks = select_vertices(graph, 0, fragments[0],
                             solution.assignment[0])
    print("fragment 0 realized as consecutive slices:",
          [(c.worker, c.vertices.size, c.edges) for c in chunks])

    print("\n== The OSteal reduction tree (paper Figure 4b) ==")
    tree = ReductionTree(topology)
    print("merge sequence (victim -> thief):", tree.merge_sequence)
    for m in (8, 6, 4, 2, 1):
        print(f"  group size {m}: active {tree.active_workers(m)}, "
              f"ownership {tree.ownership(m).tolist()}")


if __name__ == "__main__":
    main()
