#!/usr/bin/env python3
"""Training the per-edge cost model (paper Section III-B / Exp-7).

Collects running logs (frontier features + observed per-edge cost)
from a corpus of generated graphs, trains the four model families the
paper compares, and shows the accuracy/performance trade-off that
leads GUM to pick polynomial regression.

Run:  python examples/train_cost_model.py
"""

import numpy as np

import repro
from repro.core import (
    MODEL_FAMILIES,
    GumConfig,
    collect_training_data,
    default_training_corpus,
    rmsre,
)


def main() -> None:
    print("collecting running logs from the training corpus ...")
    corpus = default_training_corpus()
    features, costs = collect_training_data(corpus)
    print(f"  {features.shape[0]} samples x {features.shape[1]} features "
          f"from {len(corpus)} graphs x 4 algorithms")
    print(f"  target range: {costs.min() * 1e9:.2f} .. "
          f"{costs.max() * 1e9:.2f} ns/edge\n")

    rng = np.random.default_rng(0)
    order = rng.permutation(costs.size)
    split = int(0.8 * costs.size)
    train, test = order[:split], order[split:]

    print(f"{'model':12s} {'train RMSRE':>12s} {'test RMSRE':>12s} "
          f"{'train time':>11s}")
    trained = {}
    for name, factory in MODEL_FAMILIES.items():
        model = factory()
        report = model.fit(features[train], costs[train])
        test_error = rmsre(model.predict(features[test]), costs[test])
        trained[name] = model
        print(f"{name:12s} {report.train_rmsre:12.3f} "
              f"{test_error:12.3f} {report.train_seconds:10.2f}s")

    # Plug a trained model into the arbitrator and measure the effect.
    print("\nreplaying FSteal-driven SSSP with each model ...")
    graph = repro.datasets.load("SW")
    weighted = repro.with_random_weights(graph, seed=11)
    partition = repro.random_partition(weighted, 8, seed=0)
    source = int(np.argmax(weighted.out_degrees()))

    oracle = repro.GumEngine(
        repro.dgx1(8), config=GumConfig(cost_model="oracle")
    ).run(weighted, partition, "sssp", source=source)
    print(f"  oracle costs : {oracle.total_ms:9.1f} virtual ms")
    for name in ("linear", "polynomial"):
        engine = repro.GumEngine(
            repro.dgx1(8), config=GumConfig(cost_model=trained[name])
        )
        result = engine.run(weighted, partition, "sssp", source=source)
        retained = oracle.total_seconds / result.total_seconds
        print(f"  {name:12s}: {result.total_ms:9.1f} virtual ms "
              f"({retained:.0%} of oracle performance)")


if __name__ == "__main__":
    main()
