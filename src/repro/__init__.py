"""repro — a reproduction of GUM (ICDE 2023) on a simulated multi-GPU machine.

GUM ("Efficient Multi-GPU Graph Processing with Remote Work Stealing",
Meng et al., ICDE 2023) attacks two utilization killers in multi-GPU
graph analytics — dynamic load imbalance (DLB) and the long tail (LT)
— with two NVLink-topology-aware stealing mechanisms:

* **FSteal** (frontier stealing): a per-iteration min-max MILP
  redistributes frontier edges across GPUs using learned cost
  coefficients ``c_ij = 1/B_ij + g(W_i)``;
* **OSteal** (ownership stealing): a reduction tree folds the worker
  group when synchronization overhead ``p*m`` dominates tiny tail
  iterations.

This package implements the complete system — graph substrate,
edge-cut partitioners, a calibrated virtual multi-GPU machine with
asymmetric NVLink topology, a BSP runtime, the GUM arbitrator, and
behavioural models of the Gunrock and Groute baselines — in pure
Python/NumPy. See DESIGN.md for the hardware-substitution rationale
and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    import repro

    graph = repro.datasets.load("LJ")
    partition = repro.random_partition(graph, 8)
    engine = repro.GumEngine(repro.dgx1(8))
    result = engine.run(graph, partition, "bfs", source=0)
    print(f"{result.total_ms:.1f} virtual ms, "
          f"stall {result.stall_fraction():.0%}")
"""

from repro import config
from repro.chaos import (
    ChaosController,
    ChaosScenario,
    FallbackSolver,
    FaultSpec,
)
from repro.errors import (
    ConvergenceError,
    CostModelError,
    DegradedModeError,
    EngineError,
    FaultInjectionError,
    GraphError,
    PartitionError,
    ReproError,
    SolverError,
    TopologyError,
)
from repro.graph import (
    CSRGraph,
    from_edge_arrays,
    from_edges,
    load_edge_list,
    load_matrix_market,
    rmat,
    road_network,
    symmetrize,
    web_graph,
    with_random_weights,
)
from repro.graph import datasets
from repro.partition import (
    Partition,
    make_partition,
    metis_like_partition,
    random_partition,
    segmented_partition,
)
from repro.hardware import (
    DeviceModel,
    GPUSpec,
    TimingModel,
    Topology,
    dgx1,
    fully_connected,
    ring_topology,
    single_gpu,
)
from repro.runtime import (
    BSPEngine,
    EngineOptions,
    Frontier,
    RunResult,
    StaticScheduler,
    TimeBreakdown,
)
from repro.algorithms import ALGORITHMS, make_algorithm
from repro.core import (
    GumConfig,
    GumEngine,
    GumScheduler,
    HubCache,
    ReductionTree,
    pretrained_default,
)
from repro.baselines import GrouteEngine, GunrockEngine
from repro.obs import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NULL_METRICS,
    NULL_TRACER,
    Tracer,
    write_chrome_trace,
)
from repro.facade import run

__version__ = "1.0.0"

__all__ = [
    "config",
    "datasets",
    # errors
    "ReproError",
    "GraphError",
    "PartitionError",
    "TopologyError",
    "SolverError",
    "EngineError",
    "ConvergenceError",
    "CostModelError",
    "FaultInjectionError",
    "DegradedModeError",
    # chaos
    "ChaosScenario",
    "FaultSpec",
    "ChaosController",
    "FallbackSolver",
    # graph
    "CSRGraph",
    "from_edges",
    "from_edge_arrays",
    "load_edge_list",
    "load_matrix_market",
    "symmetrize",
    "rmat",
    "web_graph",
    "road_network",
    "with_random_weights",
    # partition
    "Partition",
    "random_partition",
    "segmented_partition",
    "metis_like_partition",
    "make_partition",
    # hardware
    "GPUSpec",
    "Topology",
    "dgx1",
    "ring_topology",
    "fully_connected",
    "single_gpu",
    "DeviceModel",
    "TimingModel",
    # runtime
    "Frontier",
    "BSPEngine",
    "EngineOptions",
    "StaticScheduler",
    "RunResult",
    "TimeBreakdown",
    # algorithms
    "ALGORITHMS",
    "make_algorithm",
    # core (GUM)
    "GumEngine",
    "GumConfig",
    "GumScheduler",
    "HubCache",
    "ReductionTree",
    "pretrained_default",
    # baselines
    "GunrockEngine",
    "GrouteEngine",
    # observability
    "Tracer",
    "MetricsRegistry",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "write_chrome_trace",
    "NULL_TRACER",
    "NULL_METRICS",
    "run",
    "__version__",
]
