"""Vertex programs: the paper's four (BFS, SSSP, WCC, PR) plus
extensions (delta-PageRank, delta-stepping SSSP, k-core)."""

from typing import Dict, Type

from repro.algorithms.base import AlgorithmState, GASAlgorithm
from repro.algorithms.bfs import BFS
from repro.algorithms.sssp import SSSP
from repro.algorithms.wcc import WCC
from repro.algorithms.pagerank import DeltaPageRank, PageRank
from repro.algorithms.delta_stepping import DeltaSteppingSSSP
from repro.algorithms.kcore import KCore

#: Registry keyed by the short names used throughout the benchmarks.
ALGORITHMS: Dict[str, Type[GASAlgorithm]] = {
    "bfs": BFS,
    "sssp": SSSP,
    "wcc": WCC,
    "pr": PageRank,
    "dpr": DeltaPageRank,
    "dsssp": DeltaSteppingSSSP,
    "kcore": KCore,
}


def make_algorithm(name: str) -> GASAlgorithm:
    """Instantiate a registered algorithm by short name."""
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        ) from None


__all__ = [
    "AlgorithmState",
    "GASAlgorithm",
    "BFS",
    "SSSP",
    "WCC",
    "PageRank",
    "DeltaPageRank",
    "DeltaSteppingSSSP",
    "KCore",
    "ALGORITHMS",
    "make_algorithm",
]
