"""The GAS (Gather-Apply-Scatter) algorithm interface.

The paper runs GAS algorithms in BSP mode (Section II): each superstep
scatters the frontier's values along out-edges, gathers incoming
messages with an aggregator, applies them, and emits the next frontier.

Implementations here are *vectorized single-address-space* versions:
the engine owns distribution and timing, the algorithm owns semantics.
This split mirrors the paper's design, where FSteal/OSteal reassign
work without changing what is computed — a property our metamorphic
tests verify directly.

Contract for :meth:`GASAlgorithm.step`:

* read ``state.frontier``, mutate ``state.values`` (and aux buffers),
* return the next frontier,
* be deterministic and independent of how the engine scheduled work.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["AlgorithmState", "GASAlgorithm"]


@dataclass
class AlgorithmState:
    """Mutable per-run state of a GAS algorithm."""

    values: np.ndarray
    frontier: Frontier
    iteration: int = 0
    aux: Dict[str, Any] = field(default_factory=dict)


class GASAlgorithm(abc.ABC):
    """Base class for vertex programs.

    Class attributes describe requirements the benchmark runner honors:

    ``needs_weights``
        The algorithm reads edge weights (SSSP); unweighted input gets
        unit weights.
    ``needs_symmetric``
        The algorithm's semantics assume an undirected edge set (WCC);
        the runner symmetrizes directed inputs first.
    ``monotonic``
        Vertex values only ever improve in one direction (min-style
        propagation). Asynchronous engines (the Groute model) may run
        such algorithms to a local fixed point safely.
    """

    name: str = "abstract"
    needs_weights: bool = False
    needs_symmetric: bool = False
    monotonic: bool = False

    @abc.abstractmethod
    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create initial values and the starting frontier."""

    @abc.abstractmethod
    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Run one superstep; mutate values, return the next frontier."""

    def local_step(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        frontier: Frontier,
        allowed_mask: np.ndarray,
    ) -> Frontier:
        """One superstep restricted to edges allowed by a mask.

        Used by the asynchronous engine model: ``allowed_mask`` is a
        per-edge boolean (CSR order) selecting intra-fragment edges.
        Only meaningful for ``monotonic`` algorithms; the default
        raises for the rest.

        Returns the frontier of vertices activated by allowed edges.
        """
        raise NotImplementedError(
            f"{self.name} does not support masked local steps"
        )

    def is_converged(self, state: AlgorithmState) -> bool:
        """Whether the run may stop (default: empty frontier)."""
        return not state.frontier

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
