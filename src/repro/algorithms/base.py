"""The GAS (Gather-Apply-Scatter) algorithm interface.

The paper runs GAS algorithms in BSP mode (Section II): each superstep
scatters the frontier's values along out-edges, gathers incoming
messages with an aggregator, applies them, and emits the next frontier.

Implementations here are *vectorized single-address-space* versions:
the engine owns distribution and timing, the algorithm owns semantics.
This split mirrors the paper's design, where FSteal/OSteal reassign
work without changing what is computed — a property our metamorphic
tests verify directly.

Contract for :meth:`GASAlgorithm.step`:

* read ``state.frontier``, mutate ``state.values`` (and aux buffers),
* return the next frontier,
* be deterministic and independent of how the engine scheduled work.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["AlgorithmState", "GASAlgorithm"]


@dataclass
class AlgorithmState:
    """Mutable per-run state of a GAS algorithm."""

    values: np.ndarray
    frontier: Frontier
    iteration: int = 0
    aux: Dict[str, Any] = field(default_factory=dict)


class GASAlgorithm(abc.ABC):
    """Base class for vertex programs.

    Class attributes describe requirements the benchmark runner honors:

    ``needs_weights``
        The algorithm reads edge weights (SSSP); unweighted input gets
        unit weights.
    ``needs_symmetric``
        The algorithm's semantics assume an undirected edge set (WCC);
        the runner symmetrizes directed inputs first.
    ``monotonic``
        Vertex values only ever improve in one direction (min-style
        propagation). Asynchronous engines (the Groute model) may run
        such algorithms to a local fixed point safely.
    """

    name: str = "abstract"
    needs_weights: bool = False
    needs_symmetric: bool = False
    monotonic: bool = False
    #: the superstep can be computed as independent per-fragment
    #: partials merged by an *exact* associative reduction (see
    #: :meth:`fragment_step`); required for process-parallel execution
    supports_fragment_step: bool = False

    @abc.abstractmethod
    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create initial values and the starting frontier."""

    @abc.abstractmethod
    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Run one superstep; mutate values, return the next frontier."""

    def local_step(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        frontier: Frontier,
        allowed_mask: np.ndarray,
    ) -> Frontier:
        """One superstep restricted to edges allowed by a mask.

        Used by the asynchronous engine model: ``allowed_mask`` is a
        per-edge boolean (CSR order) selecting intra-fragment edges.
        Only meaningful for ``monotonic`` algorithms; the default
        raises for the rest.

        Returns the frontier of vertices activated by allowed edges.
        """
        raise NotImplementedError(
            f"{self.name} does not support masked local steps"
        )

    def fragment_step(
        self,
        graph: CSRGraph,
        values: np.ndarray,
        vertices: np.ndarray,
        scratch: np.ndarray = None,
        edges: "tuple[np.ndarray, np.ndarray]" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Stateless partial superstep over one fragment's frontier slice.

        Runs in a worker process of the shared-memory backend: reads
        ``values`` (never writes), expands the out-edges of
        ``vertices``, and returns the partial aggregates the worker
        scatters into its shared row for :meth:`merge_fragment_rows`
        to combine in the coordinator. The
        split is only offered when the aggregation is *exactly*
        associative (``supports_fragment_step``), so the merged result
        is bit-identical to :meth:`step` on the whole frontier.

        ``edges`` optionally passes the caller's already-computed
        ``(sources, positions)`` gather of ``vertices`` — workers share
        one adjacency walk between the message-cost scan and the relax,
        like the frontier memo does in-process.
        """
        raise NotImplementedError(
            f"{self.name} does not support fragment steps"
        )

    def merge_fragment_rows(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        rows: np.ndarray,
    ) -> Frontier:
        """Merge dense per-fragment partial rows; mutate ``state``.

        ``rows`` is a ``(num_fragments, num_vertices)`` array where row
        ``i`` holds fragment ``i``'s :meth:`fragment_step` partial
        scattered over the vertex axis (identity element — ``inf`` for
        min — everywhere untouched). The shared-memory backend has its
        workers write these rows into a shared mapping, so the
        coordinator reduces columns without any partials crossing a
        pickle boundary. Exactness contract: the merged values and
        frontier must be bit-identical to :meth:`step` over the
        undivided frontier.
        """
        raise NotImplementedError(
            f"{self.name} does not support fragment steps"
        )

    def is_converged(self, state: AlgorithmState) -> bool:
        """Whether the run may stop (default: empty frontier)."""
        return not state.frontier

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
