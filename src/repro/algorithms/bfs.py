"""Breadth-first search (level labelling).

Vertex value = BFS level from the source (``inf`` if unreachable).
Modelled as min-propagation with unit edge "weights", which makes BFS,
SSSP, and WCC share one engine-facing contract.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.algorithms.base import AlgorithmState
from repro.algorithms.minprop import MinPropagation
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["BFS"]


class BFS(MinPropagation):
    """Single-source BFS. ``init`` params: ``source`` (default 0)."""

    name = "bfs"

    def candidates(
        self,
        values: np.ndarray,
        sources: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Each edge offers ``level(src) + 1``; weights are ignored."""
        return values[sources] + 1.0

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        source = int(params.pop("source", 0))
        if params:
            raise EngineError(f"unknown BFS params: {sorted(params)}")
        if not 0 <= source < graph.num_vertices:
            raise EngineError(f"BFS source {source} out of range")
        values = np.full(graph.num_vertices, np.inf)
        values[source] = 0.0
        return self._initial_state(
            graph, values, Frontier(np.array([source], dtype=np.int64))
        )
