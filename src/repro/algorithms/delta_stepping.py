"""Delta-stepping SSSP (extension algorithm).

The bucketed shortest-path algorithm [Meyer & Sanders] that Gunrock's
"near-far" optimization approximates with two buckets. Vertices are
processed in distance buckets of width ``delta``: each superstep
relaxes the current bucket's out-edges; once the bucket drains, the
algorithm advances to the next non-empty one.

Compared to the plain Bellman-Ford frontier (:class:`~repro.algorithms.
sssp.SSSP`), delta-stepping performs fewer redundant relaxations on
weighted graphs at the cost of more, smaller supersteps — exactly the
trade-off the paper discusses for near-far (work saved vs extra
synchronization), which makes it a natural workload for studying the
LT problem. Registered as ``"dsssp"``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import AlgorithmState, GASAlgorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edges
from repro.runtime.frontier import Frontier

__all__ = ["DeltaSteppingSSSP"]


class DeltaSteppingSSSP(GASAlgorithm):
    """Bucketed SSSP. ``init`` params: ``source``, ``delta``.

    ``delta`` defaults to twice the mean edge weight, the standard
    heuristic. Produces distances identical to Dijkstra; validated
    against the scipy oracle in the tests.
    """

    name = "dsssp"
    needs_weights = True
    # not flagged monotonic: bucket advancement makes masked local
    # fixed points unsound for the async engine model

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        source = int(params.pop("source", 0))
        delta = params.pop("delta", None)
        if params:
            raise EngineError(
                f"unknown delta-stepping params: {sorted(params)}"
            )
        if not 0 <= source < graph.num_vertices:
            raise EngineError(f"source {source} out of range")
        if delta is None:
            if graph.weights is not None and graph.weights.size:
                delta = 2.0 * float(graph.weights.mean())
            else:
                delta = 2.0
        delta = float(delta)
        if delta <= 0:
            raise EngineError("delta must be positive")
        values = np.full(graph.num_vertices, np.inf)
        values[source] = 0.0
        pending = np.zeros(graph.num_vertices, dtype=bool)
        pending[source] = True
        state = AlgorithmState(
            values=values,
            frontier=Frontier(np.array([source], dtype=np.int64)),
        )
        state.aux.update(delta=delta, bucket=0, pending=pending)
        return state

    def _current_bucket_frontier(
        self, state: AlgorithmState
    ) -> Frontier:
        """Pending vertices inside the current bucket (advancing it
        to the next non-empty bucket if needed)."""
        aux = state.aux
        pending = aux["pending"]
        candidates = np.flatnonzero(pending)
        if candidates.size == 0:
            return Frontier.empty()
        distances = state.values[candidates]
        # advance the bucket index to the lowest pending distance
        lowest = int(distances.min() // aux["delta"])
        aux["bucket"] = max(aux["bucket"], lowest)
        limit = (aux["bucket"] + 1) * aux["delta"]
        in_bucket = candidates[distances < limit]
        if in_bucket.size == 0:
            # everything pending lies beyond this bucket: jump ahead
            aux["bucket"] = int(distances.min() // aux["delta"])
            limit = (aux["bucket"] + 1) * aux["delta"]
            in_bucket = candidates[distances < limit]
        return Frontier.from_sorted(in_bucket)

    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Relax the current bucket; return the next bucket frontier."""
        aux = state.aux
        frontier = state.frontier
        if frontier:
            sources, destinations, weights = gather_edges(
                graph, frontier.vertices
            )
            aux["pending"][frontier.vertices] = False
            if destinations.size:
                if weights is None:
                    weights = np.ones(destinations.size)
                cand = state.values[sources] + weights
                scratch = aux.get("scratch")
                if scratch is None:
                    scratch = np.full(graph.num_vertices, np.inf)
                    aux["scratch"] = scratch
                touched = np.unique(destinations)
                np.minimum.at(scratch, destinations, cand)
                improved = touched[
                    scratch[touched] < state.values[touched]
                ]
                state.values[improved] = scratch[improved]
                scratch[touched] = np.inf
                aux["pending"][improved] = True
        return self._current_bucket_frontier(state)
