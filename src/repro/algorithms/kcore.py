"""k-core decomposition by iterative peeling (extension algorithm).

A vertex belongs to the k-core if it survives repeatedly deleting all
vertices of (undirected) degree < k. Each superstep peels the current
layer of sub-``k`` vertices and decrements their neighbors — a
frontier whose size *decays* over rounds, another natural long-tail
workload for the engines.

Final vertex value: the vertex's remaining degree if it is in the
k-core, else ``-1``. Registered as ``"kcore"``; validated against
networkx's ``k_core`` in the tests.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import AlgorithmState, GASAlgorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edges
from repro.runtime.frontier import Frontier

__all__ = ["KCore"]


class KCore(GASAlgorithm):
    """k-core membership via peeling. ``init`` params: ``k``."""

    name = "kcore"
    needs_symmetric = True

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        k = int(params.pop("k", 2))
        if params:
            raise EngineError(f"unknown k-core params: {sorted(params)}")
        if k < 1:
            raise EngineError("k must be at least 1")
        degrees = graph.out_degrees().astype(np.float64)
        removed = np.zeros(graph.num_vertices, dtype=bool)
        first_layer = np.flatnonzero(degrees < k).astype(np.int64)
        state = AlgorithmState(
            values=degrees.copy(),
            frontier=Frontier.from_sorted(first_layer),
        )
        state.aux.update(k=k, removed=removed)
        return state

    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Peel the current sub-k layer; activate newly sub-k vertices."""
        aux = state.aux
        k = aux["k"]
        removed = aux["removed"]
        layer = state.frontier.vertices
        if layer.size == 0:
            return Frontier.empty()
        removed[layer] = True
        state.values[layer] = -1.0
        __, destinations, __w = gather_edges(graph, layer)
        if destinations.size == 0:
            return Frontier.empty()
        decrements = np.zeros(graph.num_vertices)
        np.add.at(decrements, destinations, 1.0)
        alive = ~removed
        state.values[alive] -= decrements[alive]
        newly_sub_k = np.flatnonzero(
            alive & (state.values < k) & (decrements > 0)
        )
        return Frontier.from_sorted(newly_sub_k.astype(np.int64))
