"""Shared machinery for monotone min-propagation algorithms.

BFS, SSSP, and WCC are all instances of the same pattern: every vertex
holds a value that only ever *decreases*, and a superstep relaxes the
frontier's out-edges, activating every vertex whose value improved.
:class:`MinPropagation` implements the pattern once — including the
masked ``local_step`` the asynchronous (Groute-model) engine uses to
run a fragment to its local fixed point, which is sound precisely
because the propagation is monotone.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.algorithms.base import AlgorithmState, GASAlgorithm
from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edge_positions
from repro.runtime.frontier import Frontier

__all__ = ["MinPropagation"]


class MinPropagation(GASAlgorithm):
    """Base class: min-aggregation over out-edges.

    Subclasses implement :meth:`candidates` (the value each edge
    offers its destination) and :meth:`init`.
    """

    monotonic = True
    # min over fragment minima equals the global min bit-for-bit in
    # float64 (min is exactly associative, unlike float addition), so
    # min-propagation supersteps can run as per-fragment partials
    supports_fragment_step = True

    def candidates(
        self,
        values: np.ndarray,
        sources: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Candidate value delivered along each edge."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _scratch(self, graph: CSRGraph, state: AlgorithmState) -> np.ndarray:
        scratch = state.aux.get("scratch")
        if scratch is None:
            scratch = np.full(graph.num_vertices, np.inf)
            state.aux["scratch"] = scratch
        return scratch

    def _relax(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        sources: np.ndarray,
        positions: np.ndarray,
    ) -> Frontier:
        """Apply min-relaxation along the given edges; return activated."""
        if sources.size == 0:
            return Frontier.empty()
        destinations = graph.indices[positions]
        weights = (
            graph.weights[positions] if graph.weights is not None else None
        )
        cand = self.candidates(state.values, sources, weights)
        scratch = self._scratch(graph, state)
        touched = np.unique(destinations)
        np.minimum.at(scratch, destinations, cand)
        improved = touched[scratch[touched] < state.values[touched]]
        state.values[improved] = scratch[improved]
        scratch[touched] = np.inf  # reset for the next call
        return Frontier.from_sorted(improved)

    # ------------------------------------------------------------------
    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Relax all out-edges of the frontier.

        The gather is memoized on the frontier, so when the engine's
        message-cost model already expanded this frontier the adjacency
        walk is not repeated.
        """
        sources, positions = state.frontier.edge_positions(graph)
        return self._relax(graph, state, sources, positions)

    def fragment_step(
        self,
        graph: CSRGraph,
        values: np.ndarray,
        vertices: np.ndarray,
        scratch: np.ndarray = None,
        edges: "tuple[np.ndarray, np.ndarray]" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-fragment partial relax: ``(touched, partial minima)``.

        Pure with respect to ``values`` — safe against a shared mapping
        read concurrently by other workers. ``scratch`` is the caller's
        reusable ``inf``-filled buffer (restored before returning).
        """
        if edges is None:
            edges = gather_edge_positions(graph, vertices)
        sources, positions = edges
        if sources.size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        destinations = graph.indices[positions]
        weights = (
            graph.weights[positions] if graph.weights is not None else None
        )
        cand = self.candidates(values, sources, weights)
        if scratch is None:
            scratch = np.full(graph.num_vertices, np.inf)
        touched = np.unique(destinations)
        np.minimum.at(scratch, destinations, cand)
        mins = scratch[touched].copy()
        scratch[touched] = np.inf  # restore for the next task
        return touched, mins

    def merge_fragment_rows(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        rows: np.ndarray,
    ) -> Frontier:
        """Column-wise min over per-fragment partial rows (exact merge).

        ``min(min_f1, min_f2, ...)`` equals the global min bit-for-bit
        in float64, so the merged values and the activated frontier are
        identical to :meth:`step` over the undivided frontier.
        """
        merged = np.min(rows, axis=0)
        improved = np.flatnonzero(merged < state.values)
        state.values[improved] = merged[improved]
        return Frontier.from_sorted(improved)

    def local_step(
        self,
        graph: CSRGraph,
        state: AlgorithmState,
        frontier: Frontier,
        allowed_mask: np.ndarray,
    ) -> Frontier:
        """Relax only edges selected by ``allowed_mask`` (CSR order)."""
        sources, positions = frontier.edge_positions(graph)
        keep = allowed_mask[positions]
        return self._relax(graph, state, sources[keep], positions[keep])

    # ------------------------------------------------------------------
    def _initial_state(
        self, graph: CSRGraph, values: np.ndarray, frontier: Frontier
    ) -> AlgorithmState:
        return AlgorithmState(values=values, frontier=frontier)

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        raise NotImplementedError
