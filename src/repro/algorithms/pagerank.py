"""PageRank: synchronous power iteration and delta (incremental) push.

* :class:`PageRank` — the classic dense BSP formulation the paper
  benchmarks: every vertex is active every iteration (so FSteal has
  little to rebalance — the paper's Exp-5 observes exactly this), and
  the run ends when the L1 residual drops below ``tol``.
* :class:`DeltaPageRank` — the incremental push formulation the paper
  cites as an LT-afflicted workload: only vertices holding enough
  residual stay active, so late iterations shrink to a trickle and
  synchronization overhead dominates.

Both converge to the same ranking (up to tolerance), which the tests
check against a reference power iteration.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.base import AlgorithmState, GASAlgorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["PageRank", "DeltaPageRank"]


class PageRank(GASAlgorithm):
    """Power-iteration PageRank.

    ``init`` params: ``damping`` (default 0.85), ``tol`` (default
    1e-9 L1 residual), ``max_rounds`` (default 100; reaching it simply
    stops the run — the values are still a valid approximation), and
    ``redistribute_dangling`` (default True; set False to match the
    push-based :class:`DeltaPageRank` fixed point, which — like most
    GPU implementations — lets dangling mass decay).
    """

    name = "pr"

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        damping = float(params.pop("damping", 0.85))
        tol = float(params.pop("tol", 1e-9))
        max_rounds = int(params.pop("max_rounds", 100))
        redistribute = bool(params.pop("redistribute_dangling", True))
        if params:
            raise EngineError(f"unknown PageRank params: {sorted(params)}")
        if not 0 < damping < 1:
            raise EngineError("damping must be in (0, 1)")
        n = graph.num_vertices
        values = np.full(n, 1.0 / max(1, n))
        state = AlgorithmState(values=values, frontier=Frontier.full(n))
        out_deg = graph.out_degrees().astype(np.float64)
        state.aux.update(
            damping=damping,
            tol=tol,
            max_rounds=max_rounds,
            out_deg=out_deg,
            dangling=out_deg == 0,
            redistribute=redistribute,
            residual=np.inf,
        )
        return state

    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """One synchronous power-iteration round."""
        aux = state.aux
        n = graph.num_vertices
        damping = aux["damping"]
        out_deg = aux["out_deg"]
        rank = state.values
        contrib = np.where(aux["dangling"], 0.0, rank / np.maximum(out_deg, 1))
        sums = np.zeros(n)
        # Dense round: every edge carries its source's contribution.
        iter_shards = getattr(graph, "iter_edge_shards", None)
        if iter_shards is not None:
            # out-of-core graph: stream the edge scan shard by shard.
            # np.add.at accumulates element-by-element in edge order,
            # so consecutive per-shard applications are bit-identical
            # to one pass over the concatenated arrays.
            for v_start, v_stop, __, indices, __w in iter_shards():
                sources = np.repeat(
                    np.arange(v_start, v_stop, dtype=np.int64),
                    np.diff(graph.indptr[v_start: v_stop + 1]),
                )
                np.add.at(sums, indices, contrib[sources])
        else:
            sources = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(graph.indptr)
            )
            np.add.at(sums, graph.indices, contrib[sources])
        if aux["redistribute"]:
            dangling_mass = float(rank[aux["dangling"]].sum())
            sums = sums + dangling_mass / max(1, n)
        new_rank = (1.0 - damping) / max(1, n) + damping * sums
        aux["residual"] = float(np.abs(new_rank - rank).sum())
        state.values[:] = new_rank
        done = (
            aux["residual"] < aux["tol"]
            or state.iteration + 1 >= aux["max_rounds"]
        )
        return Frontier.empty() if done else Frontier.full(n)


class DeltaPageRank(GASAlgorithm):
    """Residual-push PageRank (sparse, incremental).

    ``init`` params: ``damping`` (default 0.85), ``epsilon`` (default
    1e-8: residual threshold below which a vertex goes inactive),
    ``max_rounds`` (default 1000).
    """

    name = "dpr"

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        damping = float(params.pop("damping", 0.85))
        epsilon = float(params.pop("epsilon", 1e-8))
        max_rounds = int(params.pop("max_rounds", 1000))
        if params:
            raise EngineError(
                f"unknown DeltaPageRank params: {sorted(params)}"
            )
        n = graph.num_vertices
        values = np.zeros(n)
        residual = np.full(n, (1.0 - damping) / max(1, n))
        state = AlgorithmState(values=values, frontier=Frontier.full(n))
        state.aux.update(
            damping=damping,
            epsilon=epsilon,
            max_rounds=max_rounds,
            residual=residual,
            out_deg=graph.out_degrees().astype(np.float64),
        )
        return state

    def step(self, graph: CSRGraph, state: AlgorithmState) -> Frontier:
        """Push the frontier's residual mass to its out-neighbors."""
        aux = state.aux
        if state.iteration >= aux["max_rounds"]:
            return Frontier.empty()
        active = state.frontier.vertices
        residual = aux["residual"]
        damping = aux["damping"]
        out_deg = aux["out_deg"]
        # Absorb residual into the rank, then push the damped share.
        push = residual[active].copy()
        state.values[active] += push
        residual[active] = 0.0
        # memoized on the frontier — shared with the engine's
        # message-cost gather of the same frontier
        sources, destinations, __ = state.frontier.gather(graph)
        if destinations.size:
            share = damping * push / np.maximum(out_deg[active], 1.0)
            lookup = np.zeros(graph.num_vertices)
            lookup[active] = share
            np.add.at(residual, destinations, lookup[sources])
        next_active = np.flatnonzero(residual > aux["epsilon"])
        return Frontier.from_sorted(next_active.astype(np.int64))
