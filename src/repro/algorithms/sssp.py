"""Single-source shortest paths (Bellman-Ford-style frontier relaxation).

Vertex value = tentative distance from the source. This is the
algorithm the paper uses for its running examples: on long-diameter
graphs its thousands of tiny tail iterations exhibit the LT problem,
and its mid-run frontier explosions exhibit the DLB problem.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.algorithms.base import AlgorithmState
from repro.algorithms.minprop import MinPropagation
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["SSSP"]


class SSSP(MinPropagation):
    """Single-source shortest paths. ``init`` params: ``source``."""

    name = "sssp"
    needs_weights = True

    def candidates(
        self,
        values: np.ndarray,
        sources: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Each edge offers ``dist(src) + w``; unweighted edges count 1."""
        if weights is None:
            return values[sources] + 1.0
        return values[sources] + weights

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        source = int(params.pop("source", 0))
        if params:
            raise EngineError(f"unknown SSSP params: {sorted(params)}")
        if not 0 <= source < graph.num_vertices:
            raise EngineError(f"SSSP source {source} out of range")
        if graph.weights is not None and graph.weights.size:
            if graph.weights.min() < 0:
                raise EngineError("SSSP requires non-negative weights")
        values = np.full(graph.num_vertices, np.inf)
        values[source] = 0.0
        return self._initial_state(
            graph, values, Frontier(np.array([source], dtype=np.int64))
        )
