"""Reference implementations used as correctness oracles in tests.

Independent of the engine/algorithm stack: built on
``scipy.sparse.csgraph`` (Dijkstra, connected components) and a plain
dense power iteration, so a bug in the library's vectorized kernels
cannot hide in its own oracle.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.graph.csr import CSRGraph

__all__ = [
    "to_scipy",
    "reference_bfs",
    "reference_sssp",
    "reference_wcc",
    "reference_pagerank",
]


def to_scipy(graph: CSRGraph) -> sp.csr_matrix:
    """Convert to a scipy CSR matrix (weight 1 for unweighted edges)."""
    data = (
        graph.weights
        if graph.weights is not None
        else np.ones(graph.num_edges)
    )
    return sp.csr_matrix(
        (data, graph.indices, graph.indptr),
        shape=(graph.num_vertices, graph.num_vertices),
    )


def reference_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS levels (``inf`` for unreachable) via scipy shortest path."""
    matrix = to_scipy(graph)
    dist = csgraph.shortest_path(
        matrix, method="D", unweighted=True, indices=source
    )
    return np.asarray(dist, dtype=np.float64)


def reference_sssp(graph: CSRGraph, source: int) -> np.ndarray:
    """Shortest-path distances via scipy Dijkstra."""
    matrix = to_scipy(graph)
    dist = csgraph.dijkstra(matrix, indices=source)
    return np.asarray(dist, dtype=np.float64)


def reference_wcc(graph: CSRGraph) -> np.ndarray:
    """Canonical component labels: min vertex id per weak component."""
    matrix = to_scipy(graph)
    __, labels = csgraph.connected_components(matrix, connection="weak")
    # relabel each component by its smallest member, matching HashMin
    mins = np.full(labels.max() + 1, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, labels, np.arange(graph.num_vertices, dtype=np.int64))
    return mins[labels].astype(np.float64)


def reference_pagerank(
    graph: CSRGraph,
    damping: float = 0.85,
    tol: float = 1e-9,
    max_rounds: int = 100,
) -> np.ndarray:
    """Dense power-iteration PageRank with dangling redistribution."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0)
    out_deg = graph.out_degrees().astype(np.float64)
    dangling = out_deg == 0
    rank = np.full(n, 1.0 / n)
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    for __ in range(max_rounds):
        contrib = np.where(dangling, 0.0, rank / np.maximum(out_deg, 1.0))
        sums = np.zeros(n)
        np.add.at(sums, graph.indices, contrib[sources])
        dangling_mass = float(rank[dangling].sum())
        new_rank = (1.0 - damping) / n + damping * (sums + dangling_mass / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank
