"""Weakly connected components via HashMin label propagation.

Every vertex starts labelled with its own id; labels propagate along
edges taking the minimum, so each component converges to its smallest
member's id. Requires a symmetric edge set (``needs_symmetric``) —
the benchmark runner symmetrizes directed inputs.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.algorithms.base import AlgorithmState
from repro.algorithms.minprop import MinPropagation
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.runtime.frontier import Frontier

__all__ = ["WCC"]


class WCC(MinPropagation):
    """Connected components; no ``init`` params."""

    name = "wcc"
    needs_symmetric = True

    def candidates(
        self,
        values: np.ndarray,
        sources: np.ndarray,
        weights: Optional[np.ndarray],
    ) -> np.ndarray:
        """Each edge offers the source's current label."""
        return values[sources]

    def init(self, graph: CSRGraph, **params: Any) -> AlgorithmState:
        """Create the initial state (see the class docstring
        for parameters)."""
        if params:
            raise EngineError(f"unknown WCC params: {sorted(params)}")
        values = np.arange(graph.num_vertices, dtype=np.float64)
        return self._initial_state(
            graph, values, Frontier.full(graph.num_vertices)
        )
