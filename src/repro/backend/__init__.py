"""Execution backends: where supersteps physically run.

See :mod:`repro.backend.base` for the contract. Select with
``EngineOptions(backend=...)`` or ``--backend serial|shmem`` on the
CLI; ``serial`` (the historical in-process path) is the default.
"""

from __future__ import annotations

from repro.backend.base import ExecutionBackend, ExecutionSession
from repro.backend.serial import SerialBackend, SerialSession
from repro.backend.shmem import SharedMemoryBackend, SharedMemorySession
from repro.errors import EngineError

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ExecutionSession",
    "SerialBackend",
    "SerialSession",
    "SharedMemoryBackend",
    "SharedMemorySession",
    "make_backend",
]

#: registered backend names, in CLI display order
BACKEND_NAMES = ("serial", "shmem")


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by registered name."""
    if name == "serial":
        return SerialBackend()
    if name == "shmem":
        return SharedMemoryBackend()
    raise EngineError(
        f"unknown execution backend {name!r}; known: "
        + ", ".join(BACKEND_NAMES)
    )
