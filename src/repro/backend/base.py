"""Execution-backend interface: *where* supersteps physically run.

The BSP engine separates three concerns: the scheduler decides where
work runs in the *virtual* machine, the timing model prices that plan,
and the algorithm defines what is computed. The execution backend adds
a fourth, orthogonal axis — which host resources actually crunch the
arrays. :class:`SerialBackend` is today's in-process NumPy path;
:class:`~repro.backend.shmem.SharedMemoryBackend` fans the same work
out to one persistent worker process per virtual GPU over
shared-memory graph buffers.

The hard invariant, mirrored by the equivalence tests: for any
workload, every backend produces **bit-identical** algorithm outputs
and virtual-time totals. A backend may only change wall-clock time and
host-side statistics, exactly like the scheduler may only change
virtual time.

A backend opens one :class:`ExecutionSession` per run. The engine
drives the session with three calls per iteration::

    session.begin_iteration(...)   # after the frontier is split
    session.message_count(...)     # while pricing cross-GPU messages
    session.step(...)              # the algorithm superstep

and closes it in a ``finally`` — sessions own process/shared-memory
lifecycle and must release everything on both clean and exceptional
exits.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.runtime.frontier import Frontier

if TYPE_CHECKING:
    from repro.algorithms.base import AlgorithmState, GASAlgorithm
    from repro.graph.csr import CSRGraph
    from repro.partition.base import Partition
    from repro.runtime.scheduler import RunContext

__all__ = ["ExecutionBackend", "ExecutionSession"]


class ExecutionSession(abc.ABC):
    """Per-run execution context created by :meth:`ExecutionBackend.open`."""

    def begin_iteration(
        self,
        iteration: int,
        fragment_frontiers: "Sequence[Frontier]",
        context: "RunContext",
    ) -> None:
        """Announce the iteration's distributed frontier.

        Called after the frontier split, before planning/pricing —
        a parallel backend dispatches work here so workers overlap
        with the coordinator's scheduling decision.
        """

    @abc.abstractmethod
    def message_count(
        self,
        iteration: int,
        frontier: Frontier,
        aggregate: bool,
        context: "RunContext",
    ) -> int:
        """Messages crossing worker boundaries this iteration.

        With ``aggregate`` (early aggregation), one message per
        distinct remote destination; otherwise one per cross edge.
        Must equal the serial count exactly — it feeds virtual-time
        pricing.
        """

    @abc.abstractmethod
    def step(
        self,
        iteration: int,
        algorithm: "GASAlgorithm",
        graph: "CSRGraph",
        state: "AlgorithmState",
    ) -> Frontier:
        """Execute the algorithm superstep; return the next frontier."""

    def stats(self) -> Optional[dict]:
        """Host-side execution statistics for the run result."""
        return None

    def close(self, state: "Optional[AlgorithmState]" = None) -> None:
        """Release workers and shared resources (idempotent)."""

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ExecutionBackend(abc.ABC):
    """Factory for per-run execution sessions."""

    name: str = "abstract"

    @abc.abstractmethod
    def open(
        self,
        graph: "CSRGraph",
        partition: "Partition",
        algorithm: "GASAlgorithm",
        state: "AlgorithmState",
        context: "RunContext",
    ) -> ExecutionSession:
        """Start a session for one run (spawning workers if needed)."""
