"""The in-process execution backend (default).

This is the engine's historical execution path extracted behind the
:class:`~repro.backend.base.ExecutionBackend` interface: the gather is
memoized on the frontier (so the message-cost scan and the algorithm
step share one adjacency walk), and the superstep runs on the
coordinator's arrays. Bit-for-bit identical to the pre-backend engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.backend.base import ExecutionBackend, ExecutionSession
from repro.runtime.frontier import Frontier

if TYPE_CHECKING:
    from repro.algorithms.base import AlgorithmState, GASAlgorithm
    from repro.graph.csr import CSRGraph
    from repro.partition.base import Partition
    from repro.runtime.scheduler import RunContext

__all__ = ["SerialBackend", "SerialSession"]


class SerialSession(ExecutionSession):
    """Runs every superstep in the coordinator process."""

    def __init__(self, graph: "CSRGraph", partition: "Partition") -> None:
        self._graph = graph
        self._partition = partition

    def message_count(
        self,
        iteration: int,
        frontier: Frontier,
        aggregate: bool,
        context: "RunContext",
    ) -> int:
        """Cross-worker message count from the memoized frontier gather."""
        sources, destinations, __ = frontier.gather(self._graph)
        if sources.size == 0:
            return 0
        worker_of = context.fragment_worker[self._partition.owner]
        cross = worker_of[sources] != worker_of[destinations]
        if not np.any(cross):
            return 0
        if aggregate:
            return int(np.unique(destinations[cross]).size)
        return int(np.count_nonzero(cross))

    def step(
        self,
        iteration: int,
        algorithm: "GASAlgorithm",
        graph: "CSRGraph",
        state: "AlgorithmState",
    ) -> Frontier:
        """One in-process superstep (reuses the memoized gather)."""
        return algorithm.step(graph, state)

    def stats(self) -> Optional[dict]:
        """Shard-cache counters when the graph is out-of-core."""
        cache_stats = getattr(self._graph, "cache_stats", None)
        if cache_stats is None:
            return None
        return {"backend": "serial", "shard_cache": cache_stats()}


class SerialBackend(ExecutionBackend):
    """Factory for :class:`SerialSession` (no external resources)."""

    name = "serial"

    def open(
        self,
        graph: "CSRGraph",
        partition: "Partition",
        algorithm: "GASAlgorithm",
        state: "AlgorithmState",
        context: "RunContext",
    ) -> SerialSession:
        """Open an in-process session; nothing to spawn or map."""
        return SerialSession(graph, partition)
