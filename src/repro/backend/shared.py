"""Shared-memory block bookkeeping for the process-parallel backend.

Thin wrappers over :mod:`multiprocessing.shared_memory` with the two
pieces of hygiene the backend's lifecycle contract needs:

* every block created by the coordinator is tracked in a module-level
  registry with an ``atexit`` backstop, so an interpreter that dies
  mid-run (test failure, ^C) still unlinks its ``/dev/shm`` segments;
* blocks are owned by the coordinator: workers merely attach, and the
  coordinator's release (or its ``atexit`` hook) is the only unlink.
  Spawned children share the coordinator's ``resource_tracker``
  process, so a child attach/exit never triggers an early unlink.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "SharedArraySpec",
    "create_shared_array",
    "attach_shared_array",
    "release_shared_array",
    "live_block_names",
]

#: blocks created (and therefore owned) by this process, by name
_LIVE_BLOCKS: Dict[str, shared_memory.SharedMemory] = {}


def _cleanup_leftovers() -> None:
    """atexit backstop: unlink anything a crashed run left behind."""
    for name in list(_LIVE_BLOCKS):
        shm = _LIVE_BLOCKS.pop(name)
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass


atexit.register(_cleanup_leftovers)


def live_block_names() -> Tuple[str, ...]:
    """Names of blocks this process has created and not yet released."""
    return tuple(sorted(_LIVE_BLOCKS))


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description a worker needs to attach one array."""

    name: str
    dtype: str
    shape: Tuple[int, ...]


def create_shared_array(
    array: np.ndarray = None,
    shape: Tuple[int, ...] = None,
    dtype=None,
) -> Tuple[shared_memory.SharedMemory, np.ndarray, SharedArraySpec]:
    """Create an owned block sized for ``array`` (copied in) or ``shape``.

    Returns ``(block, view, spec)``; the caller must eventually pass
    the block to :func:`release_shared_array`.
    """
    if array is not None:
        shape = array.shape
        dtype = array.dtype
    dtype = np.dtype(dtype)
    size = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
    shm = shared_memory.SharedMemory(create=True, size=size)
    _LIVE_BLOCKS[shm.name] = shm
    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
    if array is not None:
        view[...] = array
    return shm, view, SharedArraySpec(shm.name, dtype.str, tuple(shape))


def attach_shared_array(
    spec: SharedArraySpec,
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach a coordinator-owned block from a worker process."""
    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, view


def release_shared_array(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink an owned block (idempotent)."""
    _LIVE_BLOCKS.pop(shm.name, None)
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass
