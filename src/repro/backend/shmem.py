"""Process-parallel execution over shared-memory graph buffers.

One resident store, many workers — the coordinator maps the CSR arrays
(``indptr``/``indices``/``weights``), the ownership array, the vertex
value array, and a per-iteration frontier buffer into
:mod:`multiprocessing.shared_memory` blocks, spawns one persistent
worker process per virtual GPU (``spawn`` start method, workers live
for the whole run), and per iteration sends each worker a single
batch of small task descriptors — one per fragment it serves, reused
across iterations — over its queue. Workers
expand the adjacency once per task and return (a) the cross-worker
message statistics the coordinator's virtual-time pricing needs and
(b), for algorithms whose superstep is exactly mergeable
(``supports_fragment_step``), the partial relax aggregates the
coordinator folds into the global state.

Scheduling, pricing, chaos, and tracing stay entirely in the
coordinator: the backend parallelizes the *numerical* work of a
superstep, never the decisions — so virtual time and algorithm outputs
are bit-identical to the serial backend (the equivalence tests pin
this). Algorithms without an exact merge (floating-point *sums*, e.g.
PageRank) fall back to the serial superstep in the coordinator while
the session's workers stay idle; only min-style propagation currently
parallelizes.

Lifecycle: sessions release every shared block and worker on
``close()`` — called from the engine's ``finally`` — and a
module-level ``atexit`` backstop in :mod:`repro.backend.shared` covers
interpreter death, so CI can never leak ``/dev/shm`` segments.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.backend.base import ExecutionBackend, ExecutionSession
from repro.backend.serial import SerialSession
from repro.backend.shared import create_shared_array, release_shared_array
from repro.backend.worker import WorkerSpec, WorkerTask, worker_main
from repro.errors import EngineError
from repro.runtime.frontier import Frontier

if TYPE_CHECKING:
    from repro.algorithms.base import AlgorithmState, GASAlgorithm
    from repro.graph.csr import CSRGraph
    from repro.partition.base import Partition
    from repro.runtime.scheduler import RunContext

__all__ = ["SharedMemoryBackend", "SharedMemorySession"]


class SharedMemorySession(ExecutionSession):
    """One run's worker pool plus its shared mappings."""

    def __init__(
        self,
        graph: "CSRGraph",
        partition: "Partition",
        algorithm: "GASAlgorithm",
        state: "AlgorithmState",
        startup_timeout: float,
        task_timeout: float,
    ) -> None:
        self._graph = graph
        self._partition = partition
        self._serial = SerialSession(graph, partition)
        self._parallel_step = bool(algorithm.supports_fragment_step)
        self._startup_timeout = startup_timeout
        self._task_timeout = task_timeout
        self._blocks: list = []
        self._processes: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._values_view: Optional[np.ndarray] = None
        self._frontier_view: Optional[np.ndarray] = None
        self._partials_view: Optional[np.ndarray] = None
        self._pending: Optional[List[int]] = None
        self._collected_iteration: Optional[int] = None
        # dispatch fast path: one reusable descriptor per fragment and
        # one reusable batch list per worker, so a superstep's dispatch
        # is field writes plus a single queue put per busy worker
        self._task_pool: List[WorkerTask] = [
            WorkerTask(iteration=-1, fragment=fragment, offset=0,
                       count=0, aggregate=True, relax=True)
            for fragment in range(partition.num_fragments)
        ]
        self._worker_batches: List[List[WorkerTask]] = [
            [] for _ in range(partition.num_fragments)
        ]
        self._partials: dict = {}
        self._closed = False
        self._stats = {
            "backend": "shmem",
            "workers": partition.num_fragments,
            "parallel_step": self._parallel_step,
            "tasks": 0,
            "startup_seconds": 0.0,
            "dispatch_seconds": 0.0,
            "collect_seconds": 0.0,
        }
        try:
            self._start(graph, partition, algorithm, state)
        except Exception:
            self.close(state)
            raise

    # ------------------------------------------------------------------
    def _share(self, array: np.ndarray):
        shm, view, spec = create_shared_array(array)
        self._blocks.append(shm)
        return view, spec

    def _start(self, graph, partition, algorithm, state) -> None:
        started = time.perf_counter()
        shard_path = getattr(graph, "source_path", None)
        indptr_spec = indices_spec = weights_spec = None
        if shard_path is None:
            __, indptr_spec = self._share(graph.indptr)
            __, indices_spec = self._share(graph.indices)
            if graph.weights is not None:
                __, weights_spec = self._share(graph.weights)
        # sharded graphs skip the |E|-sized shared blocks entirely:
        # each worker reopens the shard directory and pages what it
        # touches under its own resident budget
        __, owner_spec = self._share(partition.owner)
        self._frontier_view, frontier_spec = self._share(
            np.zeros(max(1, graph.num_vertices), dtype=np.int64)
        )
        values_spec = partials_spec = None
        if self._parallel_step:
            # the coordinator's value array moves into shared memory so
            # workers observe each merged superstep; copied back out in
            # close() before the block is unlinked
            self._values_view, values_spec = self._share(state.values)
            state.values = self._values_view
            # one partial row per fragment: workers scatter their relax
            # minima here (inf = untouched) so the coordinator merges
            # columns without partials ever crossing a pickle boundary
            self._partials_view, partials_spec = self._share(
                np.full(
                    (partition.num_fragments, graph.num_vertices), np.inf
                )
            )
        spec = WorkerSpec(
            indptr=indptr_spec,
            indices=indices_spec,
            weights=weights_spec,
            owner=owner_spec,
            frontier=frontier_spec,
            values=values_spec,
            partials=partials_spec,
            num_fragments=partition.num_fragments,
            directed=graph.directed,
            graph_name=graph.name,
            algorithm=algorithm,
            shard_path=None if shard_path is None else str(shard_path),
            shard_resident_bytes=int(
                getattr(graph, "resident_budget_bytes", 0) or 0
            ),
        )
        ctx = multiprocessing.get_context("spawn")
        self._result_queue = ctx.Queue()
        for worker_id in range(partition.num_fragments):
            task_queue = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, spec, task_queue, self._result_queue),
                daemon=True,
                name=f"repro-shmem-{worker_id}",
            )
            process.start()
            self._task_queues.append(task_queue)
            self._processes.append(process)
        deadline = time.perf_counter() + self._startup_timeout
        ready = 0
        while ready < len(self._processes):
            message = self._take_result(deadline, phase="startup")
            if message[0] == "ready":
                ready += 1
            else:
                raise EngineError(
                    "shmem worker returned an unexpected message during "
                    f"startup: {message[0]!r}"
                )
        self._stats["startup_seconds"] = time.perf_counter() - started

    def _take_result(self, deadline: float, phase: str):
        """One message off the result queue, or a timely EngineError."""
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise EngineError(
                    f"shmem backend timed out during {phase} "
                    f"(alive workers: "
                    f"{[p.is_alive() for p in self._processes]})"
                )
            try:
                message = self._result_queue.get(
                    timeout=min(remaining, 1.0)
                )
            except queue_mod.Empty:
                continue
            if message[0] == "error":
                raise EngineError(
                    f"shmem worker {message[1]} failed:\n{message[2]}"
                )
            return message

    # ------------------------------------------------------------------
    def begin_iteration(
        self,
        iteration: int,
        fragment_frontiers: "Sequence[Frontier]",
        context: "RunContext",
    ) -> None:
        """Dispatch this iteration's fragment tasks to the workers.

        Called before the scheduler plans, so the workers' adjacency
        walks overlap with the coordinator's decision and pricing.
        """
        if not self._parallel_step:
            return  # serial fallback computes everything in-process
        if self._pending:
            raise EngineError(
                "shmem backend: previous iteration was never collected"
            )
        started = time.perf_counter()
        aggregate = bool(context.extras.get("aggregate_messages", True))
        num_workers = len(self._task_queues)
        offset = 0
        pending = []
        # reuse is safe here: begin_iteration refuses to run while the
        # previous iteration is uncollected, and collected results mean
        # the previous batch was already pickled and delivered
        for batch in self._worker_batches:
            batch.clear()
        for fragment, frontier in enumerate(fragment_frontiers):
            count = frontier.size
            if count == 0:
                continue
            self._frontier_view[offset: offset + count] = frontier.vertices
            task = self._task_pool[fragment]
            task.iteration = iteration
            task.offset = offset
            task.count = count
            task.aggregate = aggregate
            self._worker_batches[fragment % num_workers].append(task)
            offset += count
            pending.append(fragment)
        for worker, batch in enumerate(self._worker_batches):
            if batch:
                self._task_queues[worker].put(batch)
        self._pending = pending
        self._collected_iteration = None
        self._stats["tasks"] += len(pending)
        self._stats["dispatch_seconds"] += time.perf_counter() - started

    def _collect(self, iteration: int) -> dict:
        """Results of every dispatched fragment task (cached per iter)."""
        if self._collected_iteration == iteration:
            return self._partials
        if self._pending is None:
            raise EngineError(
                "shmem backend: iteration was never dispatched"
            )
        started = time.perf_counter()
        partials: dict = {}
        deadline = started + self._task_timeout
        remaining = set(self._pending)
        while remaining:
            message = self._take_result(deadline, phase="collect")
            kind, msg_iteration, fragment = message[0], message[1], message[2]
            if kind != "done" or msg_iteration != iteration:
                raise EngineError(
                    "shmem backend: out-of-order result "
                    f"({kind}, iteration {msg_iteration}) while collecting "
                    f"iteration {iteration}"
                )
            partials[fragment] = message[3:]
            remaining.discard(fragment)
        self._pending = None
        self._collected_iteration = iteration
        self._partials = partials
        self._stats["collect_seconds"] += time.perf_counter() - started
        return partials

    # ------------------------------------------------------------------
    def message_count(
        self,
        iteration: int,
        frontier: Frontier,
        aggregate: bool,
        context: "RunContext",
    ) -> int:
        """Cross-worker message count, merged from worker partials.

        Exactly the serial count: fragments partition the frontier's
        out-edges by source owner, so cross-edge counts add and the
        distinct-destination sets union. Workers report partials keyed
        by destination fragment; cross-ness is decided *here*, with
        the fragment→worker mapping the scheduler settled on after
        dispatch (OSteal may have rewritten it).
        """
        if not self._parallel_step:
            return self._serial.message_count(
                iteration, frontier, aggregate, context
            )
        partials = self._collect(iteration)
        fragment_worker = context.fragment_worker
        total = 0
        cross_bits = []
        for fragment in sorted(partials):
            edge_counts, bits = partials[fragment]
            src_worker = fragment_worker[fragment]
            for dest in range(len(edge_counts)):
                if fragment_worker[dest] == src_worker:
                    continue
                if aggregate:
                    if bits is not None and edge_counts[dest]:
                        cross_bits.append(bits[dest])
                else:
                    total += int(edge_counts[dest])
        if aggregate:
            if not cross_bits:
                return 0
            union = np.bitwise_or.reduce(np.stack(cross_bits), axis=0)
            return int(np.unpackbits(union).sum())
        return total

    def step(
        self,
        iteration: int,
        algorithm: "GASAlgorithm",
        graph: "CSRGraph",
        state: "AlgorithmState",
    ) -> Frontier:
        """Merge worker partials (or run the serial fallback step)."""
        if not self._parallel_step:
            return self._serial.step(iteration, algorithm, graph, state)
        partials = self._collect(iteration)
        if not partials:
            return Frontier.empty()
        # only rows dispatched *this* iteration: a fragment idle this
        # round keeps its stale row until its worker's next task resets
        # it, so the merge must never read it
        dispatched = sorted(partials)
        return algorithm.merge_fragment_rows(
            graph, state, self._partials_view[dispatched]
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Host-side execution statistics (coordination overhead)."""
        stats = dict(self._stats)
        cache_stats = getattr(self._graph, "cache_stats", None)
        if cache_stats is not None:
            stats["shard_cache"] = cache_stats()
        return stats

    def close(self, state: "Optional[AlgorithmState]" = None) -> None:
        """Stop workers and unlink every shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if (
            state is not None
            and self._values_view is not None
            and state.values is self._values_view
        ):
            # detach the run's values from the dying mapping
            state.values = np.array(self._values_view)
        # drop our mapped views so the mmaps close cleanly
        self._values_view = None
        self._frontier_view = None
        self._partials_view = None
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for task_queue in self._task_queues:
            try:
                task_queue.close()
                task_queue.cancel_join_thread()
            except Exception:
                pass
        if self._result_queue is not None:
            try:
                self._result_queue.close()
                self._result_queue.cancel_join_thread()
            except Exception:
                pass
        for shm in self._blocks:
            release_shared_array(shm)
        self._blocks.clear()


class SharedMemoryBackend(ExecutionBackend):
    """Factory spawning one worker process per virtual GPU per run."""

    name = "shmem"

    def __init__(self, task_timeout: float = 300.0) -> None:
        self._task_timeout = task_timeout

    def open(
        self,
        graph: "CSRGraph",
        partition: "Partition",
        algorithm: "GASAlgorithm",
        state: "AlgorithmState",
        context: "RunContext",
    ) -> SharedMemorySession:
        """Map the graph, spawn workers, wait for the ready handshake."""
        return SharedMemorySession(
            graph, partition, algorithm, state,
            startup_timeout=30.0 * max(1, partition.num_fragments),
            task_timeout=self._task_timeout,
        )
