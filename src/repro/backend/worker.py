"""Worker-process entry point for the shared-memory backend.

Everything here is module-level and closure-free so the ``spawn``
start method can pickle the entry point and its arguments: the worker
receives only queue handles and a :class:`WorkerSpec` of plain data
(shared-array specs plus the algorithm instance), attaches the
coordinator's shared blocks, rebuilds a :class:`CSRGraph` *view* over
them (zero copy — ``CSRGraph`` keeps same-dtype contiguous arrays by
reference), and then loops on its task queue until it receives the
``None`` sentinel.

Per task the worker expands one fragment's frontier slice exactly
once and produces two results:

* message statistics *keyed by destination fragment* — per-fragment
  edge counts plus (under aggregation) a packed destination bitmap per
  fragment. The keying matters: which edges count as cross-worker
  depends on the fragment→worker mapping, and the scheduler (OSteal)
  may rewrite that mapping *after* these tasks were dispatched — so
  workers report mapping-independent partials and the coordinator
  folds in the post-plan mapping;
* the fragment's partial relax aggregates (when the algorithm supports
  fragment steps), scattered into the fragment's row of the shared
  partials mapping — bulky float arrays never cross a pickle boundary,
  only the small stats tuple travels over the result queue.

Any exception is reported as an ``("error", ...)`` tuple so the
coordinator can fail the run with the worker's traceback.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.backend.shared import SharedArraySpec, attach_shared_array
from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edge_positions

__all__ = ["WorkerSpec", "WorkerTask", "worker_main"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned worker needs, in picklable form."""

    indptr: Optional[SharedArraySpec]
    indices: Optional[SharedArraySpec]
    weights: Optional[SharedArraySpec]
    owner: SharedArraySpec
    frontier: SharedArraySpec
    values: Optional[SharedArraySpec]
    partials: Optional[SharedArraySpec]
    num_fragments: int
    directed: bool
    graph_name: str
    algorithm: object  # GASAlgorithm instance (stateless, picklable)
    #: out-of-core path: instead of attaching shared CSR blocks, the
    #: worker reopens the sharded graph directory (its own mmap-backed
    #: shard cache — no |E|-sized shared block is ever created)
    shard_path: Optional[str] = None
    shard_resident_bytes: int = 0


@dataclass
class WorkerTask:
    """One fragment's work for one iteration.

    Mutable on purpose: the coordinator keeps one descriptor per
    fragment and rewrites it each iteration instead of allocating
    fresh ones (queue puts pickle a snapshot, so reuse is safe once
    the previous iteration's results are in).
    """

    iteration: int
    fragment: int
    offset: int  # slice of the shared frontier buffer
    count: int
    aggregate: bool  # early message aggregation on?
    relax: bool  # also compute fragment_step partials?


class _WorkerRuntime:
    """Attached shared state plus per-task compute."""

    def __init__(self, spec: WorkerSpec) -> None:
        self._blocks = []  # keep SharedMemory objects alive
        if spec.shard_path is not None:
            # local import: io_npz pulls in the partition module, which
            # spawned workers otherwise never need
            from repro.graph.io_npz import open_graph_sharded

            self._graph = open_graph_sharded(
                spec.shard_path,
                resident_bytes=spec.shard_resident_bytes or (256 << 20),
            )
        else:
            self._graph = CSRGraph(
                self._attach(spec.indptr),
                self._attach(spec.indices),
                weights=(
                    self._attach(spec.weights)
                    if spec.weights is not None else None
                ),
                directed=spec.directed,
                name=spec.graph_name,
            )
        self._owner = self._attach(spec.owner)
        self._frontier_buf = self._attach(spec.frontier)
        self._values = (
            self._attach(spec.values) if spec.values is not None else None
        )
        self._partials = (
            self._attach(spec.partials)
            if spec.partials is not None else None
        )
        self._num_fragments = spec.num_fragments
        self._algorithm = spec.algorithm
        self._scratch = None
        #: vertices this worker last scattered into each fragment's
        #: shared partial row; reset lazily at the next task so the
        #: coordinator reads settled rows between dispatches
        self._row_touched: Dict[int, np.ndarray] = {}

    def _attach(self, spec: SharedArraySpec) -> np.ndarray:
        shm, view = attach_shared_array(spec)
        self._blocks.append(shm)
        return view

    def run_task(self, task: WorkerTask) -> tuple:
        """Expand one fragment slice; scatter relax partials; return stats.

        Message stats are keyed by *destination fragment* — every
        source in this slice is homed on ``task.fragment``, so the
        coordinator can decide which destination fragments are remote
        under whatever fragment→worker mapping the scheduler settles
        on after these tasks were dispatched.
        """
        vertices = np.array(
            self._frontier_buf[task.offset: task.offset + task.count]
        )
        edges = gather_edge_positions(self._graph, vertices)
        sources, positions = edges
        num_fragments = self._num_fragments
        num_vertices = self._graph.num_vertices
        edge_counts = np.zeros(num_fragments, dtype=np.int64)
        dest_bits = None
        if sources.size:
            destinations = self._graph.indices[positions]
            dest_fragment = self._owner[destinations]
            edge_counts = np.bincount(
                dest_fragment, minlength=num_fragments
            ).astype(np.int64)
            if task.aggregate:
                # one packed destination bitmap per destination
                # fragment: |union| merges in the coordinator become
                # OR + popcount over a few KB instead of set unions
                # over pickled int64 arrays
                masks = np.zeros(
                    (num_fragments, num_vertices), dtype=bool
                )
                masks[dest_fragment, destinations] = True
                dest_bits = np.packbits(masks, axis=1)
        if task.relax and self._partials is not None:
            row = self._partials[task.fragment]
            previous = self._row_touched.get(task.fragment)
            if previous is not None and previous.size:
                row[previous] = np.inf
            if self._scratch is None:
                self._scratch = np.full(num_vertices, np.inf)
            touched, mins = self._algorithm.fragment_step(
                self._graph, self._values, vertices,
                scratch=self._scratch, edges=edges,
            )
            row[touched] = mins
            self._row_touched[task.fragment] = touched
        return ("done", task.iteration, task.fragment,
                edge_counts, dest_bits)


def worker_main(worker_id: int, spec: WorkerSpec,
                task_queue, result_queue) -> None:
    """Process target: attach, signal readiness, serve tasks until EOF."""
    try:
        runtime = _WorkerRuntime(spec)
        result_queue.put(("ready", worker_id))
    except Exception:
        result_queue.put(("error", worker_id, traceback.format_exc()))
        return
    while True:
        try:
            batch = task_queue.get()
            if batch is None:
                return
            # one queue message carries all of this worker's fragment
            # tasks for the iteration (dispatch batching)
            for task in batch:
                result_queue.put(runtime.run_task(task))
        except Exception:
            result_queue.put(("error", worker_id, traceback.format_exc()))
            return
