"""Baseline system models: Gunrock (BSP), Groute (async ring), and
classic reactive work stealing (peek-and-grab)."""

from repro.baselines.gunrock import GunrockEngine
from repro.baselines.groute import GrouteEngine
from repro.baselines.peeksteal import PeekStealScheduler

__all__ = ["GunrockEngine", "GrouteEngine", "PeekStealScheduler"]
