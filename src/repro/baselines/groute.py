"""Behavioural model of Groute's asynchronous execution (the baseline).

Groute [Ben-Nun et al., PPoPP'17] abandons BSP: each GPU processes its
local work to a fixed point and exchanges boundary updates over a
*single communication ring* chosen from the NVLink topology. Two
consequences the paper leans on (Exp-1/Exp-2):

* **asynchronous wins on long diameters** — a fragment collapses to its
  local fixed point in one round, so WCC on road networks finishes in a
  handful of rounds where BSP needs thousands of supersteps;
* **the ring wastes the topology** — all traffic shares one ring
  (unused NVLinks idle), and GPU counts that cannot form an NVLink ring
  (odd sub-topologies of the cube mesh) must route hops over PCIe,
  which is why Groute degrades at odd GPU counts.

Mechanics of one round for monotone algorithms (BFS/SSSP/WCC):

1. every fragment repeatedly relaxes its *intra-fragment* edges until
   no local value changes (sub-steps priced per fragment);
2. every vertex updated this round pushes its *cross-fragment* edges;
   messages travel the ring along the shorter arc, and the round's
   communication time is the most-loaded ring link;
3. a lightweight (non-barrier) coordination charge replaces the BSP
   ``p * m`` sync.

PageRank is not monotone, so local-fixed-point execution is unsound;
Groute's async PR instead re-propagates deltas eagerly. We model it as
synchronous rounds whose edge work is inflated by
``pr_extra_work`` (the redundant re-propagation), keeping semantics
exact — this is the documented substitution for Groute's PR behaviour
and reproduces its poor PR numbers in Table III.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro import config as repro_config
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.hardware.spec import MachineSpec
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology
from repro.obs.export import emit_iteration
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import Partition
from repro.runtime.frontier import Frontier
from repro.runtime.metrics import IterationRecord, RunResult, TimeBreakdown

__all__ = ["GrouteEngine"]


class GrouteEngine:
    """Asynchronous ring baseline.

    Parameters
    ----------
    topology:
        Machine layout; the engine extracts its communication ring.
    async_sync_factor:
        Fraction of the BSP per-round synchronization cost Groute pays
        (no global barrier, but rounds still coordinate).
    pr_extra_work:
        Work inflation for the (non-monotone) PageRank path.
    local_substeps:
        Cap on local relaxation waves per round. Groute's soft-priority
        scheduling keeps a GPU from speculating arbitrarily far ahead
        of incoming remote corrections; an uncapped local fixed point
        would model a pathological amount of redundant relaxation on
        weighted graphs.
    max_rounds:
        Safety bound on rounds.
    tracer / metrics:
        Observability hooks (:mod:`repro.obs`); both default to the
        zero-overhead null implementations.
    """

    def __init__(
        self,
        topology: Topology,
        machine: Optional[MachineSpec] = None,
        async_sync_factor: float = 0.4,
        pr_extra_work: float = 2.0,
        local_substeps: int = 4,
        max_rounds: int = 10_000,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._topology = topology
        self._timing = TimingModel(topology, machine=machine)
        self._async_sync = float(async_sync_factor)
        self._pr_extra = float(pr_extra_work)
        self._local_substeps = int(local_substeps)
        self._max_rounds = int(max_rounds)
        self._ring, self._ring_bandwidth = self._build_ring(topology)
        self._tracer = tracer or NULL_TRACER
        self._metrics = metrics or NULL_METRICS

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The machine this engine simulates."""
        return self._topology

    @property
    def ring(self) -> List[int]:
        """GPU order of the communication ring."""
        return list(self._ring)

    @property
    def timing(self) -> TimingModel:
        """The engine's ground-truth timing model."""
        return self._timing

    @property
    def tracer(self) -> Tracer:
        """The attached tracer (null when disabled)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The attached metrics registry (null when disabled)."""
        return self._metrics

    @staticmethod
    def _build_ring(topology: Topology) -> tuple[List[int], np.ndarray]:
        """The ring order and per-ring-link bandwidth (GB/s).

        Prefers an all-NVLink Hamiltonian ring; when none exists (odd
        cube-mesh subsets), falls back to id order with PCIe on the
        missing links — the modelled source of Groute's odd-GPU
        penalty.
        """
        ring = topology.find_ring()
        if ring is None:
            ring = list(range(topology.num_gpus))
        n = len(ring)
        bandwidth = np.empty(max(n, 1))
        if n == 1:
            bandwidth[0] = topology.gpu.local_bandwidth_gbps
            return ring, bandwidth
        for idx in range(n):
            a, b = ring[idx], ring[(idx + 1) % n]
            bandwidth[idx] = topology.direct_bandwidth(a, b)
        return ring, bandwidth

    # ------------------------------------------------------------------
    def run(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm: Union[str, object],
        max_iterations: Optional[int] = None,
        **params,
    ) -> RunResult:
        """Execute to convergence under the asynchronous ring model."""
        from repro.algorithms import make_algorithm

        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm)
        if partition.num_fragments != self._topology.num_gpus:
            raise EngineError(
                "partition fragment count does not match the machine"
            )
        if algorithm.monotonic:
            return self._run_monotonic(graph, partition, algorithm,
                                       max_iterations, **params)
        return self._run_synchronous(graph, partition, algorithm,
                                     max_iterations, **params)

    # ------------------------------------------------------------------
    def _edge_masks(
        self, graph: CSRGraph, partition: Partition
    ) -> tuple[np.ndarray, np.ndarray]:
        """(intra, cross) boolean masks over CSR edge positions."""
        sources = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64),
            np.diff(graph.indptr),
        )
        owner = partition.owner
        intra = owner[sources] == owner[graph.indices]
        return intra, ~intra

    def _ring_comm_seconds(
        self,
        partition: Partition,
        sources: np.ndarray,
        destinations: np.ndarray,
    ) -> float:
        """Time for cross messages to traverse the ring.

        Each message travels the shorter arc between its endpoint ring
        positions; the round's communication time is the byte load of
        the most congested ring link divided by that link's bandwidth.
        """
        n = len(self._ring)
        if n <= 1 or sources.size == 0:
            return 0.0
        position = np.empty(self._topology.num_gpus, dtype=np.int64)
        for idx, gpu in enumerate(self._ring):
            position[gpu] = idx
        src_pos = position[partition.owner[sources]]
        dst_pos = position[partition.owner[destinations]]
        link_bytes = np.zeros(n)
        forward = (dst_pos - src_pos) % n
        backward = (src_pos - dst_pos) % n
        go_forward = forward <= backward
        hops = np.where(go_forward, forward, backward)
        msg_bytes = float(repro_config.BYTES_PER_MESSAGE)
        # accumulate per-link loads, vectorized over messages; the hop
        # count is at most n/2, so this is a handful of passes
        for step in range(int(hops.max(initial=0))):
            live = hops > step
            links = np.where(
                go_forward[live],
                (src_pos[live] + step) % n,
                (src_pos[live] - step - 1) % n,
            )
            np.add.at(link_bytes, links, msg_bytes)
        with np.errstate(divide="ignore"):
            times = link_bytes / (self._ring_bandwidth * 1e9)
        return float(times.max())

    # ------------------------------------------------------------------
    def _run_monotonic(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm,
        max_iterations: Optional[int],
        **params,
    ) -> RunResult:
        limit = max_iterations or self._max_rounds
        num_workers = self._topology.num_gpus
        intra_mask, cross_mask = self._edge_masks(graph, partition)
        state = algorithm.init(graph, **params)
        result = RunResult(
            engine="groute",
            algorithm=algorithm.name,
            graph_name=graph.name,
            num_gpus=num_workers,
            values=state.values,
        )
        rounds = 0
        virtual_clock = 0.0
        run_span = self._tracer.span(
            "run", cat="engine", engine="groute",
            algorithm=algorithm.name, graph=graph.name,
            num_gpus=num_workers,
        )
        run_span.__enter__()
        while state.frontier and rounds < limit:
            round_frontier: Frontier = state.frontier
            busy = np.zeros(num_workers)
            updated_parts: List[np.ndarray] = []
            per_fragment = round_frontier.split_by_owner(
                partition.owner, num_workers
            )
            features = [
                part.features(graph) for part in per_fragment
            ]
            # --- phase 1: local relaxation waves ----------------------
            # Weighted relaxation can speculate past the values remote
            # corrections will deliver (redundant work), so it runs
            # under the soft-priority substep cap; unweighted monotone
            # propagation (BFS levels, WCC labels) settles to its true
            # local fixed point.
            substep_cap = (
                self._local_substeps
                if algorithm.needs_weights
                else self._max_rounds
            )
            frontier = round_frontier
            local_edges = 0
            substep = 0
            while frontier and substep < substep_cap:
                updated_parts.append(frontier.vertices)
                self._charge_local(graph, partition, frontier, features,
                                   busy)
                local_edges += frontier.work(graph)
                frontier = algorithm.local_step(
                    graph, state, frontier, intra_mask
                )
                substep += 1
            deferred = frontier
            if deferred:
                # soft-priority cutoff: defer the rest to the next round
                updated_parts.append(deferred.vertices)
            # --- phase 2: push cross edges over the ring --------------
            all_updated = Frontier(np.concatenate(updated_parts))
            sources, destinations, __ = all_updated.gather(graph)
            cross = (
                partition.owner[sources] != partition.owner[destinations]
            )
            comm = self._ring_comm_seconds(
                partition, sources[cross], destinations[cross]
            )
            # the cross relaxations themselves run on the receiving
            # side; deferred local work resumes next round
            next_frontier = algorithm.local_step(
                graph, state, all_updated, cross_mask
            ).union(deferred)
            cross_count = int(np.count_nonzero(cross))
            serialization = self._timing.serialization_seconds(cross_count)
            sync = (
                self._timing.sync_seconds(num_workers) * self._async_sync
            )
            critical = float(busy.max()) if busy.size else 0.0
            stall = np.where(busy > 0, critical - busy, 0.0)
            breakdown = TimeBreakdown(
                compute=float(busy.mean()),
                communication=comm + float(stall.mean()),
                serialization=serialization,
                sync=sync,
                overhead=0.0,
            )
            record = IterationRecord(
                iteration=rounds,
                frontier_size=round_frontier.size,
                frontier_edges=local_edges + cross_count,
                active_workers=list(range(num_workers)),
                busy_seconds=busy,
                stall_seconds=stall,
                wall_seconds=breakdown.total,
                breakdown=breakdown,
            )
            result.iterations.append(record)
            result.breakdown.add(breakdown)
            virtual_clock = emit_iteration(
                self._tracer, self._metrics, record, virtual_clock,
                None, engine="groute",
            )
            state.frontier = next_frontier
            rounds += 1
        run_span.set(iterations=rounds, virtual_total_ms=virtual_clock * 1e3)
        run_span.__exit__(None, None, None)
        result.values = state.values
        result.converged = not state.frontier
        return result

    def _charge_local(
        self,
        graph: CSRGraph,
        partition: Partition,
        frontier: Frontier,
        features,
        busy: np.ndarray,
    ) -> None:
        """Charge one local sub-step's compute to each fragment owner."""
        per_fragment = frontier.split_by_owner(
            partition.owner, self._topology.num_gpus
        )
        for fragment, part in enumerate(per_fragment):
            if not part:
                continue
            edges = int(graph.out_degrees(part.vertices).sum())
            busy[fragment] += (
                self._timing.compute_seconds(edges, features[fragment])
                + edges * self._timing.comm_seconds_per_edge(
                    fragment, fragment
                )
                + self._timing.kernel_launch_seconds(1)
            )

    # ------------------------------------------------------------------
    def _run_synchronous(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm,
        max_iterations: Optional[int],
        **params,
    ) -> RunResult:
        """Non-monotone path (PageRank): sync rounds + async work tax."""
        limit = max_iterations or self._max_rounds
        num_workers = self._topology.num_gpus
        state = algorithm.init(graph, **params)
        result = RunResult(
            engine="groute",
            algorithm=algorithm.name,
            graph_name=graph.name,
            num_gpus=num_workers,
            values=state.values,
        )
        virtual_clock = 0.0
        run_span = self._tracer.span(
            "run", cat="engine", engine="groute",
            algorithm=algorithm.name, graph=graph.name,
            num_gpus=num_workers,
        )
        run_span.__enter__()
        while state.frontier and state.iteration < limit:
            frontier = state.frontier
            per_fragment = frontier.split_by_owner(
                partition.owner, num_workers
            )
            busy = np.zeros(num_workers)
            for fragment, part in enumerate(per_fragment):
                if not part:
                    continue
                edges = int(
                    graph.out_degrees(part.vertices).sum() * self._pr_extra
                )
                feats = part.features(graph)
                busy[fragment] += (
                    self._timing.compute_seconds(edges, feats)
                    + edges * self._timing.comm_seconds_per_edge(
                        fragment, fragment
                    )
                    + self._timing.kernel_launch_seconds(2)
                )
            sources, destinations, __ = frontier.gather(graph)
            cross = (
                partition.owner[sources] != partition.owner[destinations]
            )
            comm = self._ring_comm_seconds(
                partition, sources[cross], destinations[cross]
            ) * self._pr_extra
            serialization = self._timing.serialization_seconds(
                int(np.count_nonzero(cross))
            )
            sync = (
                self._timing.sync_seconds(num_workers) * self._async_sync
            )
            critical = float(busy.max()) if busy.size else 0.0
            stall = np.where(busy > 0, critical - busy, 0.0)
            breakdown = TimeBreakdown(
                compute=float(busy.mean()),
                communication=comm + float(stall.mean()),
                serialization=serialization,
                sync=sync,
                overhead=0.0,
            )
            record = IterationRecord(
                iteration=state.iteration,
                frontier_size=frontier.size,
                frontier_edges=int(frontier.work(graph)),
                active_workers=list(range(num_workers)),
                busy_seconds=busy,
                stall_seconds=stall,
                wall_seconds=breakdown.total,
                breakdown=breakdown,
            )
            result.iterations.append(record)
            result.breakdown.add(breakdown)
            virtual_clock = emit_iteration(
                self._tracer, self._metrics, record, virtual_clock,
                None, engine="groute",
            )
            state.frontier = algorithm.step(graph, state)
            state.iteration += 1
        run_span.set(
            iterations=state.iteration, virtual_total_ms=virtual_clock * 1e3
        )
        run_span.__exit__(None, None, None)
        result.values = state.values
        result.converged = not state.frontier
        return result
