"""Behavioural model of Gunrock's multi-GPU execution (the baseline).

Gunrock [Wang et al., TOPC'17; Pan et al., IPDPS'17] is a BSP system:
static edge-cut ownership, every GPU synchronizes every iteration, no
work stealing. Its strength is heavily-optimized *single-GPU* kernels
with algorithm-specific tricks; its weakness — which the paper's Exp-2
demonstrates — is that those tricks do not scale out.

This model runs the same virtual machine and the same algorithms as
GUM, but with Gunrock's policy:

* :class:`~repro.runtime.scheduler.StaticScheduler` — no stealing, all
  GPUs in every synchronization round (DLB + LT exposed in full);
* **direction-optimized BFS** [Beamer]: when the frontier's out-edges
  exceed ``|E| / alpha``, the iteration switches to pull mode and
  processes the (cheaper) in-edges of still-unvisited vertices — a big
  win on low-diameter social graphs, none on road networks;
* **near-far SSSP** [Davidson et al.]: each iteration splits
  relaxations into near/far buckets — modelled as a work discount
  (fewer redundant relaxations) that *decays with GPU count* (the
  near pile fragments across distributed frontiers and boundary
  exchanges re-activate far vertices), at the price of an extra
  synchronization phase per iteration. On one GPU the discount wins;
  on eight GPUs it has evaporated while the doubled ``p * m``
  remains — reproducing the paper's observation that near-far "runs
  faster on a single GPU while hard to scale out".

The knobs are explicit constructor parameters so tests and ablations
can probe each modelling assumption.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.hardware.spec import MachineSpec
from repro.hardware.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition.base import Partition
from repro.runtime.bsp import BSPEngine, EngineOptions
from repro.runtime.scheduler import StaticScheduler

__all__ = ["GunrockEngine"]


class GunrockEngine(BSPEngine):
    """BSP baseline with Gunrock-style algorithm-specific optimizations.

    Parameters
    ----------
    topology:
        Machine layout.
    direction_optimized_bfs:
        Enable the push/pull switch for BFS (default True).
    bfs_alpha:
        Pull mode engages when frontier out-edges exceed
        ``|E| / bfs_alpha``.
    near_far_sssp:
        Enable the near-far bucket model for SSSP (default True).
    near_far_work_factor:
        Fraction of frontier edges actually relaxed under near-far.
    near_far_sync_factor:
        Synchronization phases per logical SSSP iteration.
    """

    def __init__(
        self,
        topology: Topology,
        machine: Optional[MachineSpec] = None,
        options: Optional[EngineOptions] = None,
        near_far_sssp: bool = True,
        near_far_work_factor: float = 0.65,
        near_far_sync_factor: float = 2.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        chaos=None,
    ) -> None:
        super().__init__(
            topology,
            scheduler=StaticScheduler(),
            machine=machine,
            options=options,
            name="gunrock",
            tracer=tracer,
            metrics=metrics,
            chaos=chaos,
        )
        self._near_far = bool(near_far_sssp)
        self._nf_work = float(near_far_work_factor)
        self._nf_sync = float(near_far_sync_factor)

    # ------------------------------------------------------------------
    def _effective_workloads(
        self,
        graph: CSRGraph,
        partition: Partition,
        algorithm,
        state,
        workloads: np.ndarray,
    ) -> np.ndarray:
        if algorithm.name == "sssp" and self._near_far:
            # the single-GPU discount decays as frontiers fragment
            saving = (1.0 - self._nf_work) / self._topology.num_gpus
            discounted = np.rint(
                workloads * (1.0 - saving)
            ).astype(np.int64)
            # never discount below one edge per non-empty fragment
            return np.where(workloads > 0, np.maximum(discounted, 1), 0)
        # direction-optimized BFS is inherited from the base engine
        return super()._effective_workloads(
            graph, partition, algorithm, state, workloads
        )

    def _sync_multiplier(self, algorithm, state) -> float:
        if algorithm.name == "sssp" and self._near_far:
            return self._nf_sync
        return 1.0
