"""Classic reactive ("peek-and-grab") work stealing.

The paper's Exp-3 claims GUM balances better than "general work
stealing methods [that] follow the peek-and-grab style which relies on
the unpredictable behaviors of each worker at runtime". This module
implements that contrast class so the claim can be measured:

* no cost model, no MILP, no topology awareness;
* every worker starts on its own fragment's frontier;
* when a worker drains its queue it *peeks* at the most-loaded peer
  and *grabs* half of that peer's remaining edges, paying a fixed
  steal latency plus the remote-access tax on everything it stole.

The scheduler simulates that reactive process with the same estimated
per-edge costs a classic runtime would implicitly assume (uniform),
then emits the resulting assignment as an
:class:`~repro.runtime.scheduler.IterationPlan` — so it runs on the
identical engine and is priced by the identical ground truth as GUM's
planned stealing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro import config as repro_config
from repro.core.fsteal import select_vertices
from repro.hardware.microbench import measure_comm_cost_matrix
from repro.runtime.frontier import Frontier
from repro.runtime.scheduler import (
    IterationPlan,
    RunContext,
    Scheduler,
    WorkChunk,
)

__all__ = ["PeekStealScheduler"]


@dataclass
class _Queue:
    """Remaining work of one worker during the reactive simulation."""

    # (fragment, edges) slices still to process, FIFO
    slices: List[List[int]]

    def remaining(self) -> int:
        """Total unprocessed edges in this queue."""
        return sum(edges for __, edges in self.slices)


class PeekStealScheduler(Scheduler):
    """Reactive work stealing: steal half from the most-loaded peer.

    Parameters
    ----------
    steal_latency_seconds:
        Fixed cost of one peek+grab round trip (queue inspection, CAS
        on the victim's queue, frontier copy kickoff). 50 us default —
        an optimistic figure for a GPU-to-GPU handshake.
    min_steal_edges:
        Don't bother stealing below this (simulated) edge count.
    assumed_edge_cost:
        The uniform per-edge cost the reactive heuristic assumes while
        simulating who finishes when (classic stealers have no cost
        model — that is the point being measured).
    """

    name = "peeksteal"

    def __init__(
        self,
        steal_latency_seconds: float = 50e-6,
        min_steal_edges: int = 64,
        assumed_edge_cost: float = 1e-6,
    ) -> None:
        self._latency = float(steal_latency_seconds)
        self._min_steal = int(min_steal_edges)
        self._assumed = float(assumed_edge_cost)
        self._comm_cost: np.ndarray | None = None

    def begin_run(self, context: RunContext) -> None:
        """Reset per-run state for a new execution."""
        self._comm_cost = measure_comm_cost_matrix(
            context.timing.topology, repro_config.BYTES_PER_EDGE
        )

    # ------------------------------------------------------------------
    def plan(
        self,
        iteration: int,
        fragment_frontiers: Sequence[Frontier],
        workloads: np.ndarray,
        context: RunContext,
    ) -> IterationPlan:
        """Produce this iteration's work assignment."""
        num_workers = context.num_workers
        quotas, steals = self._simulate(workloads, num_workers)
        chunks: List[WorkChunk] = []
        stolen_edges = 0
        migrated = 0
        for fragment, frontier in enumerate(fragment_frontiers):
            if not frontier and workloads[fragment] == 0:
                continue
            if frontier.work(context.graph) == workloads[fragment]:
                assignments = select_vertices(
                    context.graph, fragment, frontier, quotas[fragment]
                )
            else:  # decoupled (pull-mode) workloads: quota-only chunks
                empty = np.empty(0, dtype=np.int64)
                assignments = [
                    WorkChunk(owner=fragment, worker=j, vertices=empty,
                              edges=int(q))
                    for j, q in enumerate(quotas[fragment]) if q > 0
                ]
            for item in assignments:
                chunks.append(
                    WorkChunk(
                        owner=item.owner, worker=item.worker,
                        vertices=item.vertices, edges=item.edges,
                    )
                )
                if item.worker != int(context.fragment_home[item.owner]):
                    stolen_edges += item.edges
                    migrated += item.vertices.size
        return IterationPlan(
            chunks=chunks,
            active_workers=list(range(num_workers)),
            # the victims and thieves each pay the handshake latency;
            # it lands on the critical path of a reactive system
            decision_seconds=steals * self._latency,
            fsteal_applied=steals > 0,
            stolen_edges=stolen_edges,
            migrated_vertices=migrated,
        )

    # ------------------------------------------------------------------
    def _simulate(
        self, workloads: np.ndarray, num_workers: int
    ) -> tuple[np.ndarray, int]:
        """Event-driven reactive stealing; returns (x_ij quotas, steals).

        Workers *consume* their queues at the assumed uniform rate.
        When one drains, it grabs half of the remaining (unprocessed)
        edges of the worker that will finish last, from the back of
        that worker's deque — the classic Cilk-style discipline,
        blind to true costs and topology. Workers with nothing worth
        grabbing leave the pool; the simulation ends when everyone has.
        """
        quotas = np.zeros((workloads.size, num_workers), dtype=np.int64)
        rate = self._assumed
        queues: List[List[List[int]]] = []  # per worker: [fragment, edges]
        finish = np.zeros(num_workers)
        epoch = np.zeros(num_workers)  # when this queue last changed
        for w in range(num_workers):
            load = int(workloads[w]) if w < workloads.size else 0
            queues.append([[w, load]] if load > 0 else [])
            finish[w] = load * rate
            quotas[w, w] += load
        heap = [(finish[w], w) for w in range(num_workers)]
        heapq.heapify(heap)
        steals = 0

        def consume_front(victim: int, now: float) -> None:
            """Commit the edges the victim processed up to ``now``."""
            if now <= epoch[victim]:
                return  # the victim is still in a steal handshake
            processed = int((now - epoch[victim]) / rate)
            epoch[victim] = now
            queue = queues[victim]
            while processed > 0 and queue:
                fragment, edges = queue[0]
                taken = min(edges, processed)
                processed -= taken
                if taken == edges:
                    queue.pop(0)
                else:
                    queue[0][1] -= taken

        while heap:
            now, worker = heapq.heappop(heap)
            if now != finish[worker]:
                continue  # stale event: this worker was re-scheduled
            victim = int(np.argmax(finish))
            if victim == worker:
                continue  # everyone else already finished
            # commit the victim's progress, then peek its actual queue
            consume_front(victim, min(now, finish[victim]))
            remaining_victim = sum(
                edges for __, edges in queues[victim]
            )
            loot = remaining_victim // 2
            if loot < self._min_steal:
                continue  # nothing worth grabbing: leave the pool
            steals += 1
            # grab from the back of the victim's deque
            grabbed: List[List[int]] = []
            remaining = loot
            while remaining > 0 and queues[victim]:
                fragment, edges = queues[victim][-1]
                take = min(edges, remaining)
                quotas[fragment, victim] -= take
                quotas[fragment, worker] += take
                grabbed.append([fragment, take])
                remaining -= take
                if take == edges:
                    queues[victim].pop()
                else:
                    queues[victim][-1][1] -= take
            taken_total = loot - remaining
            queues[worker] = grabbed
            epoch[worker] = now + self._latency
            finish[worker] = now + self._latency + taken_total * rate
            finish[victim] -= taken_total * rate
            heapq.heappush(heap, (finish[worker], worker))
            heapq.heappush(heap, (finish[victim], victim))
        return quotas, steals
