"""Benchmark harness: workloads, runner, reporting."""

from repro.bench.workloads import (
    ENGINE_NAMES,
    algorithm_params,
    cached_partition,
    make_engine,
    pick_source,
    prepare_graph,
)
from repro.bench.calibration import calibration_summary, format_calibration
from repro.bench.runner import Cell, run_cell, run_matrix
from repro.bench.reporting import (
    format_breakdown,
    format_series,
    format_table,
    switch_points,
)

__all__ = [
    "ENGINE_NAMES",
    "prepare_graph",
    "pick_source",
    "cached_partition",
    "make_engine",
    "algorithm_params",
    "Cell",
    "run_cell",
    "run_matrix",
    "format_table",
    "calibration_summary",
    "format_calibration",
    "format_breakdown",
    "format_series",
    "switch_points",
]
