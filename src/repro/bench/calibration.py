"""Virtual-machine calibration report.

Summarizes the simulated platform the way a systems paper's "setup"
section would: device constants, link bandwidths, per-edge cost ranges,
and the derived regime boundaries (when is an iteration sync-bound?).
Useful for sanity-checking the DESIGN.md §5 story against the code, and
exposed on the CLI roadmap as a debugging aid.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro import config
from repro.graph.features import FrontierFeatures
from repro.hardware.device import DeviceModel
from repro.hardware.timing import TimingModel
from repro.hardware.topology import Topology

__all__ = ["calibration_summary", "format_calibration"]


def calibration_summary(topology: Topology) -> Dict[str, float]:
    """Machine constants and derived regime numbers, as a flat dict."""
    timing = TimingModel(topology)
    device = DeviceModel(topology.gpu, noise_amplitude=0.0)
    easy = FrontierFeatures(4.0, 4.0, 0.0, 0.0, 0.05, 0.9, 100, 400)
    hard = FrontierFeatures(200.0, 200.0, 2000.0, 2000.0, 0.85, 0.8,
                            100, 20000)
    eff = topology.effective_bandwidth_matrix()
    off_diagonal = eff[~np.eye(topology.num_gpus, dtype=bool)]
    sync8 = timing.sync_seconds(topology.num_gpus)
    cheap_cost = device.true_edge_cost(easy)
    return {
        "edge_scale": float(config.EDGE_SCALE),
        "bytes_per_edge": float(config.BYTES_PER_EDGE),
        "local_bandwidth_gbps": topology.gpu.local_bandwidth_gbps,
        "min_remote_bandwidth_gbps": float(off_diagonal.min())
        if off_diagonal.size else float("nan"),
        "max_remote_bandwidth_gbps": float(off_diagonal.max())
        if off_diagonal.size else float("nan"),
        "edge_cost_easy_us": cheap_cost * 1e6,
        "edge_cost_hard_us": device.true_edge_cost(hard) * 1e6,
        "remote_edge_tax_fastest_us": timing.comm_seconds_per_edge(
            0, topology.num_gpus - 1
        ) * 1e6 if topology.num_gpus > 1 else 0.0,
        "sync_full_group_us": sync8 * 1e6,
        "sync_single_us": timing.sync_seconds(1) * 1e6,
        "kernel_launch_us": topology.gpu.kernel_launch_us,
        # an iteration is sync-bound below this many (simulated) edges
        # per worker at the cheap edge cost
        "sync_bound_below_edges_per_worker": (
            sync8 / max(topology.num_gpus, 1) / cheap_cost
        ),
    }


def format_calibration(topology: Topology) -> str:
    """Human-readable calibration report."""
    summary = calibration_summary(topology)
    lines = [f"virtual machine calibration — {topology!r}", ""]
    labels = {
        "edge_scale": "simulated-edge scale (original edges per edge)",
        "bytes_per_edge": "bytes touched per simulated edge",
        "local_bandwidth_gbps": "local HBM bandwidth (GB/s)",
        "min_remote_bandwidth_gbps": "slowest remote path (GB/s)",
        "max_remote_bandwidth_gbps": "fastest remote path (GB/s)",
        "edge_cost_easy_us": "per-edge compute, easy frontier (us)",
        "edge_cost_hard_us": "per-edge compute, hostile frontier (us)",
        "remote_edge_tax_fastest_us": "remote-access tax per edge (us)",
        "sync_full_group_us": "sync cost, full group (us/iteration)",
        "sync_single_us": "sync cost, single worker (us/iteration)",
        "kernel_launch_us": "kernel launch latency (us)",
        "sync_bound_below_edges_per_worker":
            "sync-bound below (edges/worker/iteration)",
    }
    for key, label in labels.items():
        lines.append(f"  {label:48s} {summary[key]:12.3f}")
    return "\n".join(lines)
