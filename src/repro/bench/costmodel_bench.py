"""The ``costmodel.*`` / ``replay.*`` bench family: the v2 feedback loop.

Three self-gating cases back the cost-model v2 acceptance criteria
(ROADMAP item 3), all deterministic — virtual-clock and model
quantities only, so the committed expectations hold on any host:

* ``costmodel.refit_loop`` — the headline feedback loop on a real
  workload (TX PageRank on 8 GPUs): run under the shipped model,
  harvest the run's *own* decision ledger, refit, rerun under the
  fitted model. Gates: the refit beats the shipped polynomial's RMSRE
  on the harvested samples, **and** total virtual time drops — better
  per-edge predictions change FSteal/OSteal decisions for the better.
* ``costmodel.fit_reference`` — ``harvest`` + ``fit_candidates`` over
  the two committed reference runs. Gate: the winning family's k-fold
  held-out RMSRE beats the shipped polynomial evaluated on the same
  folds (the ``repro costmodel fit --from-runs`` CI assertion).
* ``replay.bit_identity`` — ``repro replay`` of both reference runs
  under their original model. Gate: bit-identical virtual-time totals
  and all three byte-level invariants.

``repro costmodel bench`` runs the suite, writes
``BENCH_costmodel.json``, and exits 1 on any violation.
"""

from __future__ import annotations

import json
import tempfile
from typing import Callable, Dict, List, Optional

from repro.core.costmodel import (
    MODEL_FAMILIES,
    pretrained_default,
    rmsre,
)
from repro.errors import ReproError

__all__ = [
    "COSTMODEL_BENCH_SCHEMA",
    "COSTMODEL_CASES",
    "REFERENCE_RUNS",
    "run_costmodel_suite",
    "write_costmodel_report",
    "load_costmodel_report",
    "format_costmodel_report",
    "report_violations",
]

COSTMODEL_BENCH_SCHEMA = "repro-costmodel-bench/1"

#: The committed reference recordings the fit/replay cases feed on.
REFERENCE_RUNS = (
    "benchmarks/reference/tx-bfs-4gpu",
    "benchmarks/reference/tx-sssp-4gpu",
)


def _registry():
    from repro.runs import RunRegistry

    # path refs resolve against the filesystem; the registry root is
    # never written, so a throwaway directory keeps the bench hermetic
    return RunRegistry(tempfile.mkdtemp(prefix="repro-costmodel-"))


def _case_refit_loop() -> dict:
    """Run -> harvest own ledger -> refit -> rerun, on TX PageRank."""
    import repro
    from repro.graph import datasets

    graph = datasets.load("TX")
    baseline = repro.run(graph, "pr", num_gpus=8)
    samples = baseline.ledger.export_samples()
    shipped_rmsre = rmsre(
        pretrained_default().predict(samples.features), samples.costs
    )
    model = MODEL_FAMILIES["tree"]()
    fit_report = model.fit(samples.features, samples.costs)
    refit = repro.run(graph, "pr", num_gpus=8, cost_model=model)
    result = {
        "workload": "gum/pr/TX/8gpu",
        "family": "tree",
        "samples": int(samples.costs.size),
        "default_total_ms": float(baseline.total_ms),
        "fitted_total_ms": float(refit.total_ms),
        "delta_ms": float(baseline.total_ms - refit.total_ms),
        "shipped_rmsre": float(shipped_rmsre),
        "fitted_rmsre": float(fit_report.train_rmsre),
    }
    violations = []
    if result["fitted_rmsre"] >= result["shipped_rmsre"]:
        violations.append(
            f"refit RMSRE {result['fitted_rmsre']:.4f} does not beat "
            f"the shipped model's {result['shipped_rmsre']:.4f} on "
            "the harvested samples"
        )
    if result["delta_ms"] <= 0.0:
        violations.append(
            "the fitted model did not lower total virtual time "
            f"({result['default_total_ms']:.4f} ms -> "
            f"{result['fitted_total_ms']:.4f} ms)"
        )
    result["violations"] = violations
    return result


def _case_fit_reference() -> dict:
    """Held-out fit quality over the committed reference corpus."""
    from repro.core.costmodel_v2 import fit_candidates, harvest

    corpus = harvest(_registry(), refs=REFERENCE_RUNS)
    outcome = fit_candidates(corpus, model="auto", folds=5, seed=0)
    result = {
        "refs": list(REFERENCE_RUNS),
        "samples": len(corpus),
        "family": outcome.family,
        "holdout_rmsre": float(outcome.holdout_rmsre),
        "shipped_rmsre": float(outcome.baseline.cv_rmsre),
        "candidates": {
            name: float(report.cv_rmsre)
            for name, report in outcome.candidates.items()
        },
    }
    violations = []
    if not outcome.beats_shipped:
        violations.append(
            f"held-out RMSRE {outcome.holdout_rmsre:.4f} does not "
            f"beat the shipped polynomial's "
            f"{outcome.baseline.cv_rmsre:.4f}"
        )
    result["violations"] = violations
    return result


def _case_replay_bit_identity() -> dict:
    """Replay under the original model reproduces the recordings."""
    from repro.replay import replay_run

    registry = _registry()
    runs = []
    violations = []
    for ref in REFERENCE_RUNS:
        outcome = replay_run(registry, ref)
        runs.append({
            "ref": ref,
            "recorded_total_ms": float(outcome.recorded_total_ms),
            "replayed_total_ms": float(outcome.replayed_total_ms),
            "bit_identical": bool(outcome.bit_identical),
            "checks": {
                k: bool(v) for k, v in outcome.checks.items()
            },
        })
        if not outcome.bit_identical:
            failed = [k for k, v in outcome.checks.items() if not v]
            violations.append(
                f"replay of {ref} under the original model is not "
                f"bit-identical (failed: {failed or 'total mismatch'})"
            )
    return {"runs": runs, "violations": violations}


COSTMODEL_CASES: Dict[str, Callable[[], dict]] = {
    "costmodel.refit_loop": _case_refit_loop,
    "costmodel.fit_reference": _case_fit_reference,
    "replay.bit_identity": _case_replay_bit_identity,
}


def run_costmodel_suite(
    names: Optional[List[str]] = None,
) -> dict:
    """Run (a filtered subset of) the suite; returns the report dict."""
    if names:
        selected = sorted(
            case for case in COSTMODEL_CASES
            if any(fragment in case for fragment in names)
        )
        if not selected:
            raise ReproError(
                f"no costmodel bench case matches {names!r}; known: "
                + ", ".join(sorted(COSTMODEL_CASES))
            )
    else:
        selected = sorted(COSTMODEL_CASES)
    return {
        "schema": COSTMODEL_BENCH_SCHEMA,
        "cases": {name: COSTMODEL_CASES[name]() for name in selected},
    }


def report_violations(report: dict) -> List[str]:
    """Flattened ``case: violation`` lines (empty = gate passes)."""
    lines = []
    for name in sorted(report.get("cases", {})):
        for violation in report["cases"][name].get("violations", []):
            lines.append(f"{name}: {violation}")
    return lines


def write_costmodel_report(report: dict, path) -> None:
    """Write the report as stable JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_costmodel_report(path) -> dict:
    """Read a report back (schema-checked)."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("schema") != COSTMODEL_BENCH_SCHEMA:
        raise ReproError(
            f"{path}: unsupported costmodel bench schema "
            f"{report.get('schema')!r} "
            f"(expected {COSTMODEL_BENCH_SCHEMA!r})"
        )
    return report


def format_costmodel_report(report: dict) -> str:
    """Human-readable suite summary."""
    lines = []
    cases = report.get("cases", {})
    if "costmodel.refit_loop" in cases:
        case = cases["costmodel.refit_loop"]
        lines.append(
            f"costmodel.refit_loop    : {case['workload']} "
            f"{case['default_total_ms']:.4f} -> "
            f"{case['fitted_total_ms']:.4f} ms "
            f"({case['delta_ms']:+.4f} ms), RMSRE "
            f"{case['shipped_rmsre']:.4f} -> {case['fitted_rmsre']:.4f} "
            f"({case['family']}, {case['samples']} samples)"
        )
    if "costmodel.fit_reference" in cases:
        case = cases["costmodel.fit_reference"]
        lines.append(
            f"costmodel.fit_reference : {case['family']} held-out "
            f"RMSRE {case['holdout_rmsre']:.4f} vs shipped "
            f"{case['shipped_rmsre']:.4f} "
            f"({case['samples']} samples, "
            f"{len(case['refs'])} reference runs)"
        )
    if "replay.bit_identity" in cases:
        case = cases["replay.bit_identity"]
        verdicts = ", ".join(
            f"{run['ref'].rsplit('/', 1)[-1]}="
            f"{'ok' if run['bit_identical'] else 'FAIL'}"
            for run in case["runs"]
        )
        lines.append(f"replay.bit_identity     : {verdicts}")
    violations = report_violations(report)
    if violations:
        lines.append("violations:")
        lines.extend(f"  {line}" for line in violations)
    else:
        lines.append(f"gate: ok ({len(cases)} case(s))")
    return "\n".join(lines)
