"""Microbenchmark harness for the per-iteration hot path.

The GUM decision layer is only viable if it stays off the critical
path (Table IV charges its latency every superstep), so this module
pins the host-side hot paths with repeatable microbenchmarks:

* FSteal solver solve latency, by backend and problem size,
* LP/MILP constraint assembly in isolation,
* the engine's vectorized plan-pricing path (8 GPUs x 64 fragments),
* one full BFS / PageRank engine iteration,
* cost-model predict throughput.

``run_suite`` produces a machine-readable report (the committed schema
is ``repro-bench/1``); ``compare_reports`` flags regressions against a
committed baseline. Timings are additionally *normalized* by a fixed
numpy calibration workload measured in the same process, so a baseline
recorded on one machine transfers to another: a 30% regression gate on
the normalized score tracks "slower relative to this host's numpy
throughput", not absolute nanoseconds.

CLI: ``python -m repro bench`` (see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "SCHEMA",
    "DEFAULT_THRESHOLD",
    "BenchCase",
    "BenchTiming",
    "Regression",
    "BENCH_CASES",
    "bench_case",
    "time_callable",
    "run_suite",
    "compare_reports",
    "write_report",
    "load_report",
    "format_report",
    "format_regressions",
]

SCHEMA = "repro-bench/1"

#: Fail the gate when a normalized score regresses by more than this.
DEFAULT_THRESHOLD = 0.30


@dataclass(frozen=True)
class BenchCase:
    """One registered microbenchmark.

    ``setup`` builds the workload once (outside the timed region) and
    returns the zero-argument callable that gets timed.
    """

    name: str
    setup: Callable[[], Callable[[], object]]
    meta: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchTiming:
    """Best-of-N per-call latency for one case."""

    name: str
    seconds: float
    calls: int
    repeats: int


@dataclass(frozen=True)
class Regression:
    """One gate violation: a case slower than baseline allows."""

    name: str
    baseline_score: float
    current_score: float
    ratio: float


BENCH_CASES: Dict[str, BenchCase] = {}


def bench_case(name: str, **meta):
    """Register a benchmark case (decorator on its setup function)."""

    def register(setup: Callable[[], Callable[[], object]]):
        if name in BENCH_CASES:
            raise ReproError(f"duplicate benchmark case {name!r}")
        BENCH_CASES[name] = BenchCase(name=name, setup=setup, meta=meta)
        return setup

    return register


def time_callable(
    fn: Callable[[], object],
    repeats: int = 5,
    min_seconds: float = 0.02,
) -> BenchTiming:
    """Best-of-``repeats`` per-call latency of ``fn``.

    Each repeat loops ``fn`` until ``min_seconds`` of wall time have
    accumulated (calibrated from a warmup call), so sub-microsecond
    cases are still measured against timer resolution. The *minimum*
    over repeats is the standard low-noise estimator: external
    interference only ever adds time.
    """
    fn()  # warmup: JIT caches, lazy imports, memoized graphs
    start = time.perf_counter()
    fn()
    once = max(time.perf_counter() - start, 1e-9)
    calls = max(1, int(min_seconds / once))
    best = float("inf")
    for __ in range(max(1, repeats)):
        start = time.perf_counter()
        for __ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / calls)
    return BenchTiming(name="", seconds=best, calls=calls,
                       repeats=repeats)


# ----------------------------------------------------------------------
# Calibration: a fixed numpy workload that scales with host speed the
# same way the benchmarks do (array math + a small linear solve).
# ----------------------------------------------------------------------
def _calibration_workload() -> Callable[[], object]:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((160, 160))
    gram = a @ a.T + 160 * np.eye(160)
    b = rng.standard_normal(160)
    big = rng.standard_normal(200_000)

    def run():
        x = np.linalg.solve(gram, b)
        y = np.sort(big * x[0])
        return float(y[0])

    return run


def measure_calibration(repeats: int = 5) -> float:
    """Per-call seconds of the fixed calibration workload."""
    return time_callable(_calibration_workload(), repeats=repeats).seconds


# ----------------------------------------------------------------------
# Case registry
# ----------------------------------------------------------------------
def _random_problem(n_frag: int, n_work: int, seed: int = 0):
    from repro.core.milp import FStealProblem

    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.5e-9, 3e-9, size=(n_frag, n_work))
    costs[rng.random((n_frag, n_work)) < 0.1] = np.inf
    workloads = rng.integers(0, 5000, size=n_frag)
    for i in range(n_frag):
        if not np.isfinite(costs[i]).any():
            costs[i, 0] = 1e-9
    return FStealProblem(costs, workloads)


def _register_solver_cases() -> None:
    sizes = {
        "greedy": ((8, 8), (64, 8)),
        "lp": ((8, 8), (64, 8)),
        "bnb": ((8, 8),),
        "highs": ((8, 8), (16, 8)),
    }
    for backend, shapes in sizes.items():
        for n_frag, n_work in shapes:
            name = f"solver.{backend}.{n_frag}x{n_work}"

            def setup(backend=backend, n_frag=n_frag, n_work=n_work):
                from repro.core.milp import make_solver

                solver = make_solver(backend)
                problem = _random_problem(n_frag, n_work)
                return lambda: solver.solve(problem)

            BENCH_CASES[name] = BenchCase(
                name=name, setup=setup,
                meta={"backend": backend, "fragments": n_frag,
                      "workers": n_work},
            )


_register_solver_cases()


@bench_case("assembly.dense.64x8", fragments=64, workers=8)
def _assembly_dense():
    from repro.core.milp import _assemble_constraints

    problem = _random_problem(64, 8)
    return lambda: _assemble_constraints(problem)


@bench_case("assembly.sparse.64x8", fragments=64, workers=8)
def _assembly_sparse():
    from repro.core.milp import _assemble_constraints

    problem = _random_problem(64, 8)
    return lambda: _assemble_constraints(problem, use_sparse=True)


def _pricing_fixture(n_frag: int = 64, n_gpus: int = 8):
    """A synthetic 8-GPU x ``n_frag``-fragment plan-pricing workload.

    Every (fragment, worker) pair gets a chunk — the worst-case chunk
    count FSteal can produce — with a quarter of the chunks stolen.
    """
    from repro.graph import generators
    from repro.hardware import dgx1
    from repro.hardware.timing import TimingModel
    from repro.partition.partitioners import random_partition
    from repro.runtime.bsp import BSPEngine
    from repro.runtime.frontier import Frontier
    from repro.runtime.scheduler import (
        IterationPlan,
        RunContext,
        WorkChunk,
    )

    graph = generators.rmat(11, 8, seed=3)
    topology = dgx1(n_gpus)
    engine = BSPEngine(topology)
    partition = random_partition(graph, n_gpus, seed=0)
    rng = np.random.default_rng(0)
    fragment_home = rng.integers(0, n_gpus, size=n_frag)
    context = RunContext(
        graph=graph,
        partition=partition,
        timing=TimingModel(topology),
        fragment_home=fragment_home,
        fragment_worker=fragment_home.copy(),
    )
    frontiers = [
        Frontier(rng.integers(0, graph.num_vertices, size=48))
        for __ in range(n_frag)
    ]
    features = [f.features(graph) for f in frontiers]
    chunks = []
    for owner in range(n_frag):
        vertices = frontiers[owner].vertices
        for worker in range(n_gpus):
            chunks.append(WorkChunk(
                owner=owner,
                worker=worker,
                vertices=vertices[: max(1, vertices.size // n_gpus)],
                edges=int(rng.integers(1, 2000)),
                hub_edges=int(rng.integers(0, 100)),
            ))
    plan = IterationPlan(chunks=chunks,
                         active_workers=list(range(n_gpus)))
    return engine, plan, features, context, n_gpus


@bench_case("pricing.chunks.64x8", fragments=64, workers=8, chunks=512)
def _pricing_case():
    engine, plan, features, context, n_gpus = _pricing_fixture()
    return lambda: engine._price_chunks(plan, features, context, n_gpus)


def _iteration_case(algorithm: str, iterations: int):
    def setup():
        from repro.bench.runner import Cell, run_cell
        from repro.core import GumConfig

        config = GumConfig(cost_model="oracle")

        def run():
            return run_cell(
                Cell("gum", algorithm, "TX", 8),
                gum_config=config,
                max_iterations=iterations,
            )

        return lambda: run()

    return setup


BENCH_CASES["engine.bfs.TX.8gpu"] = BenchCase(
    name="engine.bfs.TX.8gpu",
    setup=_iteration_case("bfs", 40),
    meta={"algorithm": "bfs", "graph": "TX", "iterations": 40,
          "unit": "seconds per 40 iterations"},
)
BENCH_CASES["engine.pr.TX.8gpu"] = BenchCase(
    name="engine.pr.TX.8gpu",
    setup=_iteration_case("pr", 5),
    meta={"algorithm": "pr", "graph": "TX", "iterations": 5,
          "unit": "seconds per 5 iterations"},
)


def _predict_case(family: str, rows: int = 4096):
    def setup():
        from repro.core.costmodel import MODEL_FAMILIES

        rng = np.random.default_rng(1)
        train = rng.uniform(0.0, 200.0, size=(512, 6))
        costs = np.exp(rng.normal(-20.0, 0.4, size=512))
        model = MODEL_FAMILIES[family]()
        model.fit(train, costs)
        batch = rng.uniform(0.0, 200.0, size=(rows, 6))
        return lambda: model.predict(batch)

    return setup


for _family in ("tree", "polynomial"):
    _name = f"costmodel.{_family}.predict4096"
    _meta = {"family": _family, "rows": 4096}
    if _family == "polynomial":
        # BLAS-bound and frequency-sensitive: observed ~1.4x run-to-run
        # swings on an otherwise idle host, so the default 30% gate
        # would flag noise.  It is a comparison point, not one of the
        # vectorized hot-path targets, so it gets a wider band.
        _meta["bench_threshold"] = 0.6
    BENCH_CASES[_name] = BenchCase(
        name=_name, setup=_predict_case(_family),
        meta=_meta,
    )


# ----------------------------------------------------------------------
# Decision-amortization cases: the tail-heavy road-graph regime where
# the plan cache, warm starts, and the incremental OSteal search pay.
# ----------------------------------------------------------------------
def _road_tail_levels(n_levels: int = 8):
    """Consecutive deep BFS levels of the TX road graph.

    Road networks have huge diameters, so the deep levels are the
    paper's LT regime: small cycling frontiers where the per-iteration
    decision cost dominates. Returns ``(graph, levels)`` with each
    level a vertex array.
    """
    from repro.graph.datasets import load
    from repro.runtime.frontier import Frontier

    graph = load("TX")
    visited = np.zeros(graph.num_vertices, dtype=bool)
    frontier = np.array([0], dtype=np.int64)
    visited[0] = True
    levels = [frontier]
    while frontier.size:
        __, destinations, __ = Frontier(frontier).gather(graph)
        if destinations.size:
            nxt = np.unique(destinations[~visited[destinations]])
        else:
            nxt = np.empty(0, dtype=np.int64)
        visited[nxt] = True
        frontier = nxt
        if frontier.size:
            levels.append(frontier)
    # deep-tail slice: past ~70% of the diameter, still non-empty
    start = max(1, int(len(levels) * 0.7))
    return graph, levels[start:start + n_levels]


def _decision_fixture(amortize: bool):
    """A steady-state tail iteration driving the real GUM arbitrator.

    Cycles ``GumScheduler.plan`` over deep TX BFS levels with the
    long-tail trigger forced on every iteration (cooldown 0, tiny
    previous wall time), so each call pays the full decision path:
    OSteal enumeration plus the FSteal solve/cache. The caches are
    pre-warmed with two full cycles so the amortized arm measures its
    steady state.
    """
    from repro.core.arbitrator import GumConfig, GumScheduler
    from repro.hardware import dgx1
    from repro.hardware.timing import TimingModel
    from repro.partition.partitioners import random_partition
    from repro.runtime.scheduler import RunContext

    n_gpus = 8
    graph, levels = _road_tail_levels()
    partition = random_partition(graph, n_gpus, seed=0)
    topology = dgx1(n_gpus)
    context = RunContext(
        graph=graph,
        partition=partition,
        timing=TimingModel(topology),
        fragment_home=np.arange(n_gpus, dtype=np.int64),
        fragment_worker=np.arange(n_gpus, dtype=np.int64),
    )
    scheduler = GumScheduler(GumConfig(
        amortize=amortize,
        cost_model="oracle",
        t1_min_edges=0,
        t2_imbalance_edges=0,
        t2_imbalance_ratio=0.0,
        osteal_cooldown=0,
    ))
    scheduler.begin_run(context)
    # force the LT regime: every iteration looks like a tail iteration
    scheduler._state.prev_wall = 1e-6
    from repro.runtime.frontier import Frontier

    steps = []
    for vertices in levels:
        frags = Frontier(vertices).split_by_owner(
            partition.owner, n_gpus
        )
        loads = np.array(
            [f.work(graph) for f in frags], dtype=np.int64
        )
        steps.append((frags, loads))
    counter = {"i": 0}

    def step():
        frags, loads = steps[counter["i"] % len(steps)]
        counter["i"] += 1
        scheduler._state.prev_wall = 1e-6
        return scheduler.plan(counter["i"], frags, loads, context)

    for __ in range(2 * len(steps)):  # pre-warm caches + memoized features
        step()
    return step


@bench_case("decision.iteration.cold.tailTX.8gpu",
            graph="TX", workers=8, amortize=False,
            unit="seconds per arbitrator decision")
def _decision_cold():
    return _decision_fixture(amortize=False)


@bench_case("decision.iteration.amortized.tailTX.8gpu",
            graph="TX", workers=8, amortize=True,
            unit="seconds per arbitrator decision")
def _decision_amortized():
    return _decision_fixture(amortize=True)


def _osteal_fixture():
    """Shared inputs for one Algorithm-2 enumeration on a tail level."""
    from repro import config as repro_config
    from repro.core.costmodel import OracleCostModel
    from repro.core.milp import make_solver
    from repro.core.reduction_tree import ReductionTree
    from repro.hardware import dgx1
    from repro.hardware.microbench import measure_comm_cost_matrix
    from repro.partition.partitioners import random_partition
    from repro.runtime.frontier import Frontier

    n_gpus = 8
    graph, levels = _road_tail_levels()
    partition = random_partition(graph, n_gpus, seed=0)
    topology = dgx1(n_gpus)
    frags = Frontier(levels[0]).split_by_owner(partition.owner, n_gpus)
    features = [f.features(graph) for f in frags]
    workloads = np.array([f.work(graph) for f in frags], dtype=np.int64)
    comm_cost = measure_comm_cost_matrix(
        topology, repro_config.BYTES_PER_EDGE, seed=0
    )
    return dict(
        tree=ReductionTree(topology),
        comm_cost=comm_cost,
        fragment_features=features,
        workloads=workloads,
        fragment_home=np.arange(n_gpus, dtype=np.int64),
        cost_model=OracleCostModel(),
        solver=make_solver("greedy"),
        p_estimate=1e-4,
    )


@bench_case("decision.osteal.scan.8gpu", workers=8, search="scan",
            unit="seconds per full Algorithm-2 enumeration")
def _osteal_scan():
    from repro.core.osteal import plan_osteal

    kwargs = _osteal_fixture()
    return lambda: plan_osteal(search="scan", **kwargs)


@bench_case("decision.osteal.bracket.8gpu", workers=8, search="bracket",
            unit="seconds per warmed bracket search")
def _osteal_bracket():
    from repro.core.osteal import plan_osteal

    kwargs = _osteal_fixture()
    z_cache: Dict[int, float] = {}
    warm = plan_osteal(search="bracket", z_cache=z_cache, **kwargs)
    start = warm.group_size
    return lambda: plan_osteal(
        search="bracket", z_cache=z_cache, start_size=start, **kwargs
    )


@bench_case("decision.fsteal.cold.64x8", fragments=64, workers=8,
            unit="seconds per cold greedy solve")
def _fsteal_cold():
    from repro.core.milp import make_solver

    solver = make_solver("greedy")
    problem = _random_problem(64, 8)
    return lambda: solver.solve(problem)


@bench_case("decision.fsteal.warm.64x8", fragments=64, workers=8,
            unit="seconds per warm-started greedy solve")
def _fsteal_warm():
    from repro.core.milp import make_solver

    solver = make_solver("greedy")
    problem = _random_problem(64, 8)
    warm = solver.solve(problem).assignment
    return lambda: solver.solve(problem, warm_start=warm)


@bench_case("decision.fsteal.cached.64x8", fragments=64, workers=8,
            unit="seconds per plan-cache hit (fingerprint+repair+validate)")
def _fsteal_cached():
    from repro.core.decision_cache import PlanCache
    from repro.core.milp import make_solver

    solver = make_solver("greedy")
    problem = _random_problem(64, 8)
    cache = PlanCache()
    key = cache.fingerprint(problem.costs, problem.workloads)
    cache.store(key, solver.solve(problem).assignment)

    def hit():
        key = cache.fingerprint(problem.costs, problem.workloads)
        plan = cache.fetch(key, problem)
        assert plan is not None
        return plan

    return hit


# ----------------------------------------------------------------------
# Observability self-cost (the <3% overhead budget lives here)
# ----------------------------------------------------------------------
def _obs_iteration_record(iteration: int = 7):
    """A representative mid-run IterationRecord for emit benchmarks."""
    from repro.runtime.metrics import IterationRecord, TimeBreakdown

    return IterationRecord(
        iteration=iteration,
        frontier_size=4096,
        frontier_edges=131072,
        active_workers=[0, 1, 2, 3],
        busy_seconds=np.array([1.1e-4, 0.9e-4, 1.0e-4, 1.2e-4]),
        stall_seconds=np.array([1.0e-5, 3.0e-5, 2.0e-5, 0.0]),
        wall_seconds=1.3e-4,
        breakdown=TimeBreakdown(compute=3.5e-4, communication=6.0e-5,
                                serialization=2.0e-5, sync=6.0e-5),
        fsteal_applied=True,
        osteal_group_size=4,
        stolen_edges=2048,
        real_decision_seconds=4.0e-5,
    )


def _obs_populated_registry():
    """A registry shaped like a finished mid-size run."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for i in range(200):
        registry.counter("engine.iterations").inc()
        registry.histogram("engine.wall_ms").observe(0.1 + 0.001 * i)
        registry.timeseries("engine.wall_ms_series").append(
            0.1 + 0.001 * i, index=i)
        registry.counter("steal.edges").inc(64, gpu=i % 8)
    registry.gauge("osteal.group_size").set(6)
    return registry


@bench_case("obs.emit.iteration", unit="seconds per streamed iteration",
            note="span export + metrics publish + live stream emit")
def _obs_emit_iteration():
    import os

    from repro.obs.export import emit_iteration
    from repro.obs.live import StreamingSink
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

    registry = MetricsRegistry()
    sink = StreamingSink(open(os.devnull, "w"), metrics=registry)
    tracer = Tracer(sinks=[sink])
    record = _obs_iteration_record()

    def emit():
        return emit_iteration(tracer, registry, record, 0.007, 4,
                              engine="gum")

    return emit


@bench_case("obs.stream.span", unit="seconds per streamed span line",
            bench_threshold=1.0)
def _obs_stream_span():
    import os

    from repro.obs.live import StreamingSink
    from repro.obs.tracer import SpanRecord

    sink = StreamingSink(open(os.devnull, "w"))
    record = SpanRecord(
        name="busy", track="gpu3", cat="engine",
        virtual_start=0.0071, virtual_dur=1.1e-4,
        attrs={"iteration": 7, "gpu": 3},
    )
    return lambda: sink.emit(record)


@bench_case("obs.snapshot.light", unit="seconds per heartbeat snapshot",
            bench_threshold=1.0)
def _obs_snapshot_light():
    registry = _obs_populated_registry()
    return lambda: registry.snapshot(light=True)


@bench_case("obs.prom.render", unit="seconds per Prometheus render",
            bench_threshold=1.0)
def _obs_prom_render():
    from repro.obs.prom import prom_text

    snapshot = _obs_populated_registry().snapshot()
    return lambda: prom_text(snapshot)


@bench_case("obs.slo.check", unit="seconds per SLO policy evaluation")
def _obs_slo_check():
    from repro.obs.slo import evaluate, policy_from_dict

    policy = policy_from_dict({
        "schema": "repro-slo/1",
        "rules": [
            {"metric": "p99_iteration_ms", "max": 1.0},
            {"metric": "max_stall_fraction", "max": 0.05},
            {"metric": "min_gpu_utilization", "min": 0.5},
            {"metric": "total_ms", "max": 100.0},
            {"series": "wall_ms", "zscore_max": 6.0},
        ],
    })
    summary = {
        "total_ms": 26.0,
        "stall_fraction": 0.004,
        "per_gpu_utilization": [0.99, 0.0, 0.0, 1.0],
    }
    timeseries = {
        "iteration": list(range(200)),
        "wall_ms": [0.18 + 0.0005 * (i % 7) for i in range(200)],
    }
    return lambda: evaluate(policy, summary, timeseries=timeseries)


def _obs_ledger_features():
    from repro.graph.features import FrontierFeatures

    return [
        FrontierFeatures(
            avg_in_degree=4.0 + f, avg_out_degree=5.0 + f,
            in_degree_range=32.0, out_degree_range=48.0,
            gini=0.42, entropy=0.91, size=1024,
            total_edges=4096 + 64 * f,
        )
        for f in range(4)
    ]


def _obs_populated_ledger(decisions: int = 200):
    from repro.obs.ledger import Ledger

    features = _obs_ledger_features()
    ledger = Ledger()
    for i in range(decisions):
        ledger.begin(i, [4096 + 64 * f for f in range(4)])
        for fragment, feats in enumerate(features):
            predicted = 1.0e-6 * (1.0 + 0.01 * fragment)
            ledger.record_sample(fragment, fragment, feats, predicted,
                                 predicted * (1.0 + 0.001 * (i % 9)))
        ledger.commit(group_size=4, active_workers=[0, 1, 2, 3],
                      fsteal_applied=False, stolen_edges=0,
                      migrated_vertices=0)
        ledger.backfill(i, wall_seconds=1.3e-4,
                        critical_busy_seconds=1.2e-4,
                        compute_seconds=1.0e-4, num_active=4)
    return ledger


@bench_case("obs.ledger_overhead.record",
            unit="seconds per recorded decision",
            note="begin + 4 audit samples + commit + backfill")
def _obs_ledger_record():
    from repro.obs.ledger import Ledger

    features = _obs_ledger_features()
    ledger = Ledger()
    state = {"i": 0}

    def record():
        i = state["i"]
        state["i"] = i + 1
        ledger.begin(i, [4096, 4160, 4224, 4288])
        for fragment, feats in enumerate(features):
            ledger.record_sample(fragment, fragment, feats, 1.0e-6,
                                 1.05e-6)
        ledger.commit(group_size=4, active_workers=[0, 1, 2, 3],
                      fsteal_applied=False, stolen_edges=0,
                      migrated_vertices=0)
        ledger.backfill(i, wall_seconds=1.3e-4,
                        critical_busy_seconds=1.2e-4,
                        compute_seconds=1.0e-4, num_active=4)
        return ledger.entries[-1]

    return record


@bench_case("obs.ledger_overhead.analytics",
            unit="seconds per analytics derivation",
            bench_threshold=1.0,
            note="RMSRE series + drift + attribution over 200 decisions")
def _obs_ledger_analytics():
    ledger = _obs_populated_ledger()
    return lambda: ledger.analytics()


# ----------------------------------------------------------------------
# Execution-backend cases: one full min-propagation superstep over a
# generated big graph, identical work under each backend. The shmem
# side dispatches the superstep to its (already started) worker pool,
# so serial-vs-shmem is the wall-clock question the backend exists to
# answer; ``benchmarks/perf/test_backend.py`` turns the pair into a
# speedup floor on multi-core hosts.
# ----------------------------------------------------------------------
def _backend_fixture(backend: str, workers: int = 4):
    """``(session, superstep)`` over the big-graph backend workload.

    The superstep callable resets the values each call and builds a
    *fresh* frontier (so the per-frontier gather memo cannot hide the
    adjacency walk), then drives one dispatch + message-count + step
    round through the session — exactly the engine's per-iteration
    session protocol. The caller owns closing the session.
    """
    from repro.algorithms import make_algorithm
    from repro.backend import make_backend
    from repro.graph.builders import symmetrize
    from repro.graph.generators import rmat
    from repro.partition.partitioners import make_partition
    from repro.runtime.frontier import Frontier
    from repro.runtime.scheduler import RunContext

    graph = symmetrize(
        rmat(16, edge_factor=12, seed=1)
    ).with_name("rmat16")
    partition = make_partition("random", graph, workers, seed=0)
    algorithm = make_algorithm("wcc")
    state = algorithm.init(graph)
    init_values = np.array(state.values)
    active = np.array(state.frontier.vertices)
    context = RunContext(
        graph=graph, partition=partition, timing=None,
        fragment_home=np.arange(workers, dtype=np.int64),
        fragment_worker=np.arange(workers, dtype=np.int64),
        algorithm_name=algorithm.name,
        extras={"aggregate_messages": True},
    )
    session = make_backend(backend).open(
        graph, partition, algorithm, state, context
    )
    counter = iter(range(1, 1 << 30))

    def superstep():
        iteration = next(counter)
        state.values[:] = init_values
        state.iteration = iteration
        frontier = Frontier.from_sorted(active)
        state.frontier = frontier
        fragments = frontier.split_by_owner(partition.owner, workers)
        session.begin_iteration(iteration, fragments, context)
        messages = session.message_count(iteration, frontier, True,
                                         context)
        return messages, session.step(
            iteration, algorithm, graph, state
        ).size

    return session, superstep


#: Sessions opened by bench-case setups, kept alive for the timed
#: region; their shared blocks are reaped by the registry's atexit
#: backstop and the workers are daemonic.
_BACKEND_SESSIONS: List[object] = []


def _backend_case(backend: str):
    def setup():
        session, superstep = _backend_fixture(backend)
        _BACKEND_SESSIONS.append(session)
        return superstep

    return setup


for _backend in ("serial", "shmem"):
    _name = f"backend.{_backend}.superstep.rmat16.4w"
    BENCH_CASES[_name] = BenchCase(
        name=_name, setup=_backend_case(_backend),
        meta={
            "backend": _backend, "graph": "rmat16x12-sym", "workers": 4,
            "unit": "seconds per superstep",
            # wall-clock of a process pool depends on host core count,
            # so the regression band is wide; the speedup *floor* lives
            # in benchmarks/perf/test_backend.py where both backends
            # are measured on the same host
            "bench_threshold": 0.8,
        },
    )


# ----------------------------------------------------------------------
# Suite driver / report IO
# ----------------------------------------------------------------------
def run_suite(
    names: Optional[Sequence[str]] = None,
    repeats: int = 5,
    min_seconds: float = 0.02,
) -> dict:
    """Run (a filtered subset of) the registered cases; return a report.

    ``names`` entries match case names by substring. The report maps
    each case to raw per-call ``seconds`` and a machine-normalized
    ``score`` (seconds / calibration seconds).
    """
    selected = [
        case for name, case in sorted(BENCH_CASES.items())
        if not names or any(token in name for token in names)
    ]
    if not selected:
        raise ReproError(
            f"no benchmark case matches {list(names or [])!r}; "
            f"known: {sorted(BENCH_CASES)}"
        )
    calibration = measure_calibration(repeats=repeats)
    benchmarks = {}
    for case in selected:
        fn = case.setup()
        timing = time_callable(fn, repeats=repeats,
                               min_seconds=min_seconds)
        benchmarks[case.name] = {
            "seconds": timing.seconds,
            "score": timing.seconds / calibration,
            "calls": timing.calls,
            "repeats": timing.repeats,
            "meta": dict(case.meta),
        }
    return {
        "schema": SCHEMA,
        "calibration_seconds": calibration,
        "benchmarks": benchmarks,
    }


def compare_reports(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Regression]:
    """Normalized-score regressions of ``current`` against ``baseline``.

    Cases present only on one side are ignored (new benchmarks must be
    committable without a flag day).  A case regresses only when BOTH
    its machine-normalized score AND its raw per-call seconds exceed
    the baseline by more than ``threshold``: the score ratio transfers
    the committed baseline across hosts of different speed, while the
    seconds ratio filters out calibration jitter (a noisy calibration
    run inflates every score by the same factor without any benchmark
    actually slowing down).
    """
    for report in (current, baseline):
        if report.get("schema") != SCHEMA:
            raise ReproError(
                f"unsupported bench report schema {report.get('schema')!r}"
            )
    regressions = []
    for name, entry in sorted(current["benchmarks"].items()):
        base = baseline["benchmarks"].get(name)
        if base is None:
            continue
        ratio = entry["score"] / max(base["score"], 1e-12)
        raw_ratio = entry["seconds"] / max(base["seconds"], 1e-12)
        # A case may widen its own band via ``bench_threshold`` meta
        # (e.g. BLAS-bound cases with large run-to-run variance).
        bar = max(threshold,
                  float(entry.get("meta", {}).get("bench_threshold", 0.0)))
        if ratio > 1.0 + bar and raw_ratio > 1.0 + bar:
            regressions.append(Regression(
                name=name,
                baseline_score=base["score"],
                current_score=entry["score"],
                ratio=ratio,
            ))
    return regressions


def confirm_regressions(
    regressions: Sequence[Regression],
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    repeats: int = 5,
    min_seconds: float = 0.02,
) -> List[Regression]:
    """Re-measure regressed cases and keep only reproducible ones.

    Wall-clock microbenchmarks on shared hosts see transient >30%
    swings from CPU contention and frequency scaling.  A real code
    regression reproduces on a fresh measurement (including a fresh
    calibration run); a noise spike almost never does.  The gate
    therefore re-runs only the offending cases and confirms each
    regression before failing.
    """
    if not regressions:
        return []
    retry = run_suite(
        names=[reg.name for reg in regressions],
        repeats=repeats,
        min_seconds=min_seconds,
    )
    return compare_reports(retry, baseline, threshold=threshold)


def write_report(report: dict, path) -> None:
    """Write a report as indented JSON (trailing newline included)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path) -> dict:
    """Read a report written by :func:`write_report`."""
    with open(path) as handle:
        return json.load(handle)


def format_report(report: dict) -> str:
    """Human-readable table of one report."""
    lines = [
        f"{'case':34s} {'per call':>12s} {'score':>10s} {'calls':>6s}",
    ]
    for name, entry in sorted(report["benchmarks"].items()):
        seconds = entry["seconds"]
        unit = (
            f"{seconds * 1e6:10.1f} us" if seconds < 1e-3
            else f"{seconds * 1e3:10.2f} ms"
        )
        lines.append(
            f"{name:34s} {unit:>12s} {entry['score']:10.3f} "
            f"{entry['calls']:6d}"
        )
    lines.append(
        f"calibration: {report['calibration_seconds'] * 1e3:.3f} ms/call"
    )
    return "\n".join(lines)


def format_regressions(regressions: Sequence[Regression]) -> str:
    """Human-readable regression list (empty string when clean)."""
    if not regressions:
        return ""
    lines = ["benchmark regressions (normalized score vs baseline):"]
    for reg in regressions:
        lines.append(
            f"  {reg.name}: {reg.baseline_score:.3f} -> "
            f"{reg.current_score:.3f}  ({reg.ratio:.2f}x)"
        )
    return "\n".join(lines)
