"""ASCII reporting helpers that mirror the paper's tables and figures.

Benchmarks print through these so their output reads like the paper's
artifacts: Table III's runtime grid, Figure 6's stacked breakdowns,
Figure 9's group-size switch points, and so on.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_breakdown", "format_series",
           "switch_points"]


def format_table(
    rows: Sequence[str],
    columns: Sequence[str],
    cells: Mapping[tuple, float],
    title: str = "",
    unit: str = "ms",
    best_of_column: bool = False,
) -> str:
    """Render a row x column grid of numbers.

    ``cells`` maps ``(row, column)`` to a value; missing cells print
    as ``-``. With ``best_of_column``, the smallest value per column
    is marked with ``*`` (the paper bolds winners per graph).
    """
    col_width = max(8, max((len(c) for c in columns), default=8) + 1)
    row_width = max(10, max((len(r) for r in rows), default=10) + 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    winners = {}
    if best_of_column:
        for column in columns:
            present = [
                (cells[(row, column)], row)
                for row in rows
                if (row, column) in cells
            ]
            if present:
                winners[column] = min(present)[1]
    for row in rows:
        out = row.ljust(row_width)
        for column in columns:
            value = cells.get((row, column))
            if value is None:
                out += "-".rjust(col_width)
                continue
            mark = "*" if winners.get(column) == row else ""
            out += f"{value:.2f}{mark}".rjust(col_width)
        lines.append(out)
    if unit:
        lines.append(f"(values in {unit}; * = column best)"
                     if best_of_column else f"(values in {unit})")
    return "\n".join(lines)


def format_breakdown(
    labels: Sequence[str],
    breakdowns: Sequence[Mapping[str, float]],
    title: str = "",
) -> str:
    """Render per-run time breakdowns as aligned columns (Figure 6)."""
    buckets = ["compute", "communication", "serialization", "sync",
               "overhead", "total"]
    width = max(12, max((len(label) for label in labels), default=12) + 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" " * width + "".join(b.rjust(15) for b in buckets))
    for label, breakdown in zip(labels, breakdowns):
        row = label.ljust(width)
        for bucket in buckets:
            row += f"{breakdown.get(bucket, 0.0):.3f}".rjust(15)
        lines.append(row)
    lines.append("(milliseconds)")
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence,
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    max_points: int = 24,
) -> str:
    """Render an (x, y) series, downsampled to ``max_points`` rows."""
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    step = max(1, n // max_points)
    picked = list(range(0, n, step))
    if picked[-1] != n - 1:
        picked.append(n - 1)
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for idx in picked:
        lines.append(f"  {xs[idx]!s:>10} -> {ys[idx]:.4g}")
    return "\n".join(lines)


def switch_points(series: Sequence[int]) -> List[tuple]:
    """Indices where a step series changes value (Figure 9's events)."""
    events = []
    previous: Optional[int] = None
    for index, value in enumerate(series):
        if previous is None or value != previous:
            events.append((index, value))
            previous = value
    return events
