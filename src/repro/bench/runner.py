"""Experiment runner: execute (engine x algorithm x graph x GPUs) cells.

Every benchmark file reduces to a handful of :func:`run_cell` calls
plus a reporting call, so the experiment scripts stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core import GumConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime import EngineOptions, RunResult
from repro.bench.workloads import (
    algorithm_params,
    cached_partition,
    make_engine,
    prepare_graph,
)

__all__ = ["Cell", "run_cell", "run_matrix"]


@dataclass(frozen=True)
class Cell:
    """One benchmark cell identifier."""

    engine: str
    algorithm: str
    graph: str
    num_gpus: int = 8
    partitioner: str = "random"

    def label(self) -> str:
        """Human-readable cell id."""
        return (
            f"{self.engine}/{self.algorithm}/{self.graph}"
            f"@{self.num_gpus}gpu/{self.partitioner}"
        )


def run_cell(
    cell: Cell,
    gum_config: Optional[GumConfig] = None,
    options: Optional[EngineOptions] = None,
    max_iterations: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    chaos=None,
    topology=None,
) -> RunResult:
    """Execute one benchmark cell and return its result."""
    graph = prepare_graph(cell.graph, cell.algorithm)
    partition = cached_partition(
        graph, cell.num_gpus, partitioner=cell.partitioner
    )
    engine = make_engine(
        cell.engine, cell.num_gpus, gum_config=gum_config, options=options,
        tracer=tracer, metrics=metrics, chaos=chaos, topology=topology,
    )
    params = algorithm_params(cell.algorithm, cell.graph)
    return engine.run(
        graph, partition, cell.algorithm,
        max_iterations=max_iterations, **params,
    )


def run_matrix(
    engines: Iterable[str],
    algorithms: Iterable[str],
    graphs: Iterable[str],
    num_gpus: int = 8,
    partitioner: str = "random",
    gum_config: Optional[GumConfig] = None,
) -> Dict[Cell, RunResult]:
    """Run the full cross product, keyed by :class:`Cell`."""
    results: Dict[Cell, RunResult] = {}
    for algorithm in algorithms:
        for graph in graphs:
            for engine in engines:
                cell = Cell(engine, algorithm, graph, num_gpus, partitioner)
                results[cell] = run_cell(cell, gum_config=gum_config)
    return results
