"""Out-of-core multi-node scale benchmarks: the ``scale.*`` family.

The microbenchmarks in :mod:`repro.bench.perfharness` pin per-call
hot-path latency; this suite pins the *capacity* story instead: a
generated rmat20-class graph is sharded to disk, opened under a
resident-byte budget at most ``1/8`` of its CSR payload, and driven
through full BFS / PageRank runs on single-node and multi-node
(hierarchical two-level stealing) shapes. Each case scores

* virtual ``ms_per_edge`` — deterministic, so the committed baseline
  gates it tightly across hosts;
* ``peak_resident_bytes`` — the shard cache's high-water mark, which
  must stay under the budget;
* wall-clock ``ms_per_edge`` for the sharded run relative to the
  in-core run — the out-of-core overhead, gated at 25%;
* bit-identity of results and virtual time between the in-core and
  sharded runs (the equivalence contract, re-checked on the real
  workload);
* ``inter_node_stolen_edges`` on multi-node shapes, proving the
  hierarchy actually engaged.

CLI: ``python -m repro scale`` (see ``docs/performance.md``); CI runs
the ``scale.bfs.2x4`` smoke case and uploads ``BENCH_scale.json``.
"""

from __future__ import annotations

import functools
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ReproError

__all__ = [
    "SCALE_SCHEMA",
    "WALL_OVERHEAD_THRESHOLD",
    "VIRTUAL_TOLERANCE",
    "ScaleCase",
    "SCALE_CASES",
    "run_scale_case",
    "run_scale_suite",
    "compare_scale_reports",
    "write_scale_report",
    "load_scale_report",
    "format_scale_report",
]

SCALE_SCHEMA = "repro-scale/1"

#: Sharded wall-clock ms-per-edge may exceed in-core by at most this.
WALL_OVERHEAD_THRESHOLD = 0.25

#: Virtual ms-per-edge is deterministic; the band only guards float
#: printing/platform noise, not real variance.
VIRTUAL_TOLERANCE = 1e-6

#: The CSR payload must be at least this many times the shard budget,
#: so the benchmark genuinely exercises out-of-core paging.
MIN_CAPACITY_RATIO = 8


@dataclass(frozen=True)
class ScaleCase:
    """One out-of-core scale benchmark cell."""

    name: str
    algorithm: str
    num_nodes: int
    gpus_per_node: int
    graph_scale: int = 20
    edge_factor: int = 8
    num_shards: int = 16
    max_rounds: Optional[int] = None  # PageRank round cap

    @property
    def num_gpus(self) -> int:
        """Total worker count across the cluster."""
        return self.num_nodes * self.gpus_per_node


SCALE_CASES: Dict[str, ScaleCase] = {}

for _nodes, _gpn in ((1, 4), (2, 4), (4, 4)):
    for _algo in ("bfs", "pr"):
        _name = f"scale.{_algo}.{_nodes}x{_gpn}"
        SCALE_CASES[_name] = ScaleCase(
            name=_name,
            algorithm=_algo,
            num_nodes=_nodes,
            gpus_per_node=_gpn,
            max_rounds=5 if _algo == "pr" else None,
        )


@functools.lru_cache(maxsize=2)
def _scale_graph(graph_scale: int, edge_factor: int):
    """The shared rmat20-class input (chunked generation, cached)."""
    from repro.graph.generators import rmat

    return rmat(
        graph_scale, edge_factor, seed=20, edge_batch=1 << 20,
        name=f"rmat{graph_scale}x{edge_factor}",
    )


_SHARD_DIRS: Dict[tuple, Path] = {}


def _shard_dir(graph, num_shards: int, workdir: Path) -> Path:
    """Shard ``graph`` under ``workdir`` once per (graph, shards)."""
    from repro.graph.io_npz import save_graph_sharded

    key = (id(graph), num_shards)
    if key not in _SHARD_DIRS:
        _SHARD_DIRS[key] = save_graph_sharded(
            graph,
            workdir / f"{graph.name}-{num_shards}.shards",
            num_shards=num_shards,
        )
    return _SHARD_DIRS[key]


def _case_params(case: ScaleCase, graph) -> dict:
    if case.algorithm in ("bfs", "sssp"):
        # deterministic non-isolated source, as the paper fixes per graph
        return {"source": int(np.argmax(graph.out_degrees()))}
    if case.algorithm == "pr":
        return {"max_rounds": case.max_rounds or 5}
    return {}


@functools.lru_cache(maxsize=None)
def _warm_up(algorithm: str, num_nodes: int, gpus_per_node: int) -> None:
    """One small untimed run per (algorithm, shape).

    Pays the process-wide one-time costs (imports, comm-cost matrix
    microbenches, solver setup) outside the timed region; the first
    in-core arm would otherwise absorb seconds of warmup and make the
    sharded arm look faster than the storage difference explains.
    """
    import repro
    from repro.graph.generators import rmat
    from repro.hardware.topology import cluster

    graph = rmat(12, 8, seed=1)
    params = (
        {"source": int(np.argmax(graph.out_degrees()))}
        if algorithm in ("bfs", "sssp") else {"max_rounds": 2}
    )
    repro.run(graph, algorithm, engine="gum",
              topology=cluster(num_nodes, gpus_per_node), **params)


def _timed_run(graph, case: ScaleCase, topology, params):
    import repro

    started = time.perf_counter()
    result = repro.run(
        graph, case.algorithm, engine="gum", topology=topology, **params
    )
    return result, time.perf_counter() - started


def run_scale_case(case: ScaleCase, workdir: Path) -> dict:
    """In-core vs sharded run of one case; returns its report entry."""
    from repro.graph.io_npz import open_graph_sharded
    from repro.hardware.topology import cluster

    graph = _scale_graph(case.graph_scale, case.edge_factor)
    shard_path = _shard_dir(graph, case.num_shards, workdir)
    csr_bytes = int(graph.indptr.nbytes + graph.indices.nbytes)
    budget = csr_bytes // MIN_CAPACITY_RATIO
    topology = cluster(case.num_nodes, case.gpus_per_node)
    params = _case_params(case, graph)

    _warm_up(case.algorithm, case.num_nodes, case.gpus_per_node)
    in_core, wall_in_core = _timed_run(graph, case, topology, params)
    sharded_graph = open_graph_sharded(shard_path, resident_bytes=budget)
    sharded, wall_sharded = _timed_run(
        sharded_graph, case, topology, params
    )

    cache = sharded_graph.cache_stats()
    bit_identical = bool(
        np.array_equal(in_core.values, sharded.values)
        and in_core.total_ms == sharded.total_ms
        and in_core.num_iterations == sharded.num_iterations
    )
    inter_node = 0
    if sharded.ledger is not None:
        inter_node = sum(
            int(entry.get("inter_node_stolen_edges", 0))
            for entry in sharded.ledger.entries
        )
    edges = graph.num_edges
    return {
        "algorithm": case.algorithm,
        "nodes": case.num_nodes,
        "gpus_per_node": case.gpus_per_node,
        "num_gpus": case.num_gpus,
        "graph": graph.name,
        "num_edges": edges,
        "num_iterations": in_core.num_iterations,
        "csr_bytes": csr_bytes,
        "resident_budget_bytes": budget,
        "capacity_ratio": csr_bytes / max(1, budget),
        "shards": cache["shards"],
        "peak_resident_bytes": cache["peak_resident_bytes"],
        "shard_loads": cache["loads"],
        "shard_evictions": cache["evictions"],
        "virtual_total_ms": in_core.total_ms,
        "virtual_ms_per_edge": in_core.total_ms / edges,
        "wall_seconds_in_core": wall_in_core,
        "wall_seconds_sharded": wall_sharded,
        "wall_overhead": wall_sharded / max(1e-9, wall_in_core) - 1.0,
        "bit_identical": bit_identical,
        "inter_node_stolen_edges": inter_node,
    }


def run_scale_suite(
    names: Optional[Sequence[str]] = None,
    workdir: Optional[Path] = None,
) -> dict:
    """Run (a filtered subset of) the scale cases; return a report."""
    import tempfile

    selected = [
        case for name, case in sorted(SCALE_CASES.items())
        if not names or any(token in name for token in names)
    ]
    if not selected:
        raise ReproError(
            f"no scale case matches {list(names or [])!r}; "
            f"known: {sorted(SCALE_CASES)}"
        )
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-scale-"))
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    return {
        "schema": SCALE_SCHEMA,
        "cases": {
            case.name: run_scale_case(case, workdir)
            for case in selected
        },
    }


def _case_violations(name: str, entry: dict) -> List[str]:
    """Self-contained gate: the invariants every fresh run must hold."""
    problems = []
    if not entry["bit_identical"]:
        problems.append(
            f"{name}: sharded run is not bit-identical to in-core"
        )
    if entry["peak_resident_bytes"] > entry["resident_budget_bytes"]:
        problems.append(
            f"{name}: peak shard-cache bytes "
            f"{entry['peak_resident_bytes']} exceed the "
            f"{entry['resident_budget_bytes']}-byte budget"
        )
    if entry["capacity_ratio"] < MIN_CAPACITY_RATIO:
        problems.append(
            f"{name}: CSR is only {entry['capacity_ratio']:.1f}x the "
            f"resident budget (need >= {MIN_CAPACITY_RATIO}x)"
        )
    if entry["wall_overhead"] > WALL_OVERHEAD_THRESHOLD:
        problems.append(
            f"{name}: sharded wall-clock ms-per-edge is "
            f"{entry['wall_overhead']:.0%} over in-core "
            f"(threshold {WALL_OVERHEAD_THRESHOLD:.0%})"
        )
    if entry["nodes"] > 1 and entry["inter_node_stolen_edges"] == 0:
        problems.append(
            f"{name}: multi-node run recorded no inter-node stolen "
            "edges; two-level stealing never engaged"
        )
    return problems


def compare_scale_reports(current: dict, baseline: dict) -> List[str]:
    """Violations of ``current`` against invariants and ``baseline``.

    Virtual ms-per-edge is deterministic, so it must match the
    committed baseline to within float-printing noise; wall-clock
    fields are host-local and are gated against *this* run's in-core
    arm, never against the baseline's hardware.
    """
    for report in (current, baseline):
        if report.get("schema") != SCALE_SCHEMA:
            raise ReproError(
                f"unsupported scale report schema {report.get('schema')!r}"
            )
    problems: List[str] = []
    for name, entry in sorted(current["cases"].items()):
        problems.extend(_case_violations(name, entry))
        base = baseline["cases"].get(name)
        if base is None:
            continue
        expected = base["virtual_ms_per_edge"]
        actual = entry["virtual_ms_per_edge"]
        if abs(actual - expected) > VIRTUAL_TOLERANCE * max(
            abs(expected), 1e-30
        ):
            problems.append(
                f"{name}: virtual ms-per-edge {actual!r} deviates from "
                f"the committed baseline {expected!r}"
            )
    return problems


def write_scale_report(report: dict, path) -> None:
    """Write a report as indented JSON (trailing newline included)."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scale_report(path) -> dict:
    """Read a report written by :func:`write_scale_report`."""
    with open(path) as handle:
        return json.load(handle)


def format_scale_report(report: dict) -> str:
    """Human-readable table of one scale report."""
    lines = [
        f"{'case':18s} {'v-ms/Medge':>11s} {'wall ovhd':>10s} "
        f"{'peak/budget':>12s} {'inter-steal':>11s}",
    ]
    for name, entry in sorted(report["cases"].items()):
        peak = entry["peak_resident_bytes"] / max(
            1, entry["resident_budget_bytes"]
        )
        lines.append(
            f"{name:18s} "
            f"{entry['virtual_ms_per_edge'] * 1e6:11.4f} "
            f"{entry['wall_overhead']:>9.1%} "
            f"{peak:>11.0%} "
            f"{entry['inter_node_stolen_edges']:11d}"
        )
    return "\n".join(lines)
