"""Workload preparation for the benchmark harness.

Centralizes everything the experiment scripts share: engine factories,
per-algorithm graph preparation (symmetrize for WCC, weights for SSSP),
deterministic source selection, and partition caching — so every
experiment compares the same inputs across systems, as the paper does.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional

import numpy as np

from repro.algorithms import ALGORITHMS, make_algorithm
from repro.baselines import GrouteEngine, GunrockEngine, PeekStealScheduler
from repro.core import GumConfig, GumEngine
from repro.errors import EngineError
from repro.graph import datasets, symmetrize, with_random_weights
from repro.graph.csr import CSRGraph
from repro.hardware import Topology, dgx1
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition import Partition, make_partition
from repro.runtime import BSPEngine, EngineOptions

__all__ = [
    "prepare_graph",
    "pick_source",
    "cached_partition",
    "make_engine",
    "algorithm_params",
    "ENGINE_NAMES",
]

ENGINE_NAMES = ("gum", "gunrock", "groute")

#: PageRank bounds used across all benchmark tables, mirroring the
#: fixed-iteration PR setup typical of system papers.
PR_PARAMS = {"max_rounds": 30, "tol": 1e-10}


@functools.lru_cache(maxsize=None)
def prepare_graph(abbr: str, algorithm: str) -> CSRGraph:
    """Load a dataset stand-in prepared for one algorithm.

    WCC gets the symmetrized edge set; SSSP gets deterministic integer
    weights in [1, 4]. Results are cached per (graph, algorithm-needs)
    pair so every engine sees the identical object.
    """
    graph = datasets.load(abbr)
    algo = make_algorithm(algorithm)
    if algo.needs_symmetric and graph.directed:
        graph = symmetrize(graph).with_name(abbr)
    if algo.needs_weights and not graph.is_weighted:
        graph = with_random_weights(graph, seed=11).with_name(abbr)
    return graph


@functools.lru_cache(maxsize=None)
def pick_source(abbr: str) -> int:
    """Deterministic traversal source: the max-out-degree vertex.

    Guaranteed non-isolated, same for every engine and GPU count —
    the paper fixes sources per graph for the same reason.
    """
    graph = datasets.load(abbr)
    return int(np.argmax(graph.out_degrees()))


_PARTITION_CACHE: Dict[tuple, Partition] = {}


def cached_partition(
    graph: CSRGraph,
    num_fragments: int,
    partitioner: str = "random",
    seed: int = 0,
) -> Partition:
    """Build (and cache) a partition keyed by graph identity."""
    key = (id(graph), num_fragments, partitioner, seed)
    if key not in _PARTITION_CACHE:
        _PARTITION_CACHE[key] = make_partition(
            partitioner, graph, num_fragments, seed=seed
        )
    return _PARTITION_CACHE[key]


def algorithm_params(algorithm: str, abbr: str) -> dict:
    """Init params for one (algorithm, graph) benchmark cell."""
    if algorithm in ("bfs", "sssp", "dsssp"):
        return {"source": pick_source(abbr)}
    if algorithm == "pr":
        return dict(PR_PARAMS)
    if algorithm not in ALGORITHMS:
        raise EngineError(f"unknown algorithm {algorithm!r}")
    return {}


def make_engine(
    name: str,
    num_gpus: int = 8,
    gum_config: Optional[GumConfig] = None,
    options: Optional[EngineOptions] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    chaos=None,
    topology: Optional[Topology] = None,
):
    """Engine factory for the benchmark matrix.

    Names: ``gum``, ``gunrock``, ``groute``, plus the ablation arms
    ``gum-nosteal`` (GUM plumbing, stealing off) and ``bsp`` (plain
    static BSP engine without any Gunrock algorithm tricks). A tracer
    and/or metrics registry attaches to any of them; a
    :class:`~repro.chaos.ChaosController` attaches to every BSP-based
    engine (Groute's asynchronous runtime has no superstep boundary to
    inject at, so it rejects chaos). An explicit ``topology`` (e.g. a
    :func:`repro.hardware.cluster` preset) replaces the default
    ``num_gpus``-GPU DGX-1 sub-topology; its GPU count must equal
    ``num_gpus`` since the partition is built for that many workers.
    """
    if topology is None:
        topology = dgx1(num_gpus)
    elif topology.num_gpus != num_gpus:
        raise EngineError(
            f"topology {topology.name!r} carries {topology.num_gpus} "
            f"GPUs but the benchmark cell asks for {num_gpus}"
        )
    obs = {"tracer": tracer, "metrics": metrics}
    if chaos is not None:
        if name == "groute":
            raise EngineError(
                "fault injection requires a BSP-style engine; "
                "groute's asynchronous runtime is not supported"
            )
        obs["chaos"] = chaos
    if name == "gum":
        return GumEngine(topology, config=gum_config, options=options,
                         **obs)
    if name == "gum-nosteal":
        config = gum_config or GumConfig()
        config = GumConfig(
            fsteal=False, osteal=False, hub_cache=False,
            cost_model="uniform", solver=config.solver,
        )
        return GumEngine(topology, config=config, options=options, **obs)
    if name == "gunrock":
        return GunrockEngine(topology, options=options, **obs)
    if name == "groute":
        if options is not None and options.backend != "serial":
            raise EngineError(
                "execution backends require a BSP-style engine; "
                "groute's asynchronous runtime is not supported"
            )
        return GrouteEngine(topology, **obs)
    if name == "bsp":
        return BSPEngine(topology, options=options, name="bsp", **obs)
    if name == "peeksteal":
        return BSPEngine(
            topology, scheduler=PeekStealScheduler(), options=options,
            name="peeksteal", **obs,
        )
    raise EngineError(
        f"unknown engine {name!r}; known: "
        f"{ENGINE_NAMES + ('gum-nosteal', 'bsp', 'peeksteal')}"
    )
