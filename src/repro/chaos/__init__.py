"""Deterministic fault injection for the simulated multi-GPU runtime.

Public surface:

* :class:`~repro.chaos.scenario.ChaosScenario` /
  :class:`~repro.chaos.scenario.FaultSpec` — the versioned JSON fault
  schedule (``repro-chaos/1``).
* :class:`~repro.chaos.controller.ChaosController` — replays a
  scenario against a run: kills workers, degrades links, injects
  solver timeouts and flaky transfers, all as pure functions of the
  scenario seed.
* :class:`~repro.chaos.fallback.FallbackSolver` — the
  HiGHS -> LP -> greedy degradation chain.

See ``docs/robustness.md`` for the fault model and
``examples/chaos_drill.py`` for an end-to-end walkthrough.
"""

from repro.chaos.controller import ChaosController, FaultEvent
from repro.chaos.fallback import FallbackSolver
from repro.chaos.scenario import (
    ChaosScenario,
    FAULT_KINDS,
    FaultSpec,
    SCHEMA_VERSION,
)

__all__ = [
    "ChaosScenario",
    "FaultSpec",
    "FaultEvent",
    "ChaosController",
    "FallbackSolver",
    "SCHEMA_VERSION",
    "FAULT_KINDS",
]
