"""The fault-injection controller: deterministic chaos at run time.

A :class:`ChaosController` owns one
:class:`~repro.chaos.scenario.ChaosScenario` and answers the runtime's
questions each iteration: *who is alive*, *how slow is worker j*,
*what does the interconnect look like now*, *did this steal transfer
fail*, *does this solve time out*. Every answer is a pure function of
``(scenario seed, iteration, operands)`` — two runs of the same
scenario produce bit-identical virtual times, which is what makes
chaos runs diffable in the run registry.

The controller never touches algorithm state: like the scheduler, it
can make a run *slow*, never *wrong*. With no faults scheduled it
returns identity answers along paths the engine only takes when a
fault is active, so attaching an empty controller leaves virtual times
bit-identical to a run without the chaos layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.chaos.scenario import ChaosScenario, FaultSpec
from repro.errors import DegradedModeError, FaultInjectionError
from repro.hardware.topology import Topology

__all__ = ["FaultEvent", "ChaosController"]

#: Fixed backoff unit for retried steal transfers (seconds); retry ``k``
#: waits ``2**k`` of these before retransmitting.
RETRY_BACKOFF_SECONDS = 5e-5

#: Modeled decision-time cost of one solver timeout (the abandoned
#: solve's budget, charged before the fallback backend runs).
SOLVER_TIMEOUT_SECONDS = 2e-3


@dataclass(frozen=True)
class FaultEvent:
    """One fault firing at a specific iteration.

    ``detail`` carries derived facts the runtime needs beyond the spec
    (the heir of a killed worker, the recomputed bandwidth of a
    degraded pair) and is what lands in traces and the run summary.
    """

    kind: str
    iteration: int
    spec: FaultSpec
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view for traces and ``result_summary``."""
        payload: Dict[str, object] = {
            "kind": self.kind, "iteration": self.iteration,
        }
        payload.update({k: v for k, v in self.spec.params.items()
                        if v is not None})
        payload.update(self.detail)
        return payload


class ChaosController:
    """Per-run fault scheduler and degraded-machine bookkeeping.

    Construct once per scenario; :meth:`begin_run` resets all mutable
    state, so one controller can drive many runs (each run replays the
    same deterministic schedule).
    """

    def __init__(self, scenario: Optional[ChaosScenario] = None) -> None:
        self._scenario = scenario or ChaosScenario()
        self._topology: Optional[Topology] = None
        self._base_topology: Optional[Topology] = None
        self.reset()

    # ------------------------------------------------------------------
    @property
    def scenario(self) -> ChaosScenario:
        """The fault schedule this controller replays."""
        return self._scenario

    @property
    def topology(self) -> Topology:
        """The machine as currently degraded."""
        if self._topology is None:
            raise FaultInjectionError(
                "controller used before begin_run"
            )
        return self._topology

    @property
    def topology_changed(self) -> bool:
        """True once any link fault has altered the interconnect."""
        return self._topology is not self._base_topology

    @property
    def dead_workers(self) -> Set[int]:
        """Workers killed so far (monotone within a run)."""
        return set(self._dead)

    def is_alive(self, worker: int) -> bool:
        """False once ``worker`` has been killed."""
        return worker not in self._dead

    def alive_workers(self) -> List[int]:
        """Sorted surviving worker ids."""
        if self._base_topology is None:
            raise FaultInjectionError("controller used before begin_run")
        return [w for w in range(self._base_topology.num_gpus)
                if w not in self._dead]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all per-run state (called by :meth:`begin_run`)."""
        self._dead: Set[int] = set()
        self._fired: Set[int] = set()  # indices into scenario.faults
        self._timeout_tokens: List[Dict[str, object]] = []
        self._iteration = -1
        self._topology = self._base_topology
        self._counters: Dict[str, int] = {
            "faults_injected": 0,
            "evictions": 0,
            "links_degraded": 0,
            "slowdowns": 0,
            "solver_timeouts": 0,
            "solver_fallbacks": 0,
            "transfer_retries": 0,
            "transfer_giveups": 0,
        }
        self._events: List[FaultEvent] = []
        self._new_timeout_charges = 0

    def begin_run(self, topology: Topology) -> None:
        """Bind to a machine and reset the schedule for a fresh run."""
        self._scenario.validate_for(topology.num_gpus)
        self._base_topology = topology
        self.reset()

    # ------------------------------------------------------------------
    def advance(self, iteration: int) -> List[FaultEvent]:
        """Fire every fault scheduled at or before ``iteration``.

        Returns the newly fired events (empty almost always). One-shot
        faults (kill, link degradation) mutate controller state here;
        windowed faults (slowdown, flaky transfers) merely activate —
        their effect is queried per iteration.
        """
        self._iteration = iteration
        events: List[FaultEvent] = []
        for index, fault in enumerate(self._scenario.faults):
            if index in self._fired or fault.at_iteration > iteration:
                continue
            self._fired.add(index)
            events.append(self._fire(fault, iteration))
        if events:
            self._counters["faults_injected"] += len(events)
            self._events.extend(events)
        return events

    def _fire(self, fault: FaultSpec, iteration: int) -> FaultEvent:
        detail: Dict[str, object] = {}
        if fault.kind == "kill_worker":
            worker = int(fault.params["worker"])
            if worker not in self._dead:
                self._dead.add(worker)
                if not self.alive_workers():
                    raise DegradedModeError(
                        "chaos scenario killed every worker; no survivor "
                        "can absorb the workload"
                    )
                detail["heir"] = self.heir_of(worker)
        elif fault.kind == "degrade_link":
            a, b = int(fault.params["a"]), int(fault.params["b"])
            lanes = int(fault.params["lanes"])
            self._topology = self.topology.with_degraded_link(a, b, lanes)
            self._counters["links_degraded"] += 1
            detail["effective_gbps"] = float(
                self._topology.effective_bandwidth(a, b)
            )
        elif fault.kind == "slow_worker":
            self._counters["slowdowns"] += 1
        elif fault.kind == "solver_timeout":
            self._timeout_tokens.append({
                "remaining": int(fault.params["count"]),
                "solver": fault.params["solver"],
            })
        # flaky_transfers needs no activation state: its window is
        # re-derived from the spec on every query
        return FaultEvent(kind=fault.kind, iteration=iteration,
                          spec=fault, detail=detail)

    # ------------------------------------------------------------------
    def heir_of(self, dead_worker: int) -> int:
        """Survivor that inherits a dead worker's fragments.

        The alive worker with the highest effective bandwidth to the
        dead GPU's memory (its data stays readable), lowest id on ties
        — the same widest-link preference the OSteal reduction tree
        folds along.
        """
        survivors = self.alive_workers()
        if not survivors:
            raise DegradedModeError("no surviving worker to inherit")
        eff = self.topology.effective_bandwidth_matrix()
        return max(survivors,
                   key=lambda w: (eff[dead_worker, w], -w))

    def compute_scale(self, iteration: int) -> Optional[np.ndarray]:
        """Per-worker compute-time factors, or ``None`` when all are 1.

        Returning ``None`` on the common path lets the engine skip the
        multiply entirely, keeping fault-free iterations bit-identical.
        """
        scale: Optional[np.ndarray] = None
        for fault in self._scenario.faults:
            if fault.kind != "slow_worker":
                continue
            if not self._window_active(fault, iteration):
                continue
            if scale is None:
                scale = np.ones(self.topology.num_gpus)
            scale[int(fault.params["worker"])] *= float(
                fault.params["factor"]
            )
        return scale

    @staticmethod
    def _window_active(fault: FaultSpec, iteration: int) -> bool:
        if iteration < fault.at_iteration:
            return False
        duration = fault.duration
        return duration is None or iteration < fault.at_iteration + duration

    # ------------------------------------------------------------------
    def flaky_active(self, iteration: int) -> bool:
        """True when any flaky-transfers window covers ``iteration``.

        Lets the engine skip the per-chunk retry draw entirely on
        iterations without an active fault.
        """
        return any(
            fault.kind == "flaky_transfers"
            and self._window_active(fault, iteration)
            for fault in self._scenario.faults
        )

    def failed_transfer_attempts(
        self, iteration: int, owner: int, worker: int
    ) -> int:
        """Failed attempts before this steal transfer succeeds (0..cap).

        Deterministic in ``(seed, iteration, owner, worker)``: the same
        scenario replays the same failures. Capped at the fault's
        ``max_retries``; hitting the cap counts as a give-up (the
        transfer is completed by the final attempt regardless, so
        chaos cannot corrupt algorithm state — only charge time).
        """
        fails = 0
        for fault in self._scenario.faults:
            if fault.kind != "flaky_transfers":
                continue
            if not self._window_active(fault, iteration):
                continue
            rate = float(fault.params["rate"])
            cap = int(fault.params["max_retries"])
            rng = np.random.default_rng(
                [self._scenario.seed, iteration, owner, worker]
            )
            attempt_fails = 0
            while attempt_fails < cap and rng.random() < rate:
                attempt_fails += 1
            if attempt_fails >= cap:
                self._counters["transfer_giveups"] += 1
            self._counters["transfer_retries"] += attempt_fails
            fails = max(fails, attempt_fails)
        return fails

    def failed_transfer_attempts_batch(
        self, iteration: int, owners: np.ndarray, workers: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`failed_transfer_attempts` over chunk arrays.

        Bit-identical to calling the scalar method once per chunk, in
        draws and in counters: the seeded generator for a given
        ``(iteration, owner, worker)`` produces the same stream whether
        drawn one float at a time or as a batch, so attempts are
        evaluated once per *distinct* (owner, worker) pair and
        broadcast back to chunks; counters accumulate per chunk, as
        before, via the pair multiplicities.
        """
        owners = np.asarray(owners, dtype=np.int64)
        workers = np.asarray(workers, dtype=np.int64)
        fails = np.zeros(owners.shape, dtype=np.int64)
        if owners.size == 0:
            return fails
        pairs = np.stack([owners, workers], axis=1)
        unique_pairs, inverse = np.unique(
            pairs, axis=0, return_inverse=True
        )
        inverse = inverse.ravel()
        for fault in self._scenario.faults:
            if fault.kind != "flaky_transfers":
                continue
            if not self._window_active(fault, iteration):
                continue
            rate = float(fault.params["rate"])
            cap = int(fault.params["max_retries"])
            pair_fails = np.empty(len(unique_pairs), dtype=np.int64)
            for row, (owner, worker) in enumerate(unique_pairs.tolist()):
                draws = np.random.default_rng(
                    [self._scenario.seed, iteration, owner, worker]
                ).random(cap)
                passed = np.flatnonzero(draws >= rate)
                pair_fails[row] = passed[0] if passed.size else cap
            chunk_fails = pair_fails[inverse]
            self._counters["transfer_giveups"] += int(
                np.count_nonzero(chunk_fails >= cap)
            )
            self._counters["transfer_retries"] += int(chunk_fails.sum())
            np.maximum(fails, chunk_fails, out=fails)
        return fails

    @staticmethod
    def retry_seconds(transfer_seconds: float, fails: int) -> float:
        """Modeled cost of ``fails`` failed attempts of one transfer.

        Each failed attempt retransmits the payload and then backs off
        exponentially before the next try.
        """
        if fails <= 0:
            return 0.0
        backoff = RETRY_BACKOFF_SECONDS * (2.0 ** fails - 1.0)
        return fails * transfer_seconds + backoff

    @staticmethod
    def retry_seconds_batch(
        transfer_seconds: np.ndarray, fails: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`retry_seconds` (same IEEE operations)."""
        fails = np.asarray(fails, dtype=np.float64)
        backoff = RETRY_BACKOFF_SECONDS * (2.0 ** fails - 1.0)
        return np.where(
            fails > 0,
            fails * np.asarray(transfer_seconds, dtype=np.float64)
            + backoff,
            0.0,
        )

    # ------------------------------------------------------------------
    def solver_times_out(self, solver_name: str) -> bool:
        """Consume one timeout token matching ``solver_name``, if any."""
        for token in self._timeout_tokens:
            if token["remaining"] <= 0:
                continue
            wanted = token["solver"]
            if wanted is not None and wanted != solver_name:
                continue
            token["remaining"] = int(token["remaining"]) - 1
            self._counters["solver_timeouts"] += 1
            self._new_timeout_charges += 1
            return True
        return False

    def note_solver_fallback(self) -> None:
        """Record that a fallback backend had to take over a solve."""
        self._counters["solver_fallbacks"] += 1

    def drain_timeout_charges(self) -> int:
        """Timeouts since the last drain (for modeled-overhead billing)."""
        charges = self._new_timeout_charges
        self._new_timeout_charges = 0
        return charges

    def note_evictions(self, count: int) -> None:
        """Record fragments whose ownership moved off a dead worker."""
        self._counters["evictions"] += int(count)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Run-level chaos summary (lands in ``result_summary['chaos']``)."""
        payload: Dict[str, object] = {
            "enabled": True,
            "scenario": self._scenario.name,
            "seed": self._scenario.seed,
            "workers_killed": sorted(self._dead),
            "events": [event.as_dict() for event in self._events],
        }
        payload.update({key: int(value)
                        for key, value in self._counters.items()})
        return payload
