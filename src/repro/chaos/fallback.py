"""Solver fallback chain: HiGHS -> LP -> greedy under fault injection.

Wraps the configured FSteal backend so a solver timeout (injected by a
:class:`~repro.chaos.controller.ChaosController`) or a genuine
:class:`~repro.errors.SolverError` degrades to the next cheaper
backend instead of aborting the run. :class:`~repro.errors.SolverError`
is surfaced only when every backend in the chain has failed.

The wrapper is only installed when a chaos controller is attached to
the run; fault-free runs keep calling the configured solver directly,
so their virtual times stay bit-identical.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.chaos.controller import ChaosController
from repro.core.milp import (
    FStealProblem,
    FStealSolution,
    FStealSolver,
    make_solver,
)
from repro.errors import SolverError

__all__ = ["FallbackSolver", "FALLBACK_CHAIN"]

#: Backends appended after the primary, cheapest last. The greedy
#: heuristic needs no LP machinery at all, so the chain always has a
#: backend that cannot time out in practice.
FALLBACK_CHAIN = ("lp", "greedy")


class FallbackSolver(FStealSolver):
    """Try the primary backend, then each fallback, in order.

    A backend is skipped when the chaos controller injects a timeout
    for it (``solver_times_out``) or when its ``solve`` raises
    :class:`SolverError`. The first backend to return wins; its
    solution is passed through untouched, so the reported solver name
    identifies who actually solved the instance.
    """

    def __init__(
        self,
        primary: FStealSolver,
        controller: Optional[ChaosController] = None,
        fallbacks: Optional[List[FStealSolver]] = None,
    ) -> None:
        self.name = primary.name
        self._controller = controller
        chain: List[FStealSolver] = [primary]
        if fallbacks is None:
            fallbacks = [make_solver(name) for name in FALLBACK_CHAIN
                         if name != primary.name]
        for solver in fallbacks:
            if all(solver.name != existing.name for existing in chain):
                chain.append(solver)
        self._chain = chain

    @property
    def chain(self) -> List[FStealSolver]:
        """The backends in fallback order (primary first)."""
        return list(self._chain)

    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return the first backend's feasible solution."""
        failures: List[str] = []
        for position, backend in enumerate(self._chain):
            if (self._controller is not None
                    and self._controller.solver_times_out(backend.name)):
                failures.append(f"{backend.name}: injected timeout")
                if position + 1 < len(self._chain):
                    self._controller.note_solver_fallback()
                continue
            try:
                return backend.solve(problem, warm_start=warm_start)
            except SolverError as exc:
                failures.append(f"{backend.name}: {exc}")
                if (self._controller is not None
                        and position + 1 < len(self._chain)):
                    self._controller.note_solver_fallback()
        raise SolverError(
            "all solver backends failed: " + "; ".join(failures)
        )
