"""Chaos scenarios: a declarative, versioned fault schedule.

A :class:`ChaosScenario` is a JSON-serializable list of
:class:`FaultSpec` entries, each firing at a virtual iteration of a
run. The schema is deliberately small and strict — a typo in a
scenario file raises :class:`~repro.errors.FaultInjectionError` at
load time, never mid-run.

Schema (``schema: "repro-chaos/1"``)::

    {
      "schema": "repro-chaos/1",
      "name": "kill-worker",
      "description": "GPU 2 dies at iteration 3",
      "seed": 0,
      "faults": [
        {"kind": "kill_worker",    "at_iteration": 3, "worker": 2},
        {"kind": "slow_worker",    "at_iteration": 1, "worker": 1,
         "factor": 2.5, "duration": 10},
        {"kind": "degrade_link",   "at_iteration": 2, "a": 0, "b": 3,
         "lanes": 1},
        {"kind": "flaky_transfers","at_iteration": 0, "duration": 50,
         "rate": 0.3, "max_retries": 3},
        {"kind": "solver_timeout", "at_iteration": 4, "count": 2,
         "solver": null}
      ]
    }

Fault kinds
-----------
``kill_worker``
    GPU ``worker`` stops computing at ``at_iteration`` and never
    returns. Its memory stays readable (an XID-style compute fault):
    the fragment it homes is still priced over the interconnect, but
    the device leaves the synchronization group and its owned
    fragments are re-assigned to an heir.
``slow_worker``
    Scale GPU ``worker``'s compute time by ``factor`` for ``duration``
    iterations (``duration`` omitted or ``null`` = until the run ends).
``degrade_link``
    Replace the direct NVLink ``a``-``b`` with ``lanes`` lanes
    (``0`` = lost link). The machine topology is re-derived and the
    effective-bandwidth matrix recomputed, so multi-hop steal paths
    reroute.
``flaky_transfers``
    For ``duration`` iterations, every stolen-chunk status migration
    fails independently with probability ``rate`` per attempt; failed
    attempts are retried with exponential backoff up to
    ``max_retries`` times, every attempt charged into modeled time.
``solver_timeout``
    The next ``count`` FSteal solves by ``solver`` (or by whichever
    backend is primary when ``solver`` is null) time out, exercising
    the HiGHS -> LP -> greedy fallback chain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import FaultInjectionError

__all__ = ["FaultSpec", "ChaosScenario", "SCHEMA_VERSION", "FAULT_KINDS"]

SCHEMA_VERSION = "repro-chaos/1"

#: kind -> (required fields, optional fields with defaults)
FAULT_KINDS: Dict[str, tuple] = {
    "kill_worker": (("worker",), {}),
    "slow_worker": (("worker", "factor"), {"duration": None}),
    "degrade_link": (("a", "b"), {"lanes": 0}),
    "flaky_transfers": ((), {"duration": None, "rate": 0.5,
                             "max_retries": 3}),
    "solver_timeout": ((), {"count": 1, "solver": None}),
}

_COMMON_FIELDS = ("kind", "at_iteration")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (see the module docstring for semantics)."""

    kind: str
    at_iteration: int
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require(self.kind in FAULT_KINDS,
                 f"unknown fault kind {self.kind!r}; known: "
                 f"{sorted(FAULT_KINDS)}")
        _require(
            isinstance(self.at_iteration, int) and self.at_iteration >= 0,
            f"{self.kind}: at_iteration must be a nonnegative integer, "
            f"got {self.at_iteration!r}",
        )
        required, optional = FAULT_KINDS[self.kind]
        unknown = set(self.params) - set(required) - set(optional)
        _require(not unknown,
                 f"{self.kind}: unknown field(s) {sorted(unknown)}")
        missing = set(required) - set(self.params)
        _require(not missing,
                 f"{self.kind}: missing required field(s) "
                 f"{sorted(missing)}")
        params = dict(optional)
        params.update(self.params)
        object.__setattr__(self, "params", params)
        self._check_values()

    def _check_values(self) -> None:
        p = self.params
        if self.kind in ("kill_worker", "slow_worker"):
            _require(isinstance(p["worker"], int) and p["worker"] >= 0,
                     f"{self.kind}: worker must be a nonnegative integer")
        if self.kind == "slow_worker":
            _require(isinstance(p["factor"], (int, float))
                     and p["factor"] > 0,
                     "slow_worker: factor must be a positive number")
        if self.kind == "degrade_link":
            _require(isinstance(p["a"], int) and isinstance(p["b"], int)
                     and p["a"] >= 0 and p["b"] >= 0,
                     "degrade_link: a and b must be nonnegative integers")
            _require(p["a"] != p["b"],
                     "degrade_link: a and b must differ")
            _require(isinstance(p["lanes"], int) and p["lanes"] >= 0,
                     "degrade_link: lanes must be a nonnegative integer")
        if self.kind == "flaky_transfers":
            _require(isinstance(p["rate"], (int, float))
                     and 0.0 <= p["rate"] < 1.0,
                     "flaky_transfers: rate must be in [0, 1)")
            _require(isinstance(p["max_retries"], int)
                     and p["max_retries"] >= 1,
                     "flaky_transfers: max_retries must be >= 1")
        if self.kind == "solver_timeout":
            _require(isinstance(p["count"], int) and p["count"] >= 1,
                     "solver_timeout: count must be >= 1")
            _require(p["solver"] is None or isinstance(p["solver"], str),
                     "solver_timeout: solver must be a string or null")
        for key in ("duration",):
            if key in p and p[key] is not None:
                _require(isinstance(p[key], int) and p[key] >= 1,
                         f"{self.kind}: {key} must be >= 1 or null")

    @property
    def duration(self) -> Optional[int]:
        """Active-iteration count, ``None`` for open-ended faults."""
        return self.params.get("duration")

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (round-trips through ``from_dict``)."""
        payload: Dict[str, object] = {
            "kind": self.kind, "at_iteration": self.at_iteration,
        }
        payload.update(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Parse one fault entry, validating its schema."""
        _require(isinstance(payload, dict),
                 f"fault entry must be an object, got {type(payload).__name__}")
        _require("kind" in payload, "fault entry missing 'kind'")
        _require("at_iteration" in payload,
                 f"{payload.get('kind')}: missing 'at_iteration'")
        params = {key: value for key, value in payload.items()
                  if key not in _COMMON_FIELDS}
        return cls(kind=str(payload["kind"]),
                   at_iteration=payload["at_iteration"],
                   params=params)


@dataclass(frozen=True)
class ChaosScenario:
    """A named, seeded schedule of faults."""

    faults: Sequence[FaultSpec] = ()
    name: str = "scenario"
    description: str = ""
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        _require(isinstance(self.seed, int),
                 f"seed must be an integer, got {self.seed!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def validate_for(self, num_gpus: int) -> None:
        """Reject faults referencing devices this machine lacks."""
        for fault in self.faults:
            p = fault.params
            for key in ("worker", "a", "b"):
                if key in p and not 0 <= int(p[key]) < num_gpus:
                    raise FaultInjectionError(
                        f"{fault.kind}: {key}={p[key]} out of range for "
                        f"a {num_gpus}-GPU machine"
                    )
        kills = [f.params["worker"] for f in self.faults
                 if f.kind == "kill_worker"]
        if len(set(kills)) >= num_gpus:
            raise FaultInjectionError(
                f"scenario kills all {num_gpus} workers; at least one "
                "must survive"
            )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (round-trips through ``from_dict``)."""
        return {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "faults": [fault.as_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChaosScenario":
        """Parse and validate a scenario object."""
        _require(isinstance(payload, dict),
                 "scenario must be a JSON object")
        schema = payload.get("schema", SCHEMA_VERSION)
        _require(schema == SCHEMA_VERSION,
                 f"unsupported scenario schema {schema!r} "
                 f"(expected {SCHEMA_VERSION!r})")
        unknown = set(payload) - {"schema", "name", "description",
                                  "seed", "faults"}
        _require(not unknown,
                 f"scenario has unknown field(s) {sorted(unknown)}")
        faults = payload.get("faults", [])
        _require(isinstance(faults, list),
                 "scenario 'faults' must be a list")
        seed = payload.get("seed", 0)
        _require(isinstance(seed, int), "scenario seed must be an integer")
        return cls(
            faults=[FaultSpec.from_dict(entry) for entry in faults],
            name=str(payload.get("name", "scenario")),
            description=str(payload.get("description", "")),
            seed=seed,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ChaosScenario":
        """Load a scenario JSON file; schema errors name the file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise FaultInjectionError(
                f"cannot read chaos scenario {path}: {exc}"
            ) from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"chaos scenario {path} is not valid JSON: {exc}"
            ) from exc
        try:
            scenario = cls.from_dict(payload)
        except FaultInjectionError as exc:
            raise FaultInjectionError(f"{path}: {exc}") from exc
        if scenario.name == "scenario":
            scenario = ChaosScenario(
                faults=scenario.faults, name=path.stem,
                description=scenario.description, seed=scenario.seed,
            )
        return scenario
