"""Command-line interface: run experiments without writing Python.

Examples::

    python -m repro datasets
    python -m repro topology --gpus 8
    python -m repro run --graph LJ --algorithm bfs --engine gum
    python -m repro run --graph USA --algorithm sssp --engine gum \
        --gpus 4 --partitioner metis --no-osteal --json
    python -m repro compare --graph TX --algorithm sssp
    python -m repro profile --graph LJ --algorithm bfs --engine gum \
        --out run.trace.json
    python -m repro run --graph TX --algorithm bfs --record
    python -m repro runs list
    python -m repro runs analyze latest --scale-gpu 0=0.5
    python -m repro runs diff benchmarks/reference/tx-bfs-4gpu latest
    python -m repro explain latest --iteration 3
    python -m repro run --graph TX --algorithm bfs --stream live.jsonl
    python -m repro top --stream live.jsonl
    python -m repro top benchmarks/reference/tx-bfs-4gpu --no-ansi
    python -m repro slo check benchmarks/reference/tx-bfs-4gpu \
        --rules benchmarks/slo/reference.yaml
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro import __version__
from repro.algorithms import ALGORITHMS
from repro.bench import Cell, run_cell
from repro.bench.workloads import ENGINE_NAMES
from repro.core import GumConfig, pretrained_default
from repro.errors import ReproError
from repro.graph import datasets
from repro.graph.properties import degree_summary, pseudo_diameter
from repro.hardware import dgx1
from repro.obs import (
    ChromeTraceSink,
    JsonlSink,
    MetricsRegistry,
    Tracer,
)
from repro.backend import BACKEND_NAMES
from repro.partition.partitioners import PARTITIONERS
from repro.runtime import EngineOptions, RunResult
from repro.runtime.trace import render_timeline, utilization_report

__all__ = ["main", "build_parser", "result_summary"]


def result_summary(result: RunResult) -> dict:
    """JSON-friendly summary of a run (used by ``--json``)."""
    from repro.obs.metrics import quantile
    from repro.obs.slo import slo_indicators

    group_sizes = result.group_size_series()
    wall_ms = [rec.wall_seconds * 1e3 for rec in result.iterations]
    summary = {
        "engine": result.engine,
        "algorithm": result.algorithm,
        "graph": result.graph_name,
        "num_gpus": result.num_gpus,
        "total_ms": result.total_ms,
        "iterations": result.num_iterations,
        "converged": result.converged,
        "stall_fraction": result.stall_fraction(),
        "breakdown_ms": result.breakdown.scaled_ms(),
        "stolen_edges": int(
            sum(r.stolen_edges for r in result.iterations)
        ),
        "min_group_size": (
            min(group_sizes) if result.iterations else result.num_gpus
        ),
        "real_decision_ms": result.real_decision_seconds * 1e3,
        "fsteal_iterations": int(
            sum(1 for r in result.iterations if r.fsteal_applied)
        ),
        "mean_group_size": (
            float(np.mean(group_sizes))
            if result.iterations else float(result.num_gpus)
        ),
        "per_gpu_utilization": utilization_report(
            result
        )["per_gpu_utilization"],
        "decision_cache": dict(result.decision_stats),
        # virtual per-iteration latency distribution (deterministic)
        "iteration_ms": {
            "p50": quantile(wall_ms, 0.50),
            "p90": quantile(wall_ms, 0.90),
            "p99": quantile(wall_ms, 0.99),
            "max": max(wall_ms) if wall_ms else None,
        },
        # host clock: what fraction of run() wall time was spent inside
        # span/metric emission (None for runs recorded before
        # self-measurement existed)
        "obs_overhead_pct": result.obs_overhead_pct(),
    } | ({"chaos": dict(result.chaos)} if result.chaos else {}) \
        | ({"backend": dict(result.backend_stats)}
           if result.backend_stats else {})
    ledger = getattr(result, "ledger", None)
    if ledger is not None:
        # prediction-audit rollup (entry/sample counts, final RMSRE,
        # drift, cache mix) — the SLO indicators below read it
        summary["ledger"] = ledger.summary()
    summary["slo"] = slo_indicators(summary, result.timeseries())
    return summary


def _chaos_from_args(args: argparse.Namespace):
    """Build a fresh fault controller from ``--chaos`` (else None).

    Fresh per call so each engine of a ``compare`` replays the same
    scenario from a clean schedule.
    """
    path = getattr(args, "chaos", None)
    if not path:
        return None
    from repro.chaos import ChaosController, ChaosScenario

    return ChaosController(ChaosScenario.from_file(path))


def _gum_config_from_args(args: argparse.Namespace) -> GumConfig:
    return GumConfig(
        fsteal=not args.no_fsteal,
        osteal=not args.no_osteal,
        hub_cache=not args.no_hub_cache,
        solver=args.solver,
        cost_model=args.cost_model,
        amortize=not args.no_amortize,
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'abbr':5s} {'original':18s} {'domain':6s} "
          f"{'|V|':>8s} {'|E|':>9s} {'diam~':>6s} {'gini':>5s}")
    for abbr, spec in datasets.DATASETS.items():
        if args.domain and spec.domain != args.domain:
            continue
        graph = datasets.load(abbr)
        summary = degree_summary(graph)
        print(f"{abbr:5s} {spec.original_name:18s} {spec.domain:6s} "
              f"{graph.num_vertices:8d} {graph.num_edges:9d} "
              f"{pseudo_diameter(graph):6d} {summary.gini:5.2f}")
    return 0


def _cmd_calibration(args: argparse.Namespace) -> int:
    from repro.bench.calibration import format_calibration

    print(format_calibration(dgx1(args.gpus)))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    topology = dgx1(args.gpus)
    np.set_printoptions(precision=1, suppress=True, linewidth=120)
    print(f"{topology!r}")
    print("NVLink lanes:")
    print(topology.lane_matrix)
    print("effective bandwidth (GB/s):")
    print(topology.effective_bandwidth_matrix())
    ring = topology.find_ring()
    print(f"NVLink ring: {ring if ring else 'none (odd sub-topology)'}")
    return 0


def _trace_meta(args: argparse.Namespace, engine: str) -> dict:
    return {
        "engine": engine,
        "algorithm": args.algorithm,
        "graph": args.graph,
        "num_gpus": args.gpus,
        "partitioner": args.partitioner,
    }


def _trace_path(path: str) -> str:
    """Fail fast on an unwritable trace path.

    ``ChromeTraceSink`` buffers and only writes on close; without this
    check a missing parent directory would crash *after* the whole run
    and lose it.
    """
    try:
        Path(path).parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        # e.g. a parent component that exists as a regular file: make
        # it a one-line ReproError (exit 2), not a traceback
        raise ReproError(f"cannot create trace path {path}: {exc}") from exc
    return path


def _make_observers(
    args: argparse.Namespace,
    engine: str,
    trace_path: Optional[str],
    stream_target: Optional[str] = None,
) -> Tuple[Optional[Tracer], Optional[MetricsRegistry]]:
    """Observers requested by ``--trace``/``--stream``/``--metrics``.

    A ``.jsonl`` trace path streams raw span records; any other suffix
    writes Chrome ``trace_event`` JSON for Perfetto / chrome://tracing.
    ``--stream`` attaches a live :class:`StreamingSink` (path,
    ``fd://N``, or ``unix://PATH``) that emits span events as the
    engine iterates, with periodic metrics snapshots. ``--prom``
    implies a metrics registry so there is a snapshot to render.
    """
    from repro.obs.live import StreamingSink

    meta = _trace_meta(args, engine)
    wants_metrics = (
        getattr(args, "metrics", False)
        or getattr(args, "prom", None)
        or stream_target
    )
    metrics = MetricsRegistry() if wants_metrics else None
    sinks = []
    if trace_path:
        trace_path = _trace_path(trace_path)
        sinks.append(
            JsonlSink(trace_path, meta=meta)
            if trace_path.endswith(".jsonl")
            else ChromeTraceSink(trace_path, meta=meta)
        )
    if stream_target:
        sinks.append(StreamingSink(
            stream_target,
            meta=meta,
            metrics=metrics,
            snapshot_every=getattr(args, "stream_every", 10),
        ))
    tracer = Tracer(sinks=sinks, meta=meta) if sinks else None
    return tracer, metrics


def _stream_target(args: argparse.Namespace) -> Optional[str]:
    return getattr(args, "stream", None)


def _maybe_prom(
    args: argparse.Namespace, metrics: Optional[MetricsRegistry]
) -> Optional[str]:
    """Write the Prometheus snapshot when ``--prom`` was given."""
    path = getattr(args, "prom", None)
    if not path or metrics is None:
        return None
    from repro.obs.prom import write_prom

    write_prom(path, metrics.snapshot())
    return path


def _registry_from_args(args: argparse.Namespace):
    """Registry at ``--runs-dir``, ``$REPRO_RUNS_DIR``, or the default."""
    from repro.runs import RunRegistry

    root = (getattr(args, "runs_dir", None)
            or os.environ.get("REPRO_RUNS_DIR"))
    return RunRegistry(root)


def _cost_model_label(spec: str) -> str:
    """Workload-fingerprint label of a ``--cost-model`` operand.

    Artifact paths fingerprint as their content-addressed
    ``artifact:<family>@<digest>`` label, so the same fitted model
    recorded from two checkouts stays comparable.
    """
    if spec in ("default", "oracle", "uniform"):
        return spec
    from repro.core.costmodel_v2 import load_artifact

    return load_artifact(spec).artifact_label


def _workload_from_args(args: argparse.Namespace, engine: str) -> dict:
    from repro.runs import workload_fingerprint

    chaos = _chaos_from_args(args)
    return workload_fingerprint(
        engine=engine,
        algorithm=args.algorithm,
        graph=args.graph,
        num_gpus=args.gpus,
        partitioner=args.partitioner,
        solver=args.solver,
        cost_model=_cost_model_label(args.cost_model),
        amortize=not args.no_amortize,
        chaos=chaos.scenario.name if chaos is not None else "none",
        topology=getattr(args, "topology", None) or "default",
    )


def _maybe_record(
    args: argparse.Namespace,
    engine: str,
    result: RunResult,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[str]:
    """Archive the run when ``--record`` was given; returns its id."""
    if not getattr(args, "record", False):
        return None
    registry = _registry_from_args(args)
    return registry.record_result(
        result,
        _workload_from_args(args, engine),
        metrics=metrics.snapshot() if metrics is not None else None,
    )


def _topology_from_args(args: argparse.Namespace):
    """Resolve ``--topology``; a cluster selector also sets the GPU
    count (``args.gpus`` feeds the cell, fingerprint, and trace meta).
    """
    spec = getattr(args, "topology", None)
    if spec is None:
        return None
    from repro.hardware import parse_topology

    topology = parse_topology(spec)
    args.gpus = topology.num_gpus
    return topology


def _run_one(
    args: argparse.Namespace,
    engine: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> RunResult:
    backend = getattr(args, "backend", "serial")
    options = (
        EngineOptions(backend=backend) if backend != "serial" else None
    )
    topology = _topology_from_args(args)
    return run_cell(
        Cell(engine, args.algorithm, args.graph, args.gpus,
             args.partitioner),
        gum_config=_gum_config_from_args(args),
        options=options,
        tracer=tracer,
        metrics=metrics,
        chaos=_chaos_from_args(args),
        topology=topology,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    _topology_from_args(args)  # fix args.gpus before the trace meta
    tracer, metrics = _make_observers(
        args, args.engine, args.trace, stream_target=_stream_target(args)
    )
    result = _run_one(args, args.engine, tracer=tracer, metrics=metrics)
    if tracer is not None:
        tracer.close()
    run_id = _maybe_record(args, args.engine, result, metrics)
    prom_path = _maybe_prom(args, metrics)
    if args.json:
        payload = result_summary(result)
        if args.metrics and metrics is not None:
            payload["metrics"] = metrics.snapshot()
        if run_id:
            payload["run_id"] = run_id
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{result.engine}/{result.algorithm} on {result.graph_name} "
          f"({result.num_gpus} GPUs, {args.partitioner} partition):")
    print(f"  virtual time : {result.total_ms:10.2f} ms "
          f"({result.num_iterations} iterations, "
          f"converged={result.converged})")
    print(f"  stall        : {result.stall_fraction():10.1%}")
    for bucket, ms in result.breakdown.scaled_ms().items():
        print(f"  {bucket:13s}: {ms:10.2f} ms")
    if args.trace:
        print(f"  trace        : {args.trace}")
    if _stream_target(args):
        print(f"  stream       : {args.stream}")
    if prom_path:
        print(f"  prometheus   : {prom_path}")
    if run_id:
        print(f"  recorded     : {run_id}")
    if args.metrics and metrics is not None:
        print("metrics:")
        print(json.dumps(metrics.snapshot(), indent=2))
    return 0


def _engine_trace_path(base: str, engine: str) -> str:
    """Per-engine trace file for ``compare`` (one run, one file)."""
    path = Path(base)
    return str(path.with_name(f"{path.stem}.{engine}{path.suffix}"))


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    snapshots = {}
    run_ids = {}
    engines = ENGINE_NAMES
    if getattr(args, "chaos", None):
        # groute's asynchronous runtime has no superstep boundary to
        # inject at; compare the BSP-style engines under chaos
        engines = tuple(e for e in ENGINE_NAMES if e != "groute")
        print("note: skipping groute (fault injection requires a "
              "BSP-style engine)", file=sys.stderr)
    if getattr(args, "backend", "serial") != "serial":
        # execution backends plug into the BSP superstep loop only
        engines = tuple(e for e in engines if e != "groute")
        if "groute" in ENGINE_NAMES and getattr(args, "chaos", None) is None:
            print("note: skipping groute (execution backends require a "
                  "BSP-style engine)", file=sys.stderr)
    stream_base = _stream_target(args)
    prom_base = getattr(args, "prom", None)
    for engine in engines:
        trace_path = (
            _engine_trace_path(args.trace, engine) if args.trace else None
        )
        stream_target = stream_base
        if stream_base and not stream_base.startswith(("fd://", "unix://")):
            # one stream file per engine; fd/socket targets are shared
            # (the engines run sequentially, so events never interleave)
            stream_target = _engine_trace_path(stream_base, engine)
        tracer, metrics = _make_observers(
            args, engine, trace_path, stream_target=stream_target
        )
        result = _run_one(args, engine, tracer=tracer, metrics=metrics)
        if tracer is not None:
            tracer.close()
        if prom_base and metrics is not None:
            from repro.obs.prom import write_prom

            write_prom(_engine_trace_path(prom_base, engine),
                       metrics.snapshot())
        if args.metrics and metrics is not None:
            snapshots[engine] = metrics.snapshot()
        run_id = _maybe_record(args, engine, result, metrics)
        if run_id:
            run_ids[engine] = run_id
        rows.append((engine, result))
    best = min(rows, key=lambda row: row[1].total_seconds)[0]
    if args.json:
        payload = {
            engine: result_summary(result) for engine, result in rows
        }
        for engine, snapshot in snapshots.items():
            payload[engine]["metrics"] = snapshot
        for engine, run_id in run_ids.items():
            payload[engine]["run_id"] = run_id
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{args.algorithm} on {args.graph} ({args.gpus} GPUs):")
    for engine, result in rows:
        marker = "  <-- best" if engine == best else ""
        print(f"  {engine:8s}: {result.total_ms:10.2f} ms "
              f"({result.num_iterations} iters){marker}")
    if args.trace:
        for engine, _ in rows:
            print(f"  trace: {_engine_trace_path(args.trace, engine)}")
    for engine, run_id in run_ids.items():
        print(f"  recorded: {engine} -> {run_id}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """One instrumented run -> Chrome trace + metrics snapshot."""
    meta = _trace_meta(args, args.engine)
    tracer = Tracer(sinks=[ChromeTraceSink(_trace_path(args.out),
                                           meta=meta)],
                    meta=meta)
    if args.jsonl:
        tracer.add_sink(JsonlSink(_trace_path(args.jsonl), meta=meta))
    metrics = MetricsRegistry()
    if args.cost_model == "default":
        # warm the cached model inside the trace so a cold run shows
        # its dominant host cost (corpus replay + SGD fit) as spans
        pretrained_default(tracer=tracer)
    result = _run_one(args, args.engine, tracer=tracer, metrics=metrics)
    tracer.close()
    run_id = _maybe_record(args, args.engine, result, metrics)
    prom_path = _maybe_prom(args, metrics)
    summary = result_summary(result)
    summary["metrics"] = metrics.snapshot()
    summary["trace"] = args.out
    if args.jsonl:
        summary["trace_jsonl"] = args.jsonl
    if prom_path:
        summary["prometheus"] = prom_path
    if run_id:
        summary["run_id"] = run_id
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"{result.engine}/{result.algorithm} on "
              f"{result.graph_name} ({result.num_gpus} GPUs): "
              f"{result.total_ms:.2f} ms virtual, "
              f"{result.num_iterations} iterations")
        print(f"  fsteal iterations : {summary['fsteal_iterations']}")
        print(f"  mean group size   : {summary['mean_group_size']:.2f}")
        print(f"  stolen edges      : {summary['stolen_edges']}")
        cache = summary.get("decision_cache") or {}
        if cache.get("amortize"):
            print(
                "  decision cache    : "
                f"{int(cache.get('hits', 0))} hits / "
                f"{int(cache.get('misses', 0))} misses, "
                f"{int(cache.get('invalidations', 0))} stale, "
                f"{int(cache.get('warm_accepts', 0))} warm accepts, "
                f"{int(cache.get('osteal_z_reused', 0))} z reused"
            )
        led = summary.get("ledger")
        if led:
            rmsre = led.get("final_rmsre")
            rmsre_text = f"{rmsre:.4f}" if rmsre is not None else "-"
            print(
                "  decision ledger   : "
                f"{int(led.get('entries', 0))} decisions, "
                f"{int(led.get('samples', 0))} audit samples, "
                f"RMSRE {rmsre_text}"
                + (f"  (repro explain {run_id})" if run_id else "")
            )
        util = ", ".join(
            f"{u:.0%}" for u in summary["per_gpu_utilization"]
        )
        print(f"  per-GPU utilization: {util}")
        print(f"  chrome trace      : {args.out}  "
              "(open in Perfetto / chrome://tracing)")
        if args.jsonl:
            print(f"  span log          : {args.jsonl}")
        if run_id:
            print(f"  recorded          : {run_id}")
    if args.timeline:
        print(render_timeline(result))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path microbenchmarks; gate against the baseline.

    Exit code 1 means at least one case regressed by more than the
    threshold on its machine-normalized score (see
    ``docs/performance.md`` for the normalization and how to refresh
    the committed baseline).
    """
    from repro.bench import perfharness

    if args.list_cases:
        for name in sorted(perfharness.BENCH_CASES):
            print(name)
        return 0
    try:
        report = perfharness.run_suite(
            names=args.filter, repeats=args.repeats
        )
    except ReproError as exc:
        # e.g. a --filter substring that matches nothing
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_path = _trace_path(args.out)
    perfharness.write_report(report, out_path)
    run_id = None
    if getattr(args, "record", False):
        run_id = _registry_from_args(args).record_bench(report)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(perfharness.format_report(report))
        print(f"report: {out_path}")
    if run_id:
        print(f"recorded: {run_id}")
    if args.update_baseline:
        perfharness.write_report(report, _trace_path(args.baseline))
        print(f"baseline refreshed: {args.baseline}")
        return 0
    if args.no_compare:
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {args.baseline}; skipping the gate "
              "(run with --update-baseline to create one)")
        return 0
    threshold = (
        perfharness.DEFAULT_THRESHOLD
        if args.threshold is None else args.threshold
    )
    baseline = perfharness.load_report(baseline_path)
    regressions = perfharness.compare_reports(
        report, baseline, threshold=threshold,
    )
    if regressions:
        print("re-measuring "
              f"{len(regressions)} regressed case(s) to rule out "
              "host noise...")
        regressions = perfharness.confirm_regressions(
            regressions, baseline, threshold=threshold,
            repeats=args.repeats,
        )
    if regressions:
        print(perfharness.format_regressions(regressions),
              file=sys.stderr)
        return 1
    print(f"gate: ok (no case regressed >{threshold:.0%} vs "
          f"{args.baseline})")
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    """Run the out-of-core ``scale.*`` suite; gate against its baseline.

    Exit code 1 means a case broke an invariant (bit-identity, shard
    budget, 25% wall overhead, inter-node stealing) or its
    deterministic virtual ms-per-edge drifted from the committed
    baseline (see ``docs/performance.md``).
    """
    from repro.bench import scale

    if args.list_cases:
        for name in sorted(scale.SCALE_CASES):
            print(name)
        return 0
    try:
        report = scale.run_scale_suite(names=args.filter)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_path = _trace_path(args.out)
    scale.write_scale_report(report, out_path)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(scale.format_scale_report(report))
        print(f"report: {out_path}")
    if args.update_baseline:
        scale.write_scale_report(report, _trace_path(args.baseline))
        print(f"baseline refreshed: {args.baseline}")
        return 0
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {args.baseline}; skipping the gate "
              "(run with --update-baseline to create one)")
        return 0
    problems = scale.compare_scale_reports(
        report, scale.load_scale_report(baseline_path)
    )
    if problems:
        for problem in problems:
            print(f"scale gate: {problem}", file=sys.stderr)
        return 1
    print(f"gate: ok ({len(report['cases'])} case(s) vs {args.baseline})")
    return 0


def _cmd_costmodel_fit(args: argparse.Namespace) -> int:
    """Fit cost-model v2 from recorded runs; emit an artifact."""
    from repro.core.costmodel_v2 import (
        fit_candidates,
        harvest,
        save_artifact,
    )

    registry = _registry_from_args(args)
    corpus = harvest(registry, refs=args.from_runs or None)
    outcome = fit_candidates(
        corpus,
        model=args.model,
        folds=args.folds,
        holdout_frac=args.holdout_frac,
        seed=args.seed,
    )
    artifact = save_artifact(
        outcome.model, args.out, provenance=outcome.report()
    )
    report = outcome.report()
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if args.json:
        payload = dict(report)
        payload["artifact"] = args.out
        payload["artifact_label"] = (
            f"artifact:{artifact['family']}@{artifact['digest'][:8]}"
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        corpus_info = report["corpus"]
        print(
            f"harvested {corpus_info['samples']} samples from "
            f"{len(corpus_info['runs'])} run(s) "
            f"({len(corpus_info['duplicates'])} duplicate(s) skipped, "
            f"{len(corpus_info['empty_runs'])} unledgered)"
        )
        for name in sorted(report["candidates"]):
            candidate = report["candidates"][name]
            marker = "  <-- chosen" if name == report["family"] else ""
            print(f"  {name:12s}: held-out RMSRE "
                  f"{candidate['cv_rmsre']:.4f}{marker}")
        print(f"  {'shipped':12s}: held-out RMSRE "
              f"{report['shipped_rmsre']:.4f}  (baseline)")
        verdict = "beats" if report["beats_shipped"] else \
            "DOES NOT beat"
        print(f"{report['family']} {verdict} the shipped model "
              f"({report['holdout_rmsre']:.4f} vs "
              f"{report['shipped_rmsre']:.4f}); artifact: {args.out}")
        if args.report:
            print(f"report: {args.report}")
    if args.gate and not report["beats_shipped"]:
        print("gate: fitted model does not beat the shipped "
              "polynomial held out", file=sys.stderr)
        return 1
    return 0


def _cmd_costmodel_bench(args: argparse.Namespace) -> int:
    """Run the costmodel.* bench family; exit 1 on any violation."""
    from repro.bench import costmodel_bench

    if args.list_cases:
        for name in sorted(costmodel_bench.COSTMODEL_CASES):
            print(name)
        return 0
    try:
        report = costmodel_bench.run_costmodel_suite(names=args.filter)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out_path = _trace_path(args.out)
    costmodel_bench.write_costmodel_report(report, out_path)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(costmodel_bench.format_costmodel_report(report))
        print(f"report: {out_path}")
    violations = costmodel_bench.report_violations(report)
    if violations:
        for line in violations:
            print(f"costmodel gate: {line}", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Replay a recorded run, optionally under modified physics."""
    from repro.replay import format_replay_result, replay_run

    result = replay_run(
        _registry_from_args(args),
        args.ref,
        cost_model=args.cost_model,
        topology=args.topology,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_replay_result(result))
    if args.check and not result.bit_identical:
        print("replay check: not bit-identical to the recording",
              file=sys.stderr)
        return 1
    return 0


def _cmd_runs_record(args: argparse.Namespace) -> int:
    """Run one workload fully instrumented and archive it."""
    metrics = MetricsRegistry()
    result = _run_one(args, args.engine, metrics=metrics)
    registry = _registry_from_args(args)
    run_id = registry.record_result(
        result,
        _workload_from_args(args, args.engine),
        metrics=metrics.snapshot(),
    )
    if args.json:
        payload = result_summary(result)
        payload["run_id"] = run_id
        payload["runs_dir"] = str(registry.root)
        print(json.dumps(payload, indent=2))
    else:
        print(f"recorded {run_id} "
              f"({result.total_ms:.2f} ms, "
              f"{result.num_iterations} iterations) "
              f"under {registry.root}")
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    registry = _registry_from_args(args)
    manifests = registry.manifests()
    if args.json:
        print(json.dumps(
            [{"id": m.get("id"), "kind": m.get("kind"),
              "created": m.get("created"),
              "total_ms": m.get("summary", {}).get("total_ms")}
             for m in manifests],
            indent=2,
        ))
        return 0
    if not manifests:
        print(f"no runs recorded under {registry.root}")
        return 0
    print(f"{'id':48s} {'kind':5s} {'total':>12s}  created")
    for manifest in manifests:
        total = manifest.get("summary", {}).get("total_ms")
        total_text = f"{total:9.2f} ms" if total is not None else "-"
        print(f"{manifest.get('id', '?'):48s} "
              f"{manifest.get('kind', '?'):5s} "
              f"{total_text:>12s}  {manifest.get('created', '?')}")
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    manifest = _registry_from_args(args).load_manifest(args.ref)
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def _gpu_scale_pair(text: str) -> Tuple[int, float]:
    """Parse a ``GPU=FACTOR`` what-if operand (``0=0.5``)."""
    key, sep, value = text.replace(":", "=").partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected GPU=FACTOR (e.g. 0=0.5), got {text!r}"
        )
    try:
        return int(key), float(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected GPU=FACTOR (e.g. 0=0.5), got {text!r}"
        ) from exc


def _cmd_runs_analyze(args: argparse.Namespace) -> int:
    """Critical-path attribution (and optional what-if) of a run."""
    from repro.obs import analysis

    source = _registry_from_args(args).load_run_trace(args.ref)
    whatif = analysis.WhatIf(
        gpu_compute_scale=dict(args.scale_gpu or []),
        compute_scale=args.scale_compute,
        zero_decision_overhead=args.zero_overhead,
        drop_fsteal=args.drop_fsteal,
    )
    report = analysis.analyze(source)
    payload = {"analysis": report.as_dict()}
    if not whatif.is_noop():
        outcome = analysis.replay(source, whatif)
        payload["whatif"] = outcome.as_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(analysis.format_report(report))
    if not whatif.is_noop():
        print(analysis.format_replay(outcome))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    """Exit 1 when a gated metric regressed beyond the threshold."""
    from repro.bench import perfharness
    from repro.runs import diff_manifests, format_diff

    registry = _registry_from_args(args)
    base = registry.load_manifest(args.base)
    current = registry.load_manifest(args.current)
    threshold = (
        perfharness.DEFAULT_THRESHOLD
        if args.threshold is None else args.threshold
    )
    diff = diff_manifests(base, current, threshold=threshold,
                          force=args.force)
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_diff(diff, verbose=not args.quiet))
    return 0 if diff.ok else 1


def _cmd_runs_gc(args: argparse.Namespace) -> int:
    registry = _registry_from_args(args)
    removed = registry.gc(keep=args.keep, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for run_id in removed:
        print(f"{verb} {run_id}")
    print(f"{verb} {len(removed)} run(s); keeping newest {args.keep}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Explain a recorded run's decisions from its archived ledger."""
    from repro.obs.ledger import Ledger, LedgerError, explain_lines

    payload = _registry_from_args(args).load_ledger(args.ref)
    ledger = Ledger.from_dict(payload)
    if args.json:
        if args.iteration is not None:
            matches = [entry for entry in ledger.entries
                       if entry["iteration"] == args.iteration]
            if not matches:
                raise LedgerError(
                    f"no ledger entry for iteration {args.iteration} "
                    f"(recorded: "
                    f"{[e['iteration'] for e in ledger.entries]})"
                )
            print(json.dumps(matches[0], indent=2, sort_keys=True))
        else:
            print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for line in explain_lines(ledger, iteration=args.iteration):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Terminal dashboard: tail a live stream or replay a recorded run."""
    from repro.obs.top import follow_stream, replay_run

    ansi = not args.no_ansi and sys.stdout.isatty()
    if args.stream:
        follow_stream(
            args.stream,
            sys.stdout.write,
            follow=args.follow,
            ansi=ansi,
            timeout=args.timeout,
            frames=args.frames,
        )
        return 0
    if not args.ref:
        raise ReproError(
            "repro top needs a run reference to replay or "
            "--stream PATH to tail"
        )
    header, records = _registry_from_args(args).load_run_trace(args.ref)
    replay_run(
        header,
        records,
        sys.stdout.write,
        speed=args.speed,
        frames=args.frames,
        ansi=ansi,
    )
    return 0


def _slo_history(registry, manifest: dict) -> List[dict]:
    """Prior comparable run summaries (same workload, oldest first)."""
    workload = manifest.get("fingerprint", {}).get("workload")
    created = manifest.get("created_unix", float("inf"))
    run_id = manifest.get("id")
    history = []
    for other in registry.manifests():
        if other.get("id") == run_id or other.get("kind") != "run":
            continue
        if other.get("fingerprint", {}).get("workload") != workload:
            continue
        if other.get("created_unix", 0.0) >= created:
            continue
        history.append(other.get("summary") or {})
    return history


def _cmd_slo_check(args: argparse.Namespace) -> int:
    """Evaluate a rule file against a recorded run; exit 1 on violation."""
    from repro.obs.slo import evaluate, load_policy

    policy = load_policy(args.rules)
    registry = _registry_from_args(args)
    manifest = registry.load_manifest(args.ref)
    summary = manifest.get("summary") or {}
    try:
        timeseries = registry.load_timeseries(args.ref)
    except ReproError:
        timeseries = {}  # rules needing series degrade per-rule
    report = evaluate(
        policy,
        summary,
        timeseries,
        history=_slo_history(registry, manifest),
        subject=str(manifest.get("id") or args.ref),
    )
    for line in report.lines():
        print(line)
    if args.report:
        path = Path(_trace_path(args.report))
        path.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report: {path}")
    if args.prom:
        from repro.obs.prom import write_prom

        write_prom(args.prom, manifest.get("metrics") or {})
        print(f"prometheus: {args.prom}")
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GUM reproduction: multi-GPU graph processing with "
                    "remote work stealing, on a simulated machine.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser(
        "datasets", help="list the bundled Table-II graph stand-ins"
    )
    p_datasets.add_argument("--domain", choices=("SN", "WG", "RN"),
                            default="")
    p_datasets.set_defaults(func=_cmd_datasets)

    p_topology = sub.add_parser(
        "topology", help="show the virtual NVLink topology"
    )
    p_topology.add_argument("--gpus", type=int, default=8,
                            choices=range(1, 9))
    p_topology.set_defaults(func=_cmd_topology)

    p_calibration = sub.add_parser(
        "calibration", help="show the virtual machine's timing constants"
    )
    p_calibration.add_argument("--gpus", type=int, default=8,
                               choices=range(1, 9))
    p_calibration.set_defaults(func=_cmd_calibration)

    def add_run_args(p: argparse.ArgumentParser) -> None:
        """Attach the shared workload arguments."""
        p.add_argument("--graph", required=True,
                       choices=list(datasets.DATASETS))
        p.add_argument("--algorithm", required=True,
                       choices=sorted(ALGORITHMS))
        p.add_argument("--gpus", type=int, default=8,
                       choices=range(1, 9))
        p.add_argument("--partitioner", default="random",
                       choices=sorted(PARTITIONERS))
        p.add_argument("--solver", default="greedy",
                       choices=("greedy", "lp", "bnb", "highs"))
        p.add_argument(
            "--cost-model", default="default", metavar="NAME|PATH",
            help="cost model: 'default' (shipped polynomial), "
                 "'oracle', 'uniform', or a path to a "
                 "repro-costmodel/1 artifact from "
                 "'repro costmodel fit' (see docs/costmodel.md)",
        )
        p.add_argument("--no-fsteal", action="store_true")
        p.add_argument("--no-osteal", action="store_true")
        p.add_argument("--no-hub-cache", action="store_true")
        p.add_argument(
            "--no-amortize", action="store_true",
            help="disable decision amortization (plan cache, warm "
                 "starts, incremental OSteal) for exact-mode "
                 "reproduction of paper figures",
        )
        p.add_argument(
            "--backend", default="serial", choices=BACKEND_NAMES,
            help="execution backend: 'serial' (in-process, default) or "
                 "'shmem' (one worker process per virtual GPU over "
                 "shared-memory buffers); never changes results or "
                 "virtual time (see docs/performance.md)",
        )
        p.add_argument(
            "--topology", metavar="SPEC", default=None,
            help="machine shape: 'nodes=NxG' (e.g. nodes=2x4) for an "
                 "N-node cluster of G-GPU servers with two-level "
                 "hierarchical stealing; default is the --gpus DGX-1 "
                 "sub-topology. When given, the worker count is N*G "
                 "and --gpus is ignored",
        )
        p.add_argument("--json", action="store_true",
                       help="emit a JSON summary")
        p.add_argument(
            "--chaos", metavar="SCENARIO.json", default=None,
            help="inject faults from a chaos scenario file "
                 "(see docs/robustness.md and benchmarks/scenarios/)",
        )

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        """Attach the shared observability arguments."""
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record the run: *.jsonl for raw span records, "
                 "anything else for Chrome trace_event JSON",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="collect and print the run's metrics snapshot",
        )
        p.add_argument(
            "--stream", metavar="TARGET", default=None,
            help="stream live telemetry as repro-live JSON lines to a "
                 "file path, fd://N, or unix://SOCKET (tail it with "
                 "'repro top --stream PATH --follow')",
        )
        p.add_argument(
            "--stream-every", type=int, default=10, metavar="N",
            help="metrics-snapshot cadence on the live stream, in "
                 "supersteps (default %(default)s; 0 disables "
                 "periodic snapshots)",
        )
        p.add_argument(
            "--prom", metavar="PATH", default=None,
            help="write the run's final metrics snapshot in Prometheus "
                 "text exposition format",
        )

    def add_runs_dir_arg(p: argparse.ArgumentParser) -> None:
        """Attach the registry-location argument."""
        p.add_argument(
            "--runs-dir", metavar="DIR", default=None,
            help="run registry directory (default: $REPRO_RUNS_DIR "
                 "or .repro/runs)",
        )

    def add_record_args(p: argparse.ArgumentParser) -> None:
        """Attach the run-registry recording arguments."""
        p.add_argument(
            "--record", action="store_true",
            help="archive this run (manifest + trace + timeseries) "
                 "in the run registry",
        )
        add_runs_dir_arg(p)

    p_run = sub.add_parser("run", help="run one engine on one workload")
    add_run_args(p_run)
    add_obs_args(p_run)
    add_record_args(p_run)
    p_run.add_argument("--engine", default="gum",
                       choices=ENGINE_NAMES + ("gum-nosteal", "bsp"))
    p_run.set_defaults(func=_cmd_run)

    p_compare = sub.add_parser(
        "compare", help="run all three engines on one workload"
    )
    add_run_args(p_compare)
    add_obs_args(p_compare)
    add_record_args(p_compare)
    p_compare.set_defaults(func=_cmd_compare)

    p_profile = sub.add_parser(
        "profile",
        help="run one workload fully instrumented and export a "
             "Perfetto-loadable Chrome trace",
    )
    add_run_args(p_profile)
    p_profile.add_argument("--engine", default="gum",
                           choices=ENGINE_NAMES + ("gum-nosteal", "bsp"))
    p_profile.add_argument(
        "--out", required=True, metavar="PATH",
        help="Chrome trace_event JSON output file",
    )
    p_profile.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also stream raw span records as JSON lines",
    )
    p_profile.add_argument(
        "--timeline", action="store_true",
        help="also print the ASCII per-GPU timeline",
    )
    p_profile.add_argument(
        "--prom", metavar="PATH", default=None,
        help="also write the metrics snapshot in Prometheus text "
             "exposition format",
    )
    add_record_args(p_profile)
    p_profile.set_defaults(func=_cmd_profile)

    p_bench = sub.add_parser(
        "bench",
        help="run the hot-path microbenchmark suite and gate against "
             "the committed baseline",
    )
    p_bench.add_argument(
        "--out", metavar="PATH", default="BENCH_hotpath.json",
        help="machine-readable report output (default: %(default)s)",
    )
    p_bench.add_argument(
        "--baseline", metavar="PATH",
        default="benchmarks/perf/baseline.json",
        help="committed baseline to gate against (default: %(default)s)",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None,
        help="normalized-score regression tolerance "
             "(default: 0.30 = fail on >30%% regression)",
    )
    p_bench.add_argument(
        "--filter", action="append", default=None, metavar="SUBSTR",
        help="only run cases whose name contains SUBSTR (repeatable)",
    )
    p_bench.add_argument(
        "--list-cases", action="store_true",
        help="print the registered case names and exit",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per case (best-of; default %(default)s)",
    )
    p_bench.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh report over --baseline instead of "
             "comparing against it",
    )
    p_bench.add_argument(
        "--no-compare", action="store_true",
        help="measure and write the report without gating",
    )
    p_bench.add_argument("--json", action="store_true",
                         help="print the report JSON instead of a table")
    add_record_args(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_scale = sub.add_parser(
        "scale",
        help="run the out-of-core sharded scale.* suite and gate "
             "against the committed baseline",
    )
    p_scale.add_argument(
        "--out", metavar="PATH", default="BENCH_scale.json",
        help="machine-readable report output (default: %(default)s)",
    )
    p_scale.add_argument(
        "--baseline", metavar="PATH",
        default="benchmarks/scale/baseline.json",
        help="committed baseline to gate against (default: %(default)s)",
    )
    p_scale.add_argument(
        "--filter", action="append", default=None, metavar="SUBSTR",
        help="only run cases whose name contains SUBSTR (repeatable)",
    )
    p_scale.add_argument(
        "--list-cases", action="store_true",
        help="print the registered case names and exit",
    )
    p_scale.add_argument(
        "--update-baseline", action="store_true",
        help="write the fresh report over --baseline instead of "
             "comparing against it",
    )
    p_scale.add_argument("--json", action="store_true",
                         help="print the report JSON instead of a table")
    p_scale.set_defaults(func=_cmd_scale)

    p_costmodel = sub.add_parser(
        "costmodel",
        help="cost-model v2: fit from recorded runs, emit "
             "repro-costmodel/1 artifacts, run the gated bench",
    )
    costmodel_sub = p_costmodel.add_subparsers(
        dest="costmodel_command", required=True
    )

    p_fit = costmodel_sub.add_parser(
        "fit",
        help="harvest ledger samples from recorded runs and fit "
             "candidate models with held-out RMSRE reporting",
    )
    p_fit.add_argument(
        "--from-runs", nargs="+", metavar="REF", default=None,
        help="run references to harvest (ids, prefixes, 'latest', or "
             "run directory paths such as "
             "benchmarks/reference/tx-bfs-4gpu); default: every "
             "ledgered run in the registry",
    )
    p_fit.add_argument(
        "--model", default="auto",
        choices=("auto", "polynomial", "linear", "tree", "svr"),
        help="candidate family (default: auto = pick the lowest "
             "held-out RMSRE)",
    )
    p_fit.add_argument(
        "--folds", type=int, default=5,
        help="cross-validation folds (default %(default)s)",
    )
    p_fit.add_argument(
        "--holdout-frac", type=float, default=None, metavar="F",
        help="use one fractional holdout split instead of k folds "
             "(e.g. 0.2 holds out 20%% of the samples)",
    )
    p_fit.add_argument(
        "--seed", type=int, default=0,
        help="shuffle seed of the held-out splits (default %(default)s)",
    )
    p_fit.add_argument(
        "--out", metavar="PATH", default="costmodel.json",
        help="repro-costmodel/1 artifact output (default: %(default)s)",
    )
    p_fit.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the full fit report as JSON",
    )
    p_fit.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless the fitted model beats the shipped "
             "polynomial held out (the CI assertion)",
    )
    p_fit.add_argument("--json", action="store_true")
    add_runs_dir_arg(p_fit)
    p_fit.set_defaults(func=_cmd_costmodel_fit)

    p_cm_bench = costmodel_sub.add_parser(
        "bench",
        help="run the costmodel.*/replay.* bench family; exit 1 on "
             "any gate violation",
    )
    p_cm_bench.add_argument(
        "--out", metavar="PATH", default="BENCH_costmodel.json",
        help="machine-readable report output (default: %(default)s)",
    )
    p_cm_bench.add_argument(
        "--filter", action="append", default=None, metavar="SUBSTR",
        help="only run cases whose name contains SUBSTR (repeatable)",
    )
    p_cm_bench.add_argument(
        "--list-cases", action="store_true",
        help="print the registered case names and exit",
    )
    p_cm_bench.add_argument("--json", action="store_true",
                            help="print the report JSON instead of a "
                                 "table")
    p_cm_bench.set_defaults(func=_cmd_costmodel_bench)

    p_replay = sub.add_parser(
        "replay",
        help="replay a recorded run's decision sequence, optionally "
             "under a different cost model or topology, with "
             "per-iteration error attribution",
    )
    p_replay.add_argument(
        "ref",
        help="run reference (id, prefix, 'latest', or a run directory "
             "path such as benchmarks/reference/tx-bfs-4gpu)",
    )
    p_replay.add_argument(
        "--cost-model", metavar="NAME|PATH", default=None,
        help="replay under this model instead of the recorded one: "
             "'default', 'uniform', or a repro-costmodel/1 artifact "
             "path; omit for the original model (bit-identical)",
    )
    p_replay.add_argument(
        "--topology", metavar="SPEC", default=None,
        help="rescale the recorded communication time under this "
             "machine shape ('dgx1' or 'nodes=NxG'; worker count must "
             "match the recording)",
    )
    p_replay.add_argument(
        "--check", action="store_true",
        help="exit 1 unless the replay is bit-identical to the "
             "recording (original model, no overrides)",
    )
    p_replay.add_argument("--json", action="store_true")
    add_runs_dir_arg(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    p_runs = sub.add_parser(
        "runs",
        help="the persistent run registry: record, inspect, analyze, "
             "and diff archived runs",
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)

    p_record = runs_sub.add_parser(
        "record", help="run one workload instrumented and archive it"
    )
    add_run_args(p_record)
    p_record.add_argument("--engine", default="gum",
                          choices=ENGINE_NAMES + ("gum-nosteal", "bsp"))
    add_runs_dir_arg(p_record)
    p_record.set_defaults(func=_cmd_runs_record)

    p_list = runs_sub.add_parser("list", help="list recorded runs")
    p_list.add_argument("--json", action="store_true")
    add_runs_dir_arg(p_list)
    p_list.set_defaults(func=_cmd_runs_list)

    p_show = runs_sub.add_parser(
        "show", help="print one run's manifest"
    )
    p_show.add_argument(
        "ref",
        help="run id (or unique prefix), 'latest', or a path to a run "
             "directory / manifest.json",
    )
    add_runs_dir_arg(p_show)
    p_show.set_defaults(func=_cmd_runs_show)

    p_analyze = runs_sub.add_parser(
        "analyze",
        help="critical-path attribution and what-if replay of a "
             "recorded run",
    )
    p_analyze.add_argument("ref", help="run reference (see 'runs show')")
    p_analyze.add_argument(
        "--scale-gpu", action="append", metavar="GPU=FACTOR",
        type=_gpu_scale_pair, default=None,
        help="what-if: scale GPU's compute time by FACTOR "
             "(repeatable; 0=0.5 halves gpu0's compute)",
    )
    p_analyze.add_argument(
        "--scale-compute", type=float, default=1.0, metavar="FACTOR",
        help="what-if: scale every GPU's compute time by FACTOR",
    )
    p_analyze.add_argument(
        "--zero-overhead", action="store_true",
        help="what-if: zero the coordinator's decision overhead "
             "(free solver)",
    )
    p_analyze.add_argument(
        "--drop-fsteal", action="store_true",
        help="what-if: charge stolen edges back to each superstep's "
             "straggler (undo FSteal, first-order)",
    )
    p_analyze.add_argument("--json", action="store_true")
    add_runs_dir_arg(p_analyze)
    p_analyze.set_defaults(func=_cmd_runs_analyze)

    p_diff = runs_sub.add_parser(
        "diff",
        help="compare two recorded runs; exit 1 on gated regressions",
    )
    p_diff.add_argument("base", help="baseline run reference")
    p_diff.add_argument("current", help="candidate run reference")
    p_diff.add_argument(
        "--threshold", type=float, default=None,
        help="relative regression tolerance (default: 0.30)",
    )
    p_diff.add_argument(
        "--force", action="store_true",
        help="diff even when the workload fingerprints differ",
    )
    p_diff.add_argument(
        "--quiet", action="store_true",
        help="only show regressions and notes, not every metric",
    )
    p_diff.add_argument("--json", action="store_true")
    add_runs_dir_arg(p_diff)
    p_diff.set_defaults(func=_cmd_runs_diff)

    p_gc = runs_sub.add_parser(
        "gc", help="delete all but the newest runs"
    )
    p_gc.add_argument("--keep", type=int, default=20,
                      help="runs to keep (default %(default)s)")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be deleted, delete nothing")
    add_runs_dir_arg(p_gc)
    p_gc.set_defaults(func=_cmd_runs_gc)

    p_explain = sub.add_parser(
        "explain",
        help="explain a recorded run's stealing decisions from its "
             "archived ledger: per-decision audit, prediction error, "
             "model drift",
    )
    p_explain.add_argument(
        "ref", nargs="?", default="latest",
        help="run reference (default: latest; also accepts a run "
             "directory path such as benchmarks/reference/tx-bfs-4gpu)",
    )
    p_explain.add_argument(
        "--iteration", type=int, default=None, metavar="N",
        help="drill into one iteration's decision: features, "
             "candidates, chosen plan, per-fragment audit samples",
    )
    p_explain.add_argument(
        "--json", action="store_true",
        help="emit the raw repro-ledger/1 payload (or, with "
             "--iteration, that entry) instead of the report",
    )
    add_runs_dir_arg(p_explain)
    p_explain.set_defaults(func=_cmd_explain)

    p_top = sub.add_parser(
        "top",
        help="terminal dashboard: tail a live telemetry stream or "
             "replay a recorded run",
    )
    p_top.add_argument(
        "ref", nargs="?", default=None,
        help="recorded run to replay (id, prefix, 'latest', or a run "
             "directory path); omit when tailing --stream",
    )
    p_top.add_argument(
        "--stream", metavar="PATH", default=None,
        help="tail a repro-live stream file instead of replaying a "
             "recorded run",
    )
    p_top.add_argument(
        "--follow", action="store_true",
        help="with --stream: keep polling until the producer writes "
             "its end event",
    )
    p_top.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="with --follow: stop waiting after this many seconds",
    )
    p_top.add_argument(
        "--speed", type=float, default=0.0, metavar="X",
        help="replay pacing as a multiple of virtual time "
             "(default 0 = as fast as possible)",
    )
    p_top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="cap the number of redrawn frames (for CI smoke tests)",
    )
    p_top.add_argument(
        "--no-ansi", action="store_true",
        help="print frames sequentially instead of clearing the screen",
    )
    add_runs_dir_arg(p_top)
    p_top.set_defaults(func=_cmd_top)

    p_slo = sub.add_parser(
        "slo",
        help="service-level objectives: check runs against "
             "repro-slo/1 rule files",
    )
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)
    p_slo_check = slo_sub.add_parser(
        "check",
        help="evaluate a rule file against a recorded run; exit 1 on "
             "violation",
    )
    p_slo_check.add_argument(
        "ref", nargs="?", default="latest",
        help="run reference (default: latest; also accepts a run "
             "directory path such as benchmarks/reference/tx-bfs-4gpu)",
    )
    p_slo_check.add_argument(
        "--rules", required=True, metavar="RULES.yaml",
        help="repro-slo/1 rule file (YAML or JSON)",
    )
    p_slo_check.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the full report as JSON",
    )
    p_slo_check.add_argument(
        "--prom", metavar="PATH", default=None,
        help="also write the run's archived metrics snapshot in "
             "Prometheus text format",
    )
    add_runs_dir_arg(p_slo_check)
    p_slo_check.set_defaults(func=_cmd_slo_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # every library failure (bad scenario file, registry miss,
        # exhausted solver chain, ...) is one line and exit code 2 —
        # tracebacks are for bugs, not for bad inputs
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # output piped into a pager/head that closed early: not an error
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
