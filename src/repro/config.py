"""Global configuration knobs for the repro library.

The library is deterministic by construction: every stochastic component
(graph generators, the device model's pseudo-noise, cost-model training)
takes an explicit seed. This module centralizes the defaults and the
single environment-variable escape hatch used by the benchmark harness.

``REPRO_SCALE``
    A positive float multiplier applied to benchmark graph sizes. The
    default of ``1.0`` keeps every experiment laptop-sized (seconds per
    table); CI or a beefier machine can set ``REPRO_SCALE=4`` to run the
    same experiments on 4x larger graphs.
"""

from __future__ import annotations

import os

DEFAULT_SEED = 42

#: The benchmark graphs are ~1000x smaller than the paper's (Table II
#: graphs have up to 1.8B edges; our stand-ins have up to ~2M). To keep
#: the paper's compute-vs-synchronization ratios — which the DLB and LT
#: phenomena hinge on — each *simulated* edge stands for ``EDGE_SCALE``
#: original edges: per-edge compute cost and per-edge/message byte
#: volumes are scaled up by this factor, while per-iteration latencies
#: (kernel launch, the sync parameter ``p``) stay at their physical
#: values. See DESIGN.md §5.
EDGE_SCALE = 1000

#: Bytes of graph data touched per processed (simulated) edge.
#: Used by the hardware timing model to convert link bandwidth into a
#: per-edge communication cost, mirroring the paper's ``1/B_ij`` term.
BYTES_PER_EDGE = 16 * EDGE_SCALE

#: Bytes per (simulated) vertex message (destination id + value) for
#: serialization accounting in the runtime.
BYTES_PER_MESSAGE = 12 * EDGE_SCALE

#: Bytes of frontier status (vertex id + value) migrated per stolen
#: (simulated) frontier vertex.
BYTES_PER_VERTEX = 16 * EDGE_SCALE


def benchmark_scale() -> float:
    """Return the benchmark scale multiplier from ``REPRO_SCALE``.

    Invalid or non-positive values fall back to ``1.0`` rather than
    raising: benchmark sizing is advisory, never correctness-relevant.
    """
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


def scaled(n: int, minimum: int = 16) -> int:
    """Scale an integer size by :func:`benchmark_scale`, clamped below."""
    return max(minimum, int(n * benchmark_scale()))
