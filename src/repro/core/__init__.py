"""The paper's contribution: FSteal, OSteal, cost model, GUM engine."""

from repro.core.decision_cache import (
    LruDict,
    PlanCache,
    plan_fingerprint,
    quantize,
    repair_assignment,
)
from repro.core.milp import (
    AssemblyWorkspace,
    BranchAndBoundSolver,
    FStealProblem,
    FStealSolution,
    FStealSolver,
    GreedySolver,
    HiGHSSolver,
    LPRoundingSolver,
    SOLVERS,
    make_solver,
)
from repro.core.costmodel import (
    CostModel,
    DecisionTreeModel,
    FitReport,
    KernelRidgeModel,
    LinearSGDModel,
    MODEL_FAMILIES,
    OnlineRMSRE,
    OracleCostModel,
    PolynomialSGDModel,
    UniformCostModel,
    collect_training_data,
    default_training_corpus,
    pretrained_default,
    rmsre,
)
from repro.core.fsteal import (
    VertexAssignment,
    build_cost_matrix,
    plan_fsteal,
    select_vertices,
)
from repro.core.reduction_tree import ReductionTree
from repro.core.osteal import OStealDecision, plan_osteal
from repro.core.hubcache import HubCache
from repro.core.arbitrator import GumConfig, GumScheduler
from repro.core.gum import GumEngine

__all__ = [
    "FStealProblem",
    "FStealSolution",
    "FStealSolver",
    "GreedySolver",
    "LPRoundingSolver",
    "BranchAndBoundSolver",
    "HiGHSSolver",
    "SOLVERS",
    "make_solver",
    "AssemblyWorkspace",
    "PlanCache",
    "LruDict",
    "plan_fingerprint",
    "quantize",
    "repair_assignment",
    "CostModel",
    "LinearSGDModel",
    "PolynomialSGDModel",
    "DecisionTreeModel",
    "KernelRidgeModel",
    "UniformCostModel",
    "OracleCostModel",
    "MODEL_FAMILIES",
    "FitReport",
    "rmsre",
    "OnlineRMSRE",
    "collect_training_data",
    "default_training_corpus",
    "pretrained_default",
    "VertexAssignment",
    "build_cost_matrix",
    "select_vertices",
    "plan_fsteal",
    "ReductionTree",
    "OStealDecision",
    "plan_osteal",
    "HubCache",
    "GumConfig",
    "GumScheduler",
    "GumEngine",
]
