"""The stealing arbitrator (Section V, Figure 5).

:class:`GumScheduler` is the coordinator-side policy at the heart of
GUM. Each iteration it:

1. decides **OSteal** (Algorithm 2) when the long-tail trigger fires —
   previous iteration cheaper than ``t3``, or the group is already
   folded (so re-growth is re-evaluated as workload returns);
2. decides **FSteal** (Algorithm 1) when the DLB triggers fire —
   enough frontier edges (``t1``) and enough imbalance (``t2``);
3. realizes the chosen touched-edges matrix as consecutive vertex
   slices, marking hub-cached edges (``t4``) as local.

The arbitrator estimates the synchronization parameter ``p`` from
observed iterations and charges its own decision latency into the
virtual clock (``overhead_mode``: a deterministic model by default,
the measured wall time of the decision code if requested, or nothing).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import config as repro_config
from repro.chaos.controller import SOLVER_TIMEOUT_SECONDS, FaultEvent
from repro.core.costmodel import (
    CostModel,
    OnlineRMSRE,
    OracleCostModel,
    UniformCostModel,
    pretrained_default,
)
from repro.core.fsteal import (
    VertexAssignment,
    build_cost_matrix,
    select_vertices,
)
from repro.core.decision_cache import (
    LruDict,
    PlanCache,
    quantize,
    repair_assignment,
)
from repro.core.hubcache import HubCache
from repro.core.milp import FStealProblem, FStealSolution, make_solver
from repro.core.osteal import plan_osteal
from repro.core.reduction_tree import ReductionTree, make_reduction_tree
from repro.errors import EngineError
from repro.hardware.microbench import measure_comm_cost_matrix
from repro.obs.ledger import Ledger
from repro.runtime.frontier import Frontier
from repro.runtime.metrics import IterationRecord
from repro.runtime.scheduler import (
    IterationPlan,
    RunContext,
    Scheduler,
    WorkChunk,
)

__all__ = ["GumConfig", "GumScheduler"]


@dataclass
class GumConfig:
    """Tunables of the GUM arbitrator (the paper's t1..t4 and friends).

    Attributes
    ----------
    fsteal / osteal / hub_cache:
        Feature switches (the Exp-5 incremental axes).
    solver:
        FSteal solver name (``greedy``/``lp``/``bnb``/``highs``) or an
        instantiated solver.
    cost_model:
        ``"default"`` (pretrained degree-4 polynomial), ``"oracle"``
        (ground truth — Exp-7's upper bound), ``"uniform"`` (bandwidth
        only), any :class:`CostModel` instance, or a path to a
        ``repro-costmodel/1`` artifact written by
        ``repro costmodel fit`` (see ``docs/costmodel.md``).
    t1_min_edges:
        FSteal fires only when the busiest worker has at least this
        many active edges (Example 5, condition 1).
    t2_imbalance_edges:
        ... and the busiest-minus-idlest gap exceeds this (condition 2).
    t2_imbalance_ratio:
        Relative counterpart of ``t2``: the gap must also be at least
        this fraction of the heaviest load, so near-balanced iterations
        are not "rebalanced" at a net loss.
    t3_runtime_seconds:
        OSteal re-evaluates when the previous iteration's wall time is
        below this (the long-tail detector).
    t4_hub_in_degree:
        Vertices with larger in-degree are hub-cached on every GPU.
    osteal_cooldown:
        Minimum iterations between OSteal evaluations (Algorithm 2
        enumerates group sizes — do not pay that every tail iteration).
    amortize:
        Decision-amortization master switch (default on): plan caching
        with tolerance-based fingerprint reuse, warm-started solvers,
        and the incremental bracket OSteal search. Turning it **off**
        is the exact-mode escape hatch — every decision is recomputed
        from scratch and virtual-time results are bit-identical to the
        pre-amortization code path.
    amortize_tolerance:
        Relative quantization width of the plan-cache fingerprints
        (see ``repro.core.decision_cache.quantize``); ``0`` keeps the
        cache but only ever reuses bit-identical instances.
    plan_cache_size:
        LRU bound on cached plans.
    ledger:
        Record the per-decision explainability ledger (default on):
        one ``repro-ledger/1`` entry per arbitrator decision with the
        quantized inputs, the chosen plan, cache status, and the
        predicted-vs-measured cost audit. Entries hold virtual-clock
        and model quantities only, so recording never perturbs
        simulated time; ``repro explain`` renders the result.
    overhead_mode:
        ``"modeled"`` (deterministic cost estimate — default, keeps
        runs reproducible), ``"measured"`` (charge the real wall time
        of the decision code), or ``"none"``.
    bandwidth_seed:
        Seed of the simulated bandwidth micro-benchmark.
    """

    fsteal: bool = True
    osteal: bool = True
    hub_cache: bool = True
    solver: Union[str, object] = "greedy"
    cost_model: Union[str, CostModel] = "default"
    # Thresholds are in *simulated* edges (1 simulated edge stands for
    # config.EDGE_SCALE original ones), hence the small defaults.
    t1_min_edges: int = 256
    t2_imbalance_edges: int = 64
    t2_imbalance_ratio: float = 0.10
    t3_runtime_seconds: float = 2.5e-3
    t4_hub_in_degree: int = 128
    osteal_cooldown: int = 10
    amortize: bool = True
    amortize_tolerance: float = 0.05
    plan_cache_size: int = 64
    ledger: bool = True
    overhead_mode: str = "modeled"
    bandwidth_seed: int = 0

    def resolve_cost_model(self) -> CostModel:
        """Materialize the configured cost model."""
        if isinstance(self.cost_model, CostModel):
            return self.cost_model
        if self.cost_model == "default":
            return pretrained_default()
        if self.cost_model == "oracle":
            return OracleCostModel()
        if self.cost_model == "uniform":
            return UniformCostModel()
        if os.path.isfile(self.cost_model):
            # a repro-costmodel/1 artifact from `repro costmodel fit`
            from repro.core.costmodel_v2 import load_artifact

            return load_artifact(self.cost_model)
        raise EngineError(
            f"unknown cost model {self.cost_model!r}; expected "
            "'default', 'oracle', 'uniform', a CostModel instance, or "
            "a path to a repro-costmodel/1 artifact"
        )

    def resolve_solver(self):
        """Materialize the configured FSteal solver."""
        if isinstance(self.solver, str):
            return make_solver(self.solver)
        return self.solver


@dataclass
class _RunState:
    """Per-run mutable arbitrator state.

    ``solver`` is the per-run solving interface: the configured solver
    itself on healthy runs, or a chaos-aware
    :class:`~repro.chaos.fallback.FallbackSolver` wrap when a fault
    controller is attached. ``heirs`` records, for every killed
    worker, which survivor inherited its fragments (chains resolve
    through later deaths).
    """

    comm_cost: np.ndarray
    tree: ReductionTree
    hub_cache: Optional[HubCache]
    solver: object = None
    heirs: Dict[int, int] = field(default_factory=dict)
    active: List[int] = field(default_factory=list)
    group_size: int = 0
    prev_wall: float = float("inf")
    p_estimate: float = 1e-4
    last_osteal_iteration: int = -(10**9)
    workload_at_decision: int = 0
    osteal_backoff: int = 0
    online_rmsre: OnlineRMSRE = field(default_factory=OnlineRMSRE)
    # --- decision amortization ---------------------------------------
    plan_cache: Optional[PlanCache] = None
    warm_assignment: Optional[np.ndarray] = None
    warm_accepts: int = 0
    # per-fingerprint z(m) memos: cycling tail frontiers each keep
    # their own map instead of thrashing a single shared one
    osteal_z: LruDict = field(default_factory=lambda: LruDict(16))
    osteal_last_fp: Optional[tuple] = None
    osteal_invalidations: int = 0
    osteal_z_reused: int = 0
    osteal_z_evaluated: int = 0
    # --- decision ledger ----------------------------------------------
    ledger: Optional[Ledger] = None
    ledger_instruments: Optional[tuple] = None
    # --- hierarchical two-level stealing ------------------------------
    # GPU -> node assignment and per-node representative ids, set only
    # on multi-node topologies; None keeps single-node planning
    # bit-identical to the flat policy
    worker_nodes: Optional[np.ndarray] = None
    node_reps: Optional[List[int]] = None


class _EvictedTree:
    """Reduction tree over the survivors of worker eviction.

    Presents the :class:`ReductionTree` interface (``ownership``,
    ``active_workers``) in *original* GPU ids while folding only among
    alive workers: the inner tree is built on ``topology.subset`` of
    the survivors, and dead fragments chase the heir chain recorded at
    eviction time. Group sizes beyond the survivor count clamp to it —
    the degraded machine simply has fewer rungs to unfold.
    """

    def __init__(self, topology, alive: Sequence[int],
                 heirs: Dict[int, int]) -> None:
        self._alive = [int(w) for w in alive]
        self._heirs = dict(heirs)
        self._num_gpus = topology.num_gpus
        self._local = {w: i for i, w in enumerate(self._alive)}
        self._inner = make_reduction_tree(topology.subset(self._alive))

    @property
    def representatives(self) -> List[int]:
        """Per-node representative ids in *original* numbering."""
        inner_reps = getattr(self._inner, "representatives", None)
        if inner_reps is None:
            return []
        return sorted(self._alive[int(r)] for r in inner_reps)

    def _resolve(self, worker: int) -> int:
        # death is monotone within a run, so the chain cannot cycle
        while worker in self._heirs:
            worker = self._heirs[worker]
        return worker

    def _clamp(self, group_size: int) -> int:
        return max(1, min(int(group_size), len(self._alive)))

    def active_workers(self, group_size: int) -> List[int]:
        """Sorted surviving worker ids (original numbering)."""
        local = self._inner.active_workers(self._clamp(group_size))
        return [self._alive[w] for w in local]

    def ownership(self, group_size: int) -> np.ndarray:
        """Fragment -> worker vector ``O`` over all original fragments."""
        inner_own = self._inner.ownership(self._clamp(group_size))
        out = np.empty(self._num_gpus, dtype=inner_own.dtype)
        for fragment in range(self._num_gpus):
            holder = self._resolve(fragment)
            out[fragment] = self._alive[
                int(inner_own[self._local[holder]])
            ]
        return out


class _PredictionMemo:
    """One decision's view of the cost model, predictions shared.

    The prediction audit, OSteal's fingerprint coefficients, and the
    FSteal cost matrix all ask for ``g`` of the *same* per-fragment
    feature objects within a single ``plan`` call; this wrapper makes
    the (bit-identical) single-row prediction once per object. Scoped
    to one decision, so a refit model can never serve stale values.
    """

    def __init__(self, model: CostModel) -> None:
        self._model = model
        self._memo: Dict[int, tuple] = {}

    def edge_cost_seconds(self, features) -> float:
        hit = self._memo.get(id(features))
        if hit is not None and hit[0] is features:
            return hit[1]
        value = self._model.edge_cost_seconds(features)
        self._memo[id(features)] = (features, value)
        return value

    def __getattr__(self, name):
        return getattr(self._model, name)


class GumScheduler(Scheduler):
    """The GUM coordinator policy (OSteal before FSteal, Section V)."""

    name = "gum"

    def __init__(self, config: Optional[GumConfig] = None) -> None:
        self._config = config or GumConfig()
        self._cost_model = self._config.resolve_cost_model()
        self._solver = self._config.resolve_solver()
        self._state: Optional[_RunState] = None

    @property
    def config(self) -> GumConfig:
        """The arbitrator configuration."""
        return self._config

    @property
    def ledger(self) -> Optional[Ledger]:
        """Decision ledger of the current (or most recent) run."""
        state = self._state
        return state.ledger if state is not None else None

    # ------------------------------------------------------------------
    def begin_run(self, context: RunContext) -> None:
        """Reset per-run state for a new execution."""
        topology = context.timing.topology
        comm_cost = measure_comm_cost_matrix(
            topology,
            repro_config.BYTES_PER_EDGE,
            seed=self._config.bandwidth_seed,
        )
        hub_cache = (
            HubCache(context.graph, self._config.t4_hub_in_degree,
                     metrics=context.metrics)
            if self._config.hub_cache
            else None
        )
        # the fallback chain only wraps the solver under fault
        # injection, so healthy runs call the configured backend with
        # zero indirection (bit-identical virtual times); imported
        # lazily — chaos.fallback builds on core.milp, so a module-level
        # import would be circular
        solver = self._solver
        if context.chaos is not None:
            from repro.chaos.fallback import FallbackSolver

            solver = FallbackSolver(self._solver, context.chaos)
        self._state = _RunState(
            comm_cost=comm_cost,
            tree=make_reduction_tree(topology),
            hub_cache=hub_cache,
            solver=solver,
            active=list(range(topology.num_gpus)),
            group_size=topology.num_gpus,
            plan_cache=(
                PlanCache(
                    max_entries=self._config.plan_cache_size,
                    tolerance=self._config.amortize_tolerance,
                )
                if self._config.amortize
                else None
            ),
            ledger=(
                Ledger(
                    # artifact-backed models carry a content-addressed
                    # label that stays stable across filesystem paths
                    model=(
                        getattr(self._cost_model, "artifact_label",
                                None)
                        or (
                            self._config.cost_model
                            if isinstance(self._config.cost_model, str)
                            else type(self._cost_model).__name__
                        )
                    ),
                    amortize=self._config.amortize,
                    fingerprint_tolerance=(
                        self._config.amortize_tolerance
                    ),
                )
                if self._config.ledger
                else None
            ),
        )
        if topology.num_nodes > 1:
            self._state.worker_nodes = np.asarray(
                topology.node_assignment, dtype=np.int64
            )
            self._state.node_reps = list(
                getattr(self._state.tree, "representatives", [])
            )
        # initial p guess: one sync with everyone, spread per worker
        self._state.p_estimate = context.timing.sync_seconds(
            topology.num_gpus
        ) / topology.num_gpus

    # ------------------------------------------------------------------
    def plan(
        self,
        iteration: int,
        fragment_frontiers: Sequence[Frontier],
        workloads: np.ndarray,
        context: RunContext,
    ) -> IterationPlan:
        """Produce this iteration's work assignment."""
        state = self._state
        if state is None:
            raise EngineError("scheduler used before begin_run")
        tracer, metrics = context.tracer, context.metrics
        started = time.perf_counter()
        modeled_overhead = 0.0
        num_workers = context.num_workers
        # memoized on the frontier objects: the engine prices the plan
        # from these same features, so the scan happens exactly once
        features = [
            frontier.features(context.graph)
            for frontier in fragment_frontiers
        ]
        # feature extraction is a scan over active vertices (Exp-3)
        total_frontier = int(sum(f.size for f in features))
        modeled_overhead += 2.5e-8 * total_frontier

        cost_model = _PredictionMemo(self._cost_model)
        ledger = state.ledger
        if ledger is not None:
            ledger.begin(
                iteration,
                workloads,
                fingerprint=self._ledger_fingerprint(features, workloads),
            )
        if metrics.enabled or ledger is not None:
            self._observe_cost_model(
                context, features, workloads, cost_model
            )

        fsteal_solution = None

        # --- Step 2: ownership stealing -------------------------------
        total_workload = int(workloads.sum())
        if self._config.osteal and self._osteal_triggered(
            iteration, state, total_workload
        ):
            with tracer.span(
                "gum.osteal", track="coordinator", cat="osteal",
                iteration=iteration, workload=total_workload,
            ) as osteal_span:
                solve_started = time.perf_counter()
                decision = self._plan_osteal(
                    features, workloads, context, tracer, cost_model
                )
                osteal_span.set(
                    group_size=decision.group_size,
                    prev_group_size=state.group_size,
                    estimated_cost=decision.estimated_cost,
                    estimated_kernel=decision.estimated_kernel,
                    p_estimate=state.p_estimate,
                )
            if ledger is not None:
                candidates = num_workers
                if (context.chaos is not None
                        and context.chaos.dead_workers):
                    candidates = len(context.chaos.alive_workers())
                ledger.record_osteal(
                    group_size=decision.group_size,
                    prev_group_size=state.group_size,
                    candidates=candidates,
                    evaluated_sizes=decision.evaluated_sizes,
                    reused_sizes=decision.reused_sizes,
                    estimated_cost=decision.estimated_cost,
                    estimated_kernel=decision.estimated_kernel,
                    p_estimate=state.p_estimate,
                )
            if metrics.enabled:
                metrics.counter("osteal.evaluations").inc()
                metrics.histogram(
                    "osteal.solve_seconds",
                    "host wall time of Algorithm 2 enumerations",
                ).observe(time.perf_counter() - solve_started)
                if decision.group_size != state.group_size:
                    metrics.counter("osteal.group_changes").inc()
            if self._config.amortize:
                # charge only the solves actually performed: the
                # bracket search + z-cache makes most sizes free
                modeled_overhead += (
                    self._OSTEAL_EVAL_SECONDS * decision.evaluated_sizes
                )
            else:
                modeled_overhead += self._modeled_osteal_seconds(
                    num_workers
                )
            state.last_osteal_iteration = iteration
            state.workload_at_decision = total_workload
            if decision.group_size != state.group_size:
                state.osteal_backoff = self._config.osteal_cooldown
            else:
                # stable decision: back off exponentially so long tails
                # are not charged an enumeration every few iterations
                state.osteal_backoff = min(
                    max(state.osteal_backoff,
                        self._config.osteal_cooldown) * 2,
                    8 * self._config.osteal_cooldown,
                )
            state.group_size = decision.group_size
            state.active = decision.active_workers
            context.fragment_worker[:] = decision.ownership
            fsteal_solution = decision.fsteal

        # --- Step 3: frontier stealing --------------------------------
        fsteal_applied = False
        if self._config.fsteal and self._fsteal_triggered(
            workloads, context, state
        ):
            costs_used = None
            static = gain = None
            if fsteal_solution is None:
                with tracer.span(
                    "gum.fsteal.milp", track="coordinator", cat="fsteal",
                    iteration=iteration,
                    solver=getattr(state.solver, "name",
                                   type(state.solver).__name__),
                ) as fsteal_span:
                    solve_started = time.perf_counter()
                    costs_used = build_cost_matrix(
                        state.comm_cost,
                        features,
                        cost_model,
                        context.fragment_home,
                        allowed_workers=state.active,
                        worker_nodes=state.worker_nodes,
                        node_representatives=state.node_reps,
                    )
                    problem = FStealProblem(costs_used, workloads)
                    if self._config.amortize:
                        fsteal_solution = self._amortized_solve(problem)
                    else:
                        fsteal_solution = state.solver.solve(problem)
                    fsteal_span.set(
                        objective=fsteal_solution.objective,
                        solver=fsteal_solution.solver,
                        warm_started=fsteal_solution.warm_started,
                    )
                if metrics.enabled:
                    metrics.histogram(
                        "fsteal.solve_seconds",
                        "host wall time of the FSteal MILP",
                    ).observe(time.perf_counter() - solve_started)
            solved = fsteal_solution
            cache_hit = (
                fsteal_solution is not None
                and fsteal_solution.solver == "plan-cache"
            )
            if self._config.amortize and cache_hit:
                fsteal_overhead = self._modeled_fsteal_cache_seconds(
                    num_workers
                )
            else:
                fsteal_overhead = self._modeled_fsteal_seconds(
                    num_workers, total_frontier
                )
            modeled_overhead += fsteal_overhead
            # cost-based gate (Example 5's spirit, made quantitative):
            # commit only when the predicted makespan gain covers the
            # decision overhead — near-balanced iterations stay put
            if costs_used is not None:
                static = self._static_makespan(
                    costs_used, workloads, context.fragment_worker
                )
                gain = static - fsteal_solution.objective
                if metrics.enabled:
                    metrics.histogram(
                        "fsteal.makespan_gain_seconds",
                        "predicted static-minus-stolen makespan gap",
                    ).observe(gain)
                if gain <= fsteal_overhead:
                    if metrics.enabled:
                        metrics.counter("fsteal.rejected_by_gate").inc()
                    fsteal_solution = None
            if ledger is not None and solved is not None:
                ledger.record_fsteal(
                    solver=solved.solver,
                    cache_status=self._cache_status(solved),
                    objective=solved.objective,
                    warm_started=solved.warm_started,
                    static_makespan=static,
                    gain=gain,
                    modeled_overhead=fsteal_overhead,
                    rejected_by_gate=fsteal_solution is None,
                )
            if fsteal_solution is not None:
                fsteal_applied = True
        elif not self._config.fsteal:
            fsteal_solution = None
        elif fsteal_solution is not None and not self._fsteal_triggered(
            workloads, context, state
        ):
            # OSteal ran but FSteal thresholds are not met: fall back to
            # owner-local processing instead of the enumerated X.
            fsteal_solution = None

        chunks, stolen_edges, migrated, inter_node_stolen = self._realize(
            context, fragment_frontiers, workloads, fsteal_solution
        )

        if context.chaos is not None:
            # each injected solver timeout burned the abandoned solve's
            # budget before a fallback backend could take over
            modeled_overhead += (
                SOLVER_TIMEOUT_SECONDS
                * context.chaos.drain_timeout_charges()
            )

        real_elapsed = time.perf_counter() - started
        mode = self._config.overhead_mode
        if mode == "modeled":
            decision_seconds = modeled_overhead
        elif mode == "measured":
            decision_seconds = real_elapsed
        elif mode == "none":
            decision_seconds = 0.0
        else:
            raise EngineError(f"unknown overhead mode {mode!r}")

        if metrics.enabled and self._config.amortize:
            self._publish_decision_metrics(metrics, state)

        if ledger is not None:
            # committed after the host-clock measurement above so
            # measured-overhead runs stay unperturbed by recording
            ledger.commit(
                group_size=state.group_size,
                active_workers=state.active,
                fsteal_applied=fsteal_applied,
                stolen_edges=stolen_edges,
                migrated_vertices=migrated,
                inter_node_stolen_edges=inter_node_stolen,
            )
            if metrics.enabled:
                self._publish_ledger_metrics(metrics, ledger, iteration)

        return IterationPlan(
            chunks=chunks,
            active_workers=list(state.active),
            decision_seconds=decision_seconds,
            real_decision_seconds=real_elapsed,
            fsteal_applied=fsteal_applied,
            osteal_group_size=state.group_size,
            stolen_edges=stolen_edges,
            migrated_vertices=migrated,
        )

    # --- decision amortization ----------------------------------------
    def _amortized_solve(self, problem: FStealProblem) -> FStealSolution:
        """Solve one FSteal instance through the amortization layer.

        Order of attack: (1) plan cache — a fingerprint hit returns the
        repaired, re-validated previous plan priced against the *live*
        costs (``solver="plan-cache"``); (2) warm-started solve — the
        previous iteration's assignment, repaired to the current
        workloads, seeds the configured solver; the result is cached
        for the next iteration either way.
        """
        state = self._state
        cache = state.plan_cache
        if cache is None:
            return state.solver.solve(problem)
        key = cache.fingerprint(problem.costs, problem.workloads)
        cached = cache.fetch(key, problem)
        if cached is not None:
            state.warm_assignment = cached
            return FStealSolution(
                assignment=cached,
                objective=problem.objective(cached),
                solver="plan-cache",
            )
        warm = None
        if state.warm_assignment is not None:
            warm = repair_assignment(state.warm_assignment, problem)
        solution = state.solver.solve(problem, warm_start=warm)
        if solution.warm_started:
            state.warm_accepts += 1
        cache.store(key, solution.assignment)
        state.warm_assignment = solution.assignment
        return solution

    def _plan_osteal(
        self,
        features: Sequence,
        workloads: np.ndarray,
        context: RunContext,
        tracer,
        cost_model: Optional[_PredictionMemo] = None,
    ):
        """Run Algorithm 2 — amortized (bracket + z-cache) or exact."""
        state = self._state
        if cost_model is None:
            cost_model = _PredictionMemo(self._cost_model)
        # only survivors can appear in a group once workers have been
        # evicted; on healthy runs the enumeration stays 1..n untouched
        sizes = None
        if context.chaos is not None and context.chaos.dead_workers:
            sizes = range(1, len(context.chaos.alive_workers()) + 1)
        if not self._config.amortize:
            return plan_osteal(
                state.tree,
                state.comm_cost,
                features,
                workloads,
                context.fragment_home,
                cost_model,
                state.solver,
                state.p_estimate,
                candidate_sizes=sizes,
                tracer=tracer,
                worker_nodes=state.worker_nodes,
                node_representatives=state.node_reps,
            )
        # z(m) reuse is sound only while the decision inputs are the
        # same up to tolerance: fingerprint the workload vector, the
        # per-fragment cost-model coefficients, and the sync estimate.
        tol = self._config.amortize_tolerance
        g_values = np.array([
            0.0 if f.total_edges == 0
            else cost_model.edge_cost_seconds(f)
            for f in features
        ])
        fp = (
            quantize(np.asarray(workloads, dtype=np.float64), tol),
            quantize(g_values, tol),
            quantize(np.array([state.p_estimate]), tol),
        )
        if state.osteal_last_fp is not None and fp != state.osteal_last_fp:
            state.osteal_invalidations += 1
        state.osteal_last_fp = fp
        z_cache = state.osteal_z.get_or_create(fp, dict)
        decision = plan_osteal(
            state.tree,
            state.comm_cost,
            features,
            workloads,
            context.fragment_home,
            cost_model,
            state.solver,
            state.p_estimate,
            candidate_sizes=sizes,
            tracer=tracer,
            search="bracket",
            z_cache=z_cache,
            start_size=state.group_size or None,
            solve=self._amortized_solve,
            worker_nodes=state.worker_nodes,
            node_representatives=state.node_reps,
        )
        state.osteal_z_reused += decision.reused_sizes
        state.osteal_z_evaluated += decision.evaluated_sizes
        return decision

    def _publish_decision_metrics(self, metrics, state: _RunState) -> None:
        """Mirror cumulative amortization counters into the registry."""
        values = {
            "decision.warm.accepts": state.warm_accepts,
            "decision.osteal.z_reused": state.osteal_z_reused,
            "decision.osteal.z_evaluated": state.osteal_z_evaluated,
            "decision.osteal.invalidations": state.osteal_invalidations,
        }
        if state.plan_cache is not None:
            stats = state.plan_cache.stats()
            values.update({
                "decision.cache.hits": stats["hits"],
                "decision.cache.misses": stats["misses"],
                "decision.cache.invalidations": stats["invalidations"],
                "decision.cache.evictions": stats["evictions"],
            })
        for name, total in values.items():
            counter = metrics.counter(name)
            delta = float(total) - counter.value()
            if delta > 0:
                counter.inc(delta)

    # --- decision ledger ----------------------------------------------
    @staticmethod
    def _ledger_fingerprint(
        features: Sequence, workloads: np.ndarray
    ) -> Optional[list]:
        """Raw snapshot of this decision's inputs, for fingerprinting.

        The frontier feature vectors plus workloads, handed to the
        ledger as a list of parts — it concatenates and log-buckets
        them lazily with the same quantization the plan cache keys on,
        so two decisions with the same resolved fingerprint saw the
        same problem up to the amortization tolerance. (The feature
        vectors are the frontiers' cached copies and never mutate; the
        workload vector is copied here because the engine reuses it.)
        """
        if not features:
            return None
        parts = [f.vector() for f in features]
        parts.append(np.array(workloads, dtype=np.float64))
        return parts

    @staticmethod
    def _cache_status(solution: FStealSolution) -> str:
        """Ledger taxonomy of one FSteal solve: live/warm/cached."""
        if solution.solver == "plan-cache":
            return "cached"
        if solution.warm_started:
            return "warm"
        return "live"

    def _publish_ledger_metrics(
        self, metrics, ledger: Ledger, iteration: int
    ) -> None:
        """Mirror ledger accuracy state into the live registry."""
        state = self._state
        instruments = state.ledger_instruments
        if instruments is None:
            # resolve the registry handles once per run — publishing
            # runs every iteration and name lookups are not free
            instruments = state.ledger_instruments = (
                metrics.counter(
                    "ledger.samples",
                    "prediction-audit samples recorded by the "
                    "decision ledger",
                ),
                metrics.counter(
                    "ledger.skipped_samples",
                    "audit samples dropped for non-positive "
                    "measured cost",
                ),
                metrics.gauge(
                    "ledger.entries",
                    "decisions recorded in the ledger",
                ),
                metrics.gauge(
                    "ledger.drift_z",
                    "EWMA drift z-score of the cost model's "
                    "prediction error",
                ),
                metrics.timeseries(
                    "ledger.rmsre_series",
                    "online RMSRE after each recorded decision",
                ),
            )
        samples, skipped, entries, drift, rmsre_series = instruments
        delta = float(ledger.samples) - samples.value()
        if delta > 0:
            samples.inc(delta)
        delta = float(ledger.skipped_samples) - skipped.value()
        if delta > 0:
            skipped.inc(delta)
        entries.set(ledger.num_entries)
        drift.set(ledger.last_drift_z())
        rmsre = ledger.last_rmsre_online()
        if rmsre is not None:
            rmsre_series.append(rmsre, index=iteration)

    def finish_run(self, context: RunContext) -> Optional[Dict[str, float]]:
        """Decision-amortization summary, surfaced on the run result."""
        del context
        state = self._state
        if state is None:
            return None
        stats: Dict[str, float] = {
            "amortize": bool(self._config.amortize),
            "warm_accepts": int(state.warm_accepts),
            "osteal_z_reused": int(state.osteal_z_reused),
            "osteal_z_evaluated": int(state.osteal_z_evaluated),
            "osteal_invalidations": int(state.osteal_invalidations),
        }
        if state.plan_cache is not None:
            stats.update(state.plan_cache.stats())
        else:
            stats.update({"hits": 0, "misses": 0, "invalidations": 0,
                          "evictions": 0, "entries": 0})
        if state.ledger is not None:
            state.ledger.seal(
                (
                    state.online_rmsre.value
                    if state.online_rmsre.count else None
                ),
                skipped=state.online_rmsre.skipped,
            )
        return stats

    # ------------------------------------------------------------------
    def _observe_cost_model(
        self,
        context: RunContext,
        features: Sequence,
        workloads: np.ndarray,
        cost_model: Optional[_PredictionMemo] = None,
    ) -> None:
        """Score the learned ``g`` against ground truth, online.

        One sample per fragment with active edges, exactly the
        granularity the FSteal coefficients use — the running RMSRE is
        the deployment-time counterpart of Table V's training loss.
        Runs when a metrics registry or the decision ledger is
        attached; the ledger records every sample in feed order so the
        final RMSRE reconstructs bit-identically from its entries.
        """
        state = self._state
        metrics = context.metrics
        ledger = state.ledger
        device = context.timing.device_model
        if cost_model is None:
            cost_model = _PredictionMemo(self._cost_model)
        for fragment, feats in enumerate(features):
            if workloads[fragment] == 0 or feats.total_edges == 0:
                continue
            predicted = cost_model.edge_cost_seconds(feats)
            actual = device.true_edge_cost(feats)
            state.online_rmsre.update(predicted, actual)
            if ledger is not None:
                ledger.record_sample(
                    fragment,
                    int(context.fragment_worker[fragment]),
                    feats,
                    predicted,
                    actual,
                )
        if metrics.enabled and state.online_rmsre.count:
            metrics.gauge(
                "costmodel.rmsre_online",
                "running RMSRE of the learned g vs ground truth",
            ).set(state.online_rmsre.value)
            metrics.gauge("costmodel.samples").set(state.online_rmsre.count)
            metrics.gauge(
                "costmodel.samples_skipped",
                "RMSRE updates dropped for non-positive actual cost",
            ).set(state.online_rmsre.skipped)

    # ------------------------------------------------------------------
    def observe(self, record: IterationRecord, context: RunContext) -> None:
        """Record feedback from the executed iteration."""
        super().observe(record, context)
        state = self._state
        if state is None:
            return
        state.prev_wall = record.wall_seconds
        if record.num_active > 0 and record.breakdown.sync > 0:
            observed_p = record.breakdown.sync / record.num_active
            state.p_estimate = 0.5 * state.p_estimate + 0.5 * observed_p
        if state.ledger is not None:
            busy = np.asarray(record.busy_seconds, dtype=np.float64)
            state.ledger.backfill(
                record.iteration,
                wall_seconds=record.wall_seconds,
                critical_busy_seconds=(
                    float(busy.max()) if busy.size else 0.0
                ),
                compute_seconds=record.breakdown.compute,
                num_active=record.num_active,
            )

    # ------------------------------------------------------------------
    def on_fault(self, event: FaultEvent, context: RunContext) -> None:
        """Rebuild machine-derived state after an injected fault.

        The engine has already applied the fault's semantics
        (``fragment_worker`` eviction, ``context.timing`` swap); this
        hook keeps the arbitrator's own derived structures — comm-cost
        matrix, reduction tree, group membership, z(m) memos —
        consistent with the degraded machine. Warm FSteal assignments
        survive on purpose: ``repair_assignment`` pulls work off
        forbidden (dead) workers, so the next solve still starts warm.
        """
        state = self._state
        if state is None or context.chaos is None:
            return
        if state.ledger is not None:
            worker = event.spec.params.get("worker")
            state.ledger.record_fault(
                iteration=event.iteration,
                kind=event.kind,
                worker=None if worker is None else int(worker),
                heir=(
                    int(event.detail["heir"])
                    if event.kind == "kill_worker" else None
                ),
            )
        if event.kind == "kill_worker":
            dead = int(event.spec.params["worker"])
            heir = int(event.detail["heir"])
            state.heirs[dead] = heir
            was_active = dead in state.active
            state.active = [w for w in state.active if w != dead]
            if was_active and heir not in state.active:
                # the dead worker owned fragments; they moved to the
                # heir, who therefore joins the communication group
                state.active = sorted(state.active + [heir])
            state.group_size = len(state.active)
            self._rebuild_machine_state(context, remeasure=False)
        elif event.kind == "degrade_link":
            self._rebuild_machine_state(context, remeasure=True)

    def _rebuild_machine_state(
        self, context: RunContext, remeasure: bool
    ) -> None:
        """Re-derive comm costs and the reduction tree post-fault."""
        state = self._state
        chaos = context.chaos
        topology = chaos.topology
        if remeasure:
            state.comm_cost = measure_comm_cost_matrix(
                topology,
                repro_config.BYTES_PER_EDGE,
                seed=self._config.bandwidth_seed,
            )
        alive = chaos.alive_workers()
        if len(alive) == topology.num_gpus:
            state.tree = make_reduction_tree(topology)
        else:
            state.tree = _EvictedTree(topology, alive, state.heirs)
        if state.worker_nodes is not None:
            reps = getattr(state.tree, "representatives", None)
            # a machine degraded to a single surviving node has no
            # hierarchical fold left: every survivor may steal freely
            state.node_reps = list(reps) if reps else list(alive)
        # z(m) memos and the OSteal backoff price the *old* machine;
        # force a fresh evaluation at the next opportunity
        state.osteal_z = LruDict(16)
        state.osteal_last_fp = None
        state.osteal_backoff = 0
        state.last_osteal_iteration = -(10**9)

    # ------------------------------------------------------------------
    def _osteal_triggered(
        self, iteration: int, state: _RunState, total_workload: int
    ) -> bool:
        folded = state.group_size < len(state.comm_cost)
        # A folded group must react immediately when the frontier
        # explodes — waiting out the cooldown would serialize a wide
        # phase on too few GPUs.
        if folded and total_workload > 4 * max(
            1, state.workload_at_decision
        ):
            return True
        cooldown = max(state.osteal_backoff, self._config.osteal_cooldown)
        if iteration - state.last_osteal_iteration < cooldown:
            return False
        in_long_tail = state.prev_wall < self._config.t3_runtime_seconds
        return in_long_tail or folded

    @staticmethod
    def _static_makespan(
        costs: np.ndarray, workloads: np.ndarray, fragment_worker: np.ndarray
    ) -> float:
        """Makespan of the no-steal assignment under the same costs."""
        num_workers = costs.shape[1]
        finish = np.zeros(num_workers)
        for fragment, load in enumerate(workloads.tolist()):
            if load == 0:
                continue
            worker = int(fragment_worker[fragment])
            finish[worker] += costs[fragment, worker] * load
        return float(finish.max()) if num_workers else 0.0

    def _fsteal_triggered(
        self, workloads: np.ndarray, context: RunContext, state: _RunState
    ) -> bool:
        per_worker = np.zeros(context.num_workers, dtype=np.int64)
        np.add.at(per_worker, context.fragment_worker, workloads)
        active_loads = per_worker[state.active]
        if active_loads.size <= 1:
            return False
        heaviest = int(active_loads.max())
        gap = heaviest - int(active_loads.min())
        return (
            heaviest >= self._config.t1_min_edges
            and gap >= self._config.t2_imbalance_edges
            and gap >= self._config.t2_imbalance_ratio * heaviest
        )

    def _realize(
        self,
        context: RunContext,
        fragment_frontiers: Sequence[Frontier],
        workloads: np.ndarray,
        fsteal_solution,
    ) -> tuple[List[WorkChunk], int, int, int]:
        """Turn the decision into engine chunks; count stolen work."""
        graph = context.graph
        state = self._state
        metrics = context.metrics
        steal_pairs = remote_edges = hub_hits = inter_counter = None
        if metrics.enabled:
            steal_pairs = metrics.counter(
                "steal.edges_by_pair",
                "edges stolen, labelled by (home GPU, executing GPU)",
            )
            remote_edges = metrics.counter(
                "hubcache.remote_edges",
                "stolen edges that would cross NVLink without caching",
            )
            hub_hits = metrics.counter(
                "hubcache.hit_edges",
                "stolen edges served from the local hub cache",
            )
            if state.worker_nodes is not None:
                inter_counter = metrics.counter(
                    "steal.inter_node_edges",
                    "stolen edges crossing the inter-node fabric",
                )
        worker_nodes = state.worker_nodes
        chunks: List[WorkChunk] = []
        stolen_edges = 0
        migrated = 0
        inter_node_stolen = 0
        if fsteal_solution is None:
            for fragment, frontier in enumerate(fragment_frontiers):
                if not frontier and workloads[fragment] == 0:
                    continue
                worker = int(context.fragment_worker[fragment])
                hub = self._hub_edges(context, fragment, worker,
                                      frontier.vertices)
                chunks.append(
                    WorkChunk(
                        owner=fragment,
                        worker=worker,
                        vertices=frontier.vertices,
                        edges=int(workloads[fragment]),
                        hub_edges=hub,
                    )
                )
                home = int(context.fragment_home[fragment])
                if worker != home:
                    stolen_edges += int(workloads[fragment])
                    migrated += frontier.size
                    if (worker_nodes is not None
                            and worker_nodes[home]
                            != worker_nodes[worker]):
                        inter_node_stolen += int(workloads[fragment])
                        if inter_counter is not None:
                            inter_counter.inc(int(workloads[fragment]))
                    if steal_pairs is not None:
                        steal_pairs.inc(int(workloads[fragment]),
                                        home=home, worker=worker)
                        remote_edges.inc(int(workloads[fragment]))
                        hub_hits.inc(hub)
            return chunks, stolen_edges, migrated, inter_node_stolen

        for fragment, frontier in enumerate(fragment_frontiers):
            if not frontier and workloads[fragment] == 0:
                continue
            for item in self._fragment_assignments(
                graph, fragment, frontier,
                fsteal_solution.assignment[fragment],
                int(workloads[fragment]),
            ):
                hub = self._hub_edges(context, item.owner, item.worker,
                                      item.vertices)
                chunks.append(
                    WorkChunk(
                        owner=item.owner,
                        worker=item.worker,
                        vertices=item.vertices,
                        edges=item.edges,
                        hub_edges=hub,
                    )
                )
                home = int(context.fragment_home[item.owner])
                if item.worker != home:
                    stolen_edges += item.edges
                    migrated += item.vertices.size
                    if (worker_nodes is not None
                            and worker_nodes[home]
                            != worker_nodes[item.worker]):
                        inter_node_stolen += item.edges
                        if inter_counter is not None:
                            inter_counter.inc(item.edges)
                    if steal_pairs is not None:
                        steal_pairs.inc(item.edges, home=home,
                                        worker=item.worker)
                        remote_edges.inc(item.edges)
                        hub_hits.inc(hub)
        return chunks, stolen_edges, migrated, inter_node_stolen

    @staticmethod
    def _fragment_assignments(
        graph,
        fragment: int,
        frontier: Frontier,
        quotas: np.ndarray,
        workload: int,
    ):
        """Realize one fragment's quota row as vertex assignments.

        Normally Algorithm 1's prefix-sum/sorted-search selection; when
        the effective workload is decoupled from the frontier's
        out-edges (pull-mode BFS iterations), quotas are realized as
        edge-count-only chunks instead — there is no frontier vertex
        list to slice.
        """
        if frontier and frontier.work(graph) == workload:
            return select_vertices(graph, fragment, frontier, quotas)
        empty = np.empty(0, dtype=np.int64)
        return [
            VertexAssignment(
                owner=fragment, worker=j, vertices=empty,
                edges=int(quota),
            )
            for j, quota in enumerate(np.asarray(quotas))
            if quota > 0
        ]

    def _hub_edges(
        self,
        context: RunContext,
        fragment: int,
        worker: int,
        vertices: np.ndarray,
    ) -> int:
        state = self._state
        if state is None or state.hub_cache is None:
            return 0
        if worker == int(context.fragment_home[fragment]):
            return 0  # local access needs no cache
        return state.hub_cache.hub_edges(context.graph, vertices)

    # --- deterministic decision-cost model -----------------------------
    @staticmethod
    def _modeled_fsteal_seconds(num_workers: int, frontier_size: int) -> float:
        """FSteal decision latency: solver + policy broadcast.

        Independent of the frontier size — feature extraction is
        charged separately per scanned vertex (``frontier_size`` is
        kept in the signature for that call-site symmetry).
        """
        del frontier_size
        return 1.2e-4 + 1e-6 * num_workers * num_workers

    @staticmethod
    def _modeled_fsteal_cache_seconds(num_workers: int) -> float:
        """FSteal decision latency on a plan-cache hit.

        A hit skips the solve entirely: fingerprint hashing, the
        repair rescale, and the feasibility re-validation remain —
        all linear-ish in the assignment matrix, far below a solve.
        """
        return 2e-5 + 2.5e-7 * num_workers * num_workers

    #: Modeled cost of one fresh z(m) evaluation in the bracket search
    #: (same per-size rate the exhaustive scan model charges).
    _OSTEAL_EVAL_SECONDS = 8e-5

    @staticmethod
    def _modeled_osteal_seconds(num_workers: int) -> float:
        """OSteal decision latency: one solve per candidate group size."""
        return num_workers * 8e-5
