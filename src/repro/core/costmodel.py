"""Learned per-edge compute-cost models (Section III-B, Table V).

The FSteal cost coefficient is ``c_ij = 1/B_ij + g(W_i)``; this module
learns ``g`` from running logs — pairs of (Table-I frontier features,
observed per-edge cost). Four model families match the paper's Exp-7:

* :class:`LinearSGDModel` — linear regression (degree-1 polynomial),
* :class:`PolynomialSGDModel` — the paper's choice: degree-4 polynomial
  trained with SGD under the RMSRE loss (Equation 3),
* :class:`DecisionTreeModel` — CART regression tree (our own),
* :class:`KernelRidgeModel` — RBF kernel ridge regression, the stand-in
  for the paper's RBF-kernel SVR (same hypothesis class family;
  sklearn is unavailable offline).

All models share :class:`CostModel`'s contract: ``fit`` on seconds,
``predict`` seconds, report training wall-time and train RMSRE. Targets
are converted to nanoseconds internally for numerical conditioning.

Training data comes from :func:`collect_training_data`, which replays
GAS algorithms over a corpus of generated graphs and logs per-fragment
frontier features with ground-truth costs — the reproduction of the
paper's "624 graphs from network repository" corpus at laptop scale.
"""

from __future__ import annotations

import abc
import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms import make_algorithm
from repro.errors import CostModelError
from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.features import FrontierFeatures, frontier_features
from repro.hardware.device import DeviceModel
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.partitioners import random_partition

__all__ = [
    "rmsre",
    "OnlineRMSRE",
    "FitReport",
    "CostModel",
    "LinearSGDModel",
    "PolynomialSGDModel",
    "DecisionTreeModel",
    "KernelRidgeModel",
    "UniformCostModel",
    "OracleCostModel",
    "MODEL_FAMILIES",
    "collect_training_data",
    "default_training_corpus",
    "pretrained_default",
]

_NS = 1e9  # targets are scaled to nanoseconds for conditioning


def rmsre(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Root mean squared *relative* error (paper Equation 3's loss)."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if actual.size == 0:
        raise CostModelError("rmsre of an empty sample")
    if np.any(actual == 0):
        raise CostModelError("rmsre undefined for zero actuals")
    return float(np.sqrt(np.mean(((predicted - actual) / actual) ** 2)))


class OnlineRMSRE:
    """Streaming RMSRE over (predicted, actual) pairs.

    The deployment-time counterpart of :func:`rmsre`: the arbitrator
    feeds it one sample per fragment per iteration, so observability
    can report how well the learned ``g`` tracks ground truth *during*
    a run (Exp-7's accuracy/policy-quality link, live).
    """

    __slots__ = ("count", "skipped", "_sum_sq")

    def __init__(self) -> None:
        self.count = 0
        self.skipped = 0
        self._sum_sq = 0.0

    def update(self, predicted: float, actual: float) -> None:
        """Add one sample; non-positive actuals are counted as skipped.

        A relative error against a zero (or negative) ground truth is
        undefined, so such samples cannot enter the statistic — but
        they are not silently lost: ``skipped`` counts them for the
        run summary and the decision ledger.
        """
        if actual <= 0:
            self.skipped += 1
            return
        self.count += 1
        self._sum_sq += ((predicted - actual) / actual) ** 2

    @property
    def value(self) -> float:
        """Current RMSRE (0.0 before any sample)."""
        if self.count == 0:
            return 0.0
        return float(np.sqrt(self._sum_sq / self.count))

    def __repr__(self) -> str:
        return (
            f"OnlineRMSRE(value={self.value:.4f}, n={self.count}, "
            f"skipped={self.skipped})"
        )


@dataclass(frozen=True)
class FitReport:
    """What Table V reports per model: loss and training time."""

    model: str
    train_seconds: float
    train_rmsre: float


class _Standardizer:
    """Column-wise (mean, std) normalization fitted on training data."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, matrix: np.ndarray) -> None:
        """Train on feature rows and per-edge costs (seconds)."""
        self.mean = matrix.mean(axis=0)
        self.std = matrix.std(axis=0)
        self.std[self.std == 0] = 1.0

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the fitted normalization."""
        if self.mean is None:
            raise CostModelError("standardizer used before fit")
        return (matrix - self.mean) / self.std


#: (num_features, degree) -> ((parent column, feature), ...) recurrences.
_EXPAND_PLANS: Dict[Tuple[int, int], Tuple[Tuple[int, int], ...]] = {}


def _expand_plan(d: int, degree: int) -> Tuple[Tuple[int, int], ...]:
    """Column recurrences of the polynomial basis, in emission order.

    Every monomial of degree ``k`` extends a degree ``k-1`` prefix by
    its last feature, so column ``j`` is ``column[parent] * feature``
    — the same left-to-right multiplication chain the naive
    ``combinations_with_replacement`` loop performs, term for term.
    """
    plan = _EXPAND_PLANS.get((d, degree))
    if plan is None:
        index: Dict[Tuple[int, ...], int] = {(): 0}
        steps = []
        for deg in range(1, degree + 1):
            for combo in itertools.combinations_with_replacement(
                range(d), deg
            ):
                index[combo] = len(steps) + 1
                steps.append((index[combo[:-1]], combo[-1]))
        plan = _EXPAND_PLANS[(d, degree)] = tuple(steps)
    return plan


def _polynomial_expand(matrix: np.ndarray, degree: int) -> np.ndarray:
    """Full polynomial basis (with cross terms) up to ``degree``.

    Each column multiplies its degree ``k-1`` parent column by one
    feature — the identical IEEE-754 operation sequence (``1*a``,
    ``(1*a)*b``, ...) the combination-by-combination rebuild performs,
    so results are bit-identical while each product is computed once.
    Single rows (the scheduler's per-frontier predictions) run the
    recurrence on scalars instead of 1-element arrays.
    """
    n, d = matrix.shape
    plan = _expand_plan(d, degree)
    out = np.empty((n, len(plan) + 1))
    if n == 1:
        row = matrix[0]
        values = [1.0]
        append = values.append
        for parent, feature in plan:
            append(values[parent] * row[feature])
        out[0] = values
        return out
    out[:, 0] = 1.0
    for column, (parent, feature) in enumerate(plan, start=1):
        np.multiply(
            out[:, parent], matrix[:, feature], out=out[:, column]
        )
    return out


# ----------------------------------------------------------------------
class CostModel(abc.ABC):
    """Estimator of per-edge compute cost from frontier features."""

    name: str = "abstract"

    @abc.abstractmethod
    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Train on feature rows and per-edge costs (seconds)."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows."""

    def edge_cost_seconds(self, features: FrontierFeatures) -> float:
        """Predict for one frontier (convenience for the scheduler)."""
        return float(self.predict(features.vector()[None, :])[0])

    def _check_training_set(
        self, features: np.ndarray, costs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        features = np.asarray(features, dtype=np.float64)
        costs = np.asarray(costs, dtype=np.float64)
        if features.ndim != 2 or costs.ndim != 1:
            raise CostModelError("expected 2-D features and 1-D costs")
        if features.shape[0] != costs.size or costs.size == 0:
            raise CostModelError("empty or mismatched training set")
        if np.any(costs <= 0):
            raise CostModelError("costs must be positive")
        return features, costs


class PolynomialSGDModel(CostModel):
    """Degree-``d`` polynomial trained by mini-batch SGD on RMSRE.

    The paper's model: polynomial regression (degree 4 in Exp-7),
    SGD optimizer, relative-error loss. Momentum and a 1/t learning
    rate decay keep it stable on standardized features.
    """

    name = "polynomial"

    def __init__(
        self,
        degree: int = 4,
        epochs: int = 120,
        batch_size: int = 64,
        learning_rate: float = 0.02,
        momentum: float = 0.5,
        seed: int = 0,
    ) -> None:
        if degree < 1:
            raise CostModelError("polynomial degree must be >= 1")
        self._degree = int(degree)
        self._epochs = int(epochs)
        self._batch = int(batch_size)
        self._lr = float(learning_rate)
        self._momentum = float(momentum)
        self._seed = int(seed)
        self._scaler = _Standardizer()
        self._design_scaler = _Standardizer()
        self._weights: Optional[np.ndarray] = None
        if degree == 1:
            self.name = "linear"

    @staticmethod
    def _squash(features: np.ndarray) -> np.ndarray:
        """Log-compress the heavy-tailed degree features.

        Degree ranges span four orders of magnitude; raising raw
        z-scores to the 4th power would blow SGD up, so features are
        squashed before standardization and clipped after.
        """
        return np.sign(features) * np.log1p(np.abs(features))

    def _design(self, features: np.ndarray, fitting: bool = False) -> np.ndarray:
        squashed = self._squash(features)
        if fitting:
            self._scaler.fit(squashed)
        scaled = np.clip(self._scaler.transform(squashed), -4.0, 4.0)
        design = _polynomial_expand(scaled, self._degree)
        if fitting:
            self._design_scaler.fit(design)
            self._design_scaler.std[0] = 1.0  # keep the bias column
            self._design_scaler.mean[0] = 0.0
        return self._design_scaler.transform(design)

    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Mini-batch SGD on the RMSRE objective (Equation 3).

        The loss ``mean(((w . phi(x) - t)/t)^2)`` is exactly plain
        least squares on target-normalized rows ``phi(x)/t`` against
        the constant 1 — that reformulation is what SGD optimizes
        here, with per-column scale normalization (folded back into
        the weights afterwards) for conditioning. Identical objective,
        far better convergence than the raw weighted gradient.
        """
        features, costs = self._check_training_set(features, costs)
        start = time.perf_counter()
        design = self._design(features, fitting=True)
        target = costs * _NS
        normalized = design / target[:, None]
        column_scale = normalized.std(axis=0)
        column_scale[column_scale == 0] = 1.0
        normalized = normalized / column_scale

        rng = np.random.default_rng(self._seed)
        num_samples, num_params = normalized.shape
        weights = np.zeros(num_params)
        velocity = np.zeros(num_params)
        # small corpora get extra epochs so the optimizer always takes
        # a comparable number of steps; the decay horizon tracks it
        batches_per_epoch = max(1, -(-num_samples // self._batch))
        epochs = max(self._epochs, -(-4000 // batches_per_epoch))
        total_steps = epochs * batches_per_epoch
        step = 0
        for __ in range(epochs):
            order = rng.permutation(num_samples)
            for lo in range(0, num_samples, self._batch):
                batch = order[lo: lo + self._batch]
                a = normalized[batch]
                residual = a @ weights - 1.0
                grad = 2.0 * residual @ a / batch.size
                norm = float(np.linalg.norm(grad))
                if norm > 1.0:  # clip runaway outlier batches
                    grad = grad / norm
                step += 1
                lr = self._lr / (1.0 + 3.0 * step / total_steps)
                velocity = self._momentum * velocity - lr * grad
                weights = weights + velocity
        self._weights = weights / column_scale
        train_time = time.perf_counter() - start
        return FitReport(
            self.name, train_time, rmsre(self.predict(features), costs)
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows."""
        if self._weights is None:
            raise CostModelError("model used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        raw = self._design(features) @ self._weights
        # costs are physically positive; clamp runaway extrapolations
        return np.maximum(raw, 0.01) / _NS

    # ------------------------------------------------------------------
    # Persistence: a trained polynomial is three arrays + a degree
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Write the fitted model as a compressed ``.npz`` archive."""
        if self._weights is None:
            raise CostModelError("cannot save an unfitted model")
        np.savez_compressed(
            path,
            format_version=np.array([1]),
            degree=np.array([self._degree]),
            weights=self._weights,
            scaler_mean=self._scaler.mean,
            scaler_std=self._scaler.std,
            design_mean=self._design_scaler.mean,
            design_std=self._design_scaler.std,
        )

    @classmethod
    def load(cls, path) -> "PolynomialSGDModel":
        """Read a model written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            if "format_version" not in data or int(
                data["format_version"][0]
            ) != 1:
                raise CostModelError(f"{path}: unsupported model archive")
            model = cls(degree=int(data["degree"][0]))
            model._weights = data["weights"]
            model._scaler.mean = data["scaler_mean"]
            model._scaler.std = data["scaler_std"]
            model._design_scaler.mean = data["design_mean"]
            model._design_scaler.std = data["design_std"]
        return model


class LinearSGDModel(PolynomialSGDModel):
    """Linear regression under the same SGD/RMSRE training loop."""

    name = "linear"

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("degree", 1)
        if kwargs["degree"] != 1:
            raise CostModelError("LinearSGDModel must have degree 1")
        super().__init__(**kwargs)


# ----------------------------------------------------------------------
class DecisionTreeModel(CostModel):
    """CART regression tree on the log-cost (geometric-mean leaves).

    Splitting on the log target makes leaf means optimal for relative
    error, matching the RMSRE evaluation.
    """

    name = "tree"

    def __init__(
        self,
        max_depth: int = 8,
        min_leaf: int = 8,
        num_thresholds: int = 16,
    ) -> None:
        self._max_depth = int(max_depth)
        self._min_leaf = int(min_leaf)
        self._num_thresholds = int(num_thresholds)
        self._nodes: List[tuple] = []  # (feature, threshold, left, right)
        #   leaves are (-1, value, -1, -1)
        # columnar mirror of _nodes for batched prediction
        self._node_feature: Optional[np.ndarray] = None
        self._node_value: Optional[np.ndarray] = None
        self._node_left: Optional[np.ndarray] = None
        self._node_right: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Train on feature rows and per-edge costs (seconds)."""
        features, costs = self._check_training_set(features, costs)
        start = time.perf_counter()
        log_target = np.log(costs * _NS)
        self._nodes = []
        self._build(features, log_target, depth=0)
        self._columnize()
        train_time = time.perf_counter() - start
        return FitReport(
            self.name, train_time, rmsre(self.predict(features), costs)
        )

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> int:
        node_id = len(self._nodes)
        self._nodes.append(None)  # placeholder
        if depth >= self._max_depth or y.size < 2 * self._min_leaf:
            self._nodes[node_id] = (-1, float(y.mean()), -1, -1)
            return node_id
        best = None  # (sse, feature, threshold, mask)
        base_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            thresholds = np.unique(
                np.quantile(
                    column,
                    np.linspace(0.05, 0.95, self._num_thresholds),
                )
            )
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left < self._min_leaf or y.size - n_left < self._min_leaf:
                    continue
                left, right = y[mask], y[~mask]
                sse = float(
                    ((left - left.mean()) ** 2).sum()
                    + ((right - right.mean()) ** 2).sum()
                )
                if best is None or sse < best[0]:
                    best = (sse, feature, threshold, mask)
        if best is None or best[0] >= base_sse - 1e-12:
            self._nodes[node_id] = (-1, float(y.mean()), -1, -1)
            return node_id
        __, feature, threshold, mask = best
        left_id = self._build(x[mask], y[mask], depth + 1)
        right_id = self._build(x[~mask], y[~mask], depth + 1)
        self._nodes[node_id] = (feature, float(threshold), left_id, right_id)
        return node_id

    def _columnize(self) -> None:
        """Mirror ``_nodes`` into parallel arrays for batched traversal."""
        nodes = self._nodes
        self._node_feature = np.array(
            [n[0] for n in nodes], dtype=np.int64
        )
        self._node_value = np.array([n[1] for n in nodes])
        self._node_left = np.array([n[2] for n in nodes], dtype=np.int64)
        self._node_right = np.array([n[3] for n in nodes], dtype=np.int64)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows.

        All rows descend the tree together, one level per pass: rows
        still at internal nodes compare their split feature and hop to
        a child, rows at leaves stay put. At most ``max_depth`` passes
        of O(rows) numpy work instead of a Python loop per row.
        """
        if not self._nodes:
            raise CostModelError("model used before fit")
        if self._node_feature is None:
            self._columnize()  # tree built before columnar mirror existed
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        num_rows = features.shape[0]
        position = np.zeros(num_rows, dtype=np.int64)
        rows = np.arange(num_rows)
        while True:
            split = self._node_feature[position]
            active = split >= 0
            if not np.any(active):
                break
            at = position[active]
            go_left = (
                features[rows[active], split[active]]
                <= self._node_value[at]
            )
            position[active] = np.where(
                go_left, self._node_left[at], self._node_right[at]
            )
        return np.exp(self._node_value[position]) / _NS


# ----------------------------------------------------------------------
class KernelRidgeModel(CostModel):
    """RBF kernel ridge regression on the log-cost (SVR stand-in).

    Same hypothesis family as the paper's RBF SVR; ridge instead of
    epsilon-insensitive loss keeps the solver a dense linear system.
    Training data is capped to keep the O(n^3) solve bounded.
    """

    name = "svr"

    def __init__(
        self,
        alpha: float = 1e-3,
        max_train: int = 1500,
        seed: int = 0,
    ) -> None:
        self._alpha = float(alpha)
        self._max_train = int(max_train)
        self._seed = int(seed)
        self._scaler = _Standardizer()
        self._support: Optional[np.ndarray] = None
        self._coef: Optional[np.ndarray] = None
        self._gamma: float = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = (
            (a**2).sum(axis=1)[:, None]
            + (b**2).sum(axis=1)[None, :]
            - 2.0 * a @ b.T
        )
        return np.exp(-self._gamma * np.maximum(sq, 0.0))

    def _preprocess(self, features: np.ndarray) -> np.ndarray:
        """Log-squash heavy-tailed degree features, then standardize.

        Without the squash, frontiers slightly outside the training
        degree range land far from every support vector and the kernel
        collapses to its prior — catastrophic extrapolation.
        """
        squashed = np.sign(features) * np.log1p(np.abs(features))
        return self._scaler.transform(squashed)

    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Train on feature rows and per-edge costs (seconds)."""
        features, costs = self._check_training_set(features, costs)
        start = time.perf_counter()
        rng = np.random.default_rng(self._seed)
        if features.shape[0] > self._max_train:
            keep = rng.choice(
                features.shape[0], self._max_train, replace=False
            )
            sub_x, sub_y = features[keep], costs[keep]
        else:
            sub_x, sub_y = features, costs
        self._scaler.fit(np.sign(sub_x) * np.log1p(np.abs(sub_x)))
        scaled = self._preprocess(sub_x)
        # median heuristic for the RBF width
        sample = scaled[rng.choice(scaled.shape[0],
                                   min(256, scaled.shape[0]),
                                   replace=False)]
        dists = (
            (sample**2).sum(axis=1)[:, None]
            + (sample**2).sum(axis=1)[None, :]
            - 2.0 * sample @ sample.T
        )
        positive = dists[dists > 0]
        # all-duplicate rows leave no positive distances; the median of
        # the empty slice is nan (which is truthy — `or 1.0` won't fire)
        median_sq = float(np.median(positive)) if positive.size else 1.0
        if not np.isfinite(median_sq) or median_sq <= 0.0:
            median_sq = 1.0
        self._gamma = 1.0 / median_sq
        gram = self._kernel(scaled, scaled)
        gram[np.diag_indices_from(gram)] += self._alpha
        self._support = scaled
        self._coef = np.linalg.solve(gram, np.log(sub_y * _NS))
        train_time = time.perf_counter() - start
        return FitReport(
            self.name, train_time, rmsre(self.predict(features), costs)
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows."""
        if self._coef is None or self._support is None:
            raise CostModelError("model used before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        scaled = self._preprocess(features)
        return np.exp(self._kernel(scaled, self._support) @ self._coef) / _NS


# ----------------------------------------------------------------------
class UniformCostModel(CostModel):
    """Degenerate baseline: a single constant cost (the ablation's
    "no cost model" arm — ``c_ij`` reduces to pure bandwidth)."""

    name = "uniform"

    def __init__(self, cost_seconds: float = 0.75e-9) -> None:
        self._cost = float(cost_seconds)

    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Train on feature rows and per-edge costs (seconds)."""
        features, costs = self._check_training_set(features, costs)
        start = time.perf_counter()
        self._cost = float(np.exp(np.mean(np.log(costs))))
        return FitReport(
            self.name,
            time.perf_counter() - start,
            rmsre(self.predict(features), costs),
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.full(features.shape[0], self._cost)


class OracleCostModel(CostModel):
    """Wraps the ground-truth device model (Exp-7's 'exact values')."""

    name = "oracle"

    def __init__(self, device: Optional[DeviceModel] = None) -> None:
        self._device = device or DeviceModel()

    def fit(self, features: np.ndarray, costs: np.ndarray) -> FitReport:
        """Train on feature rows and per-edge costs (seconds)."""
        features, costs = self._check_training_set(features, costs)
        return FitReport(self.name, 0.0, rmsre(self.predict(features), costs))

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict per-edge costs (seconds) for feature rows."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        out = np.empty(features.shape[0])
        for row in range(features.shape[0]):
            f = features[row]
            out[row] = self._device.true_edge_cost(
                FrontierFeatures(
                    avg_in_degree=f[0], avg_out_degree=f[1],
                    in_degree_range=f[2], out_degree_range=f[3],
                    gini=f[4], entropy=f[5], size=1, total_edges=1,
                )
            )
        return out

    def edge_cost_seconds(self, features: FrontierFeatures) -> float:
        return self._device.true_edge_cost(features)


#: Table V's model families, by name.
MODEL_FAMILIES: dict[str, Callable[[], CostModel]] = {
    "linear": LinearSGDModel,
    "polynomial": PolynomialSGDModel,
    "tree": DecisionTreeModel,
    "svr": KernelRidgeModel,
}


# ----------------------------------------------------------------------
# Training-log collection
# ----------------------------------------------------------------------
def collect_training_data(
    graphs: Sequence[CSRGraph],
    algorithms: Sequence[str] = ("bfs", "sssp", "wcc", "pr"),
    num_fragments: int = 8,
    device: Optional[DeviceModel] = None,
    seed: int = 0,
    max_iterations: int = 300,
) -> Tuple[np.ndarray, np.ndarray]:
    """Replay algorithms over graphs and log (features, observed cost).

    Each iteration of each algorithm on each graph contributes one
    sample per fragment with a non-empty frontier, exactly as the paper
    treats "the running log of each iteration as independent training
    samples". Observed cost is the device model's ground truth —
    including its measurement pseudo-noise.
    """
    device = device or DeviceModel()
    rows: List[np.ndarray] = []
    targets: List[float] = []
    for graph in graphs:
        weighted = (
            graph
            if graph.is_weighted
            else generators.with_random_weights(graph, seed=seed)
        )
        partition = random_partition(weighted, num_fragments, seed=seed)
        for algorithm_name in algorithms:
            algorithm = make_algorithm(algorithm_name)
            state = algorithm.init(weighted)
            while state.frontier and state.iteration < max_iterations:
                per_fragment = state.frontier.split_by_owner(
                    partition.owner, num_fragments
                )
                for fragment in per_fragment:
                    if not fragment:
                        continue
                    feats = frontier_features(weighted, fragment.vertices)
                    rows.append(feats.vector())
                    targets.append(device.true_edge_cost(feats))
                state.frontier = algorithm.step(weighted, state)
                state.iteration += 1
    if not rows:
        raise CostModelError("training corpus produced no samples")
    return np.stack(rows), np.asarray(targets)


def default_training_corpus(seed: int = 7) -> List[CSRGraph]:
    """A small, diverse generator zoo standing in for the paper's
    624-graph training corpus.

    Spans the three benchmark domains *including benchmark-scale
    instances* — training only on tiny graphs would leave deployment
    frontiers out of distribution, which degrades interpolating
    models (kernel methods especially) far more than their held-out
    RMSRE suggests.
    """
    return [
        generators.rmat(10, 8, seed=seed),
        generators.rmat(11, 16, seed=seed + 1, a=0.62,
                        b=0.19 / 1.1, c=0.19 / 1.1),
        generators.rmat(12, 4, seed=seed + 2),
        generators.rmat(13, 10, seed=seed + 10),
        generators.rmat(14, 6, seed=seed + 11, a=0.6,
                        b=0.2, c=0.15),
        generators.erdos_renyi(3000, 24000, seed=seed + 3),
        generators.web_graph(4000, 10, seed=seed + 4),
        generators.web_graph(8000, 6, locality=0.95, window=64,
                             seed=seed + 5),
        generators.web_graph(20000, 12, seed=seed + 12),
        generators.road_network(40, 40, seed=seed + 6),
        generators.road_network(80, 25, seed=seed + 7),
        generators.road_network(8, 300, seed=seed + 13),
        generators.small_world(4000, k=4, seed=seed + 8),
        generators.star(2000),
        generators.grid_2d(50, 40, seed=seed + 9),
    ]


_PRETRAINED: Optional[PolynomialSGDModel] = None


def pretrained_default(
    force_retrain: bool = False,
    tracer: Tracer = NULL_TRACER,
) -> PolynomialSGDModel:
    """The library's default learned ``g``: degree-4 polynomial, cached.

    Trains once per process on :func:`default_training_corpus`
    (a couple of seconds); later calls reuse the cached model. Pass a
    tracer to span the corpus replay and the SGD fit — by far the
    largest host-time cost of a cold first run.
    """
    global _PRETRAINED
    if _PRETRAINED is None or force_retrain:
        with tracer.span("costmodel.collect", cat="costmodel"):
            features, costs = collect_training_data(
                default_training_corpus()
            )
        model = PolynomialSGDModel()
        with tracer.span("costmodel.fit", cat="costmodel",
                         model=model.name,
                         samples=int(costs.size)) as fit_span:
            report = model.fit(features, costs)
            fit_span.set(train_rmsre=report.train_rmsre,
                         train_seconds=report.train_seconds)
        _PRETRAINED = model
    return _PRETRAINED
