"""Cost-model v2: train ``g`` from the run registry's own ledgers.

The paper trains its cost model once, offline, on a synthetic corpus
(:func:`repro.core.costmodel.collect_training_data`). This module
closes the stronger feedback loop: every GUM run already records one
prediction-audit sample per fragment per iteration in its decision
ledger — ``(frontier features, predicted, measured per-edge cost)`` in
exact RMSRE feed order — so a registry of recorded runs *is* a
training corpus for the workloads actually being run.

Three pieces:

* :func:`harvest` walks the run registry (or an explicit list of run
  references, including the committed ``benchmarks/reference``
  directories), extracts every positive-actual ledger sample with its
  per-run / per-iteration / per-GPU provenance, and deduplicates runs
  with byte-identical *workload fingerprints* — the virtual clock is
  deterministic given the fingerprint, so a second run of the same
  workload contributes byte-identical samples and would only bias the
  fit. Runs with *different* fingerprints are pooled, never merged:
  each keeps its own provenance row.
* :func:`fit_candidates` trains candidate model families (the shipped
  polynomial, the CART tree, RBF kernel ridge) with k-fold held-out
  RMSRE reporting, always scoring the shipped pretrained polynomial on
  the *same* held-out folds as the baseline to beat.
* :func:`save_artifact` / :func:`load_artifact` package a fitted model
  as a versioned ``repro-costmodel/1`` JSON artifact — weights plus
  fit provenance — loadable anywhere a cost model is accepted:
  ``repro.run(cost_model="model.json")``, ``--cost-model model.json``,
  or ``GumConfig(cost_model=...)``.

The CLI wrapper is ``repro costmodel fit --from-runs``; the validation
counterpart (re-execute a recorded trace under a candidate model) is
:mod:`repro.replay`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.costmodel import (
    MODEL_FAMILIES,
    CostModel,
    DecisionTreeModel,
    KernelRidgeModel,
    LinearSGDModel,
    PolynomialSGDModel,
    UniformCostModel,
    pretrained_default,
    rmsre,
)
from repro.errors import CostModelError
from repro.obs.ledger import Ledger
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "COSTMODEL_SCHEMA",
    "CANDIDATE_FAMILIES",
    "CorpusRun",
    "HarvestedCorpus",
    "CandidateReport",
    "FitOutcome",
    "harvest",
    "fit_candidates",
    "model_to_params",
    "model_from_params",
    "save_artifact",
    "load_artifact",
    "artifact_label",
]

COSTMODEL_SCHEMA = "repro-costmodel/1"

#: Families ``--model auto`` tries, in evaluation order.
CANDIDATE_FAMILIES = ("polynomial", "tree", "svr")


# ----------------------------------------------------------------------
# Harvesting: run registry -> training corpus
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CorpusRun:
    """Provenance of one harvested run."""

    run_id: str
    workload: Dict[str, object]
    model: str
    samples: int
    iterations: int

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "run_id": self.run_id,
            "workload": dict(self.workload),
            "model": self.model,
            "samples": self.samples,
            "iterations": self.iterations,
        }


@dataclass
class HarvestedCorpus:
    """Pooled ledger samples with row-level provenance.

    ``features`` (N, 6) and ``costs`` (N,) feed ``CostModel.fit``
    directly; ``iterations``, ``gpus``, and ``run_index`` (an index
    into :attr:`runs`) identify where every row came from.
    """

    features: np.ndarray
    costs: np.ndarray
    iterations: np.ndarray
    gpus: np.ndarray
    run_index: np.ndarray
    runs: List[CorpusRun] = field(default_factory=list)
    #: runs skipped because an earlier run had the same workload
    #: fingerprint (their ledgers are byte-identical by determinism)
    duplicates: List[dict] = field(default_factory=list)
    #: runs skipped because their ledger held no positive-cost sample
    empty_runs: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.costs.size)

    def provenance(self) -> dict:
        """JSON-friendly corpus summary for artifact embedding."""
        return {
            "samples": len(self),
            "runs": [run.as_dict() for run in self.runs],
            "duplicates": [dict(d) for d in self.duplicates],
            "empty_runs": list(self.empty_runs),
        }


def _fingerprint_key(workload: Dict[str, object]) -> str:
    return json.dumps(workload, sort_keys=True)


def harvest(registry, refs: Optional[Sequence[str]] = None,
            tracer: Tracer = NULL_TRACER) -> HarvestedCorpus:
    """Extract a training corpus from recorded runs.

    Parameters
    ----------
    registry:
        A :class:`repro.runs.registry.RunRegistry` (resolves ids,
        prefixes, ``latest``, and filesystem paths such as the
        committed reference directories).
    refs:
        Explicit run references to harvest, in order. ``None`` walks
        every run-kind manifest in the registry, oldest first.

    Runs whose workload fingerprint matches an earlier harvested run
    are skipped and reported in :attr:`HarvestedCorpus.duplicates` —
    the virtual clock is deterministic, so their ledgers are
    byte-identical and pooling them would double-weight one workload.
    Distinct fingerprints are pooled side by side (never merged):
    every sample row keeps its run index. Runs without a ledger, or
    whose ledger holds no positive-cost sample (a run that never
    consulted the model), are skipped and reported too.
    """
    with tracer.span("costmodel.harvest", cat="costmodel"):
        if refs is None:
            manifests = [m for m in registry.manifests()
                         if m.get("kind") == "run"]
            pairs = [(m.get("id", "?"), m.get("id", "?"), m)
                     for m in manifests]
        else:
            pairs = []
            for ref in refs:
                manifest = registry.load_manifest(ref)
                pairs.append(
                    (manifest.get("id", str(ref)), str(ref), manifest)
                )
        seen: Dict[str, str] = {}
        runs: List[CorpusRun] = []
        duplicates: List[dict] = []
        empty_runs: List[str] = []
        features: List[np.ndarray] = []
        costs: List[np.ndarray] = []
        iterations: List[np.ndarray] = []
        gpus: List[np.ndarray] = []
        run_index: List[np.ndarray] = []
        for run_id, ref, manifest in pairs:
            workload = dict(
                manifest.get("fingerprint", {}).get("workload", {})
            )
            key = _fingerprint_key(workload)
            if key in seen:
                duplicates.append(
                    {"run_id": run_id, "duplicate_of": seen[key]}
                )
                continue
            try:
                ledger = Ledger.from_dict(registry.load_ledger(ref))
                samples = ledger.export_samples()
            except Exception:
                # no archived ledger (stateless policy) or an empty
                # one (model never consulted): nothing to harvest
                empty_runs.append(run_id)
                continue
            seen[key] = run_id
            features.append(samples.features)
            costs.append(samples.costs)
            iterations.append(samples.iterations)
            gpus.append(samples.gpus)
            run_index.append(
                np.full(samples.costs.size, len(runs), dtype=np.int64)
            )
            runs.append(CorpusRun(
                run_id=run_id,
                workload=workload,
                model=ledger.model,
                samples=int(samples.costs.size),
                iterations=ledger.num_entries,
            ))
        if not features:
            raise CostModelError(
                "no harvestable runs: every candidate was a duplicate, "
                "unledgered, or sample-free "
                f"({len(duplicates)} duplicates, "
                f"{len(empty_runs)} empty)"
            )
        return HarvestedCorpus(
            features=np.concatenate(features, axis=0),
            costs=np.concatenate(costs),
            iterations=np.concatenate(iterations),
            gpus=np.concatenate(gpus),
            run_index=np.concatenate(run_index),
            runs=runs,
            duplicates=duplicates,
            empty_runs=empty_runs,
        )


# ----------------------------------------------------------------------
# Candidate fitting with held-out RMSRE
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateReport:
    """Held-out accuracy of one candidate family."""

    family: str
    fold_rmsre: Tuple[float, ...]
    cv_rmsre: float

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "family": self.family,
            "fold_rmsre": [float(v) for v in self.fold_rmsre],
            "cv_rmsre": float(self.cv_rmsre),
        }


@dataclass
class FitOutcome:
    """A chosen, refit model plus everything the gate needs to judge it."""

    model: CostModel
    family: str
    candidates: Dict[str, CandidateReport]
    baseline: CandidateReport  # the shipped polynomial, same folds
    train_rmsre: float
    train_seconds: float
    folds: int
    holdout_frac: Optional[float]
    seed: int
    corpus: HarvestedCorpus

    @property
    def holdout_rmsre(self) -> float:
        """Held-out RMSRE of the chosen family."""
        return self.candidates[self.family].cv_rmsre

    @property
    def beats_shipped(self) -> bool:
        """Did the chosen family beat the shipped model held out?"""
        return self.holdout_rmsre <= self.baseline.cv_rmsre

    def report(self) -> dict:
        """JSON-friendly fit report (the ``--report`` payload)."""
        return {
            "family": self.family,
            "holdout_rmsre": float(self.holdout_rmsre),
            "shipped_rmsre": float(self.baseline.cv_rmsre),
            "beats_shipped": bool(self.beats_shipped),
            "train_rmsre": float(self.train_rmsre),
            "train_seconds": float(self.train_seconds),
            "folds": int(self.folds),
            "holdout_frac": (
                None if self.holdout_frac is None
                else float(self.holdout_frac)
            ),
            "seed": int(self.seed),
            "candidates": {
                name: report.as_dict()
                for name, report in sorted(self.candidates.items())
            },
            "baseline": self.baseline.as_dict(),
            "corpus": self.corpus.provenance(),
        }


def _splits(n: int, folds: int, holdout_frac: Optional[float],
            seed: int) -> List[Tuple[np.ndarray, np.ndarray]]:
    """(train, test) index pairs: k folds, or one fractional holdout."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    if holdout_frac is not None:
        if not 0.0 < holdout_frac < 1.0:
            raise CostModelError(
                f"holdout fraction must be in (0, 1), got {holdout_frac}"
            )
        cut = max(1, min(n - 1, int(round(n * holdout_frac))))
        return [(order[cut:], order[:cut])]
    if folds < 2 or folds > n:
        raise CostModelError(
            f"need 2 <= folds <= samples, got folds={folds} for "
            f"{n} samples"
        )
    parts = np.array_split(order, folds)
    return [
        (np.concatenate([parts[j] for j in range(folds) if j != k]),
         parts[k])
        for k in range(folds)
    ]


def fit_candidates(
    corpus: HarvestedCorpus,
    model: str = "auto",
    folds: int = 5,
    holdout_frac: Optional[float] = None,
    seed: int = 0,
    tracer: Tracer = NULL_TRACER,
) -> FitOutcome:
    """Cross-validate candidate families, refit the winner on it all.

    ``model`` is a family name from :data:`CANDIDATE_FAMILIES` (or any
    :data:`repro.core.costmodel.MODEL_FAMILIES` member), or ``"auto"``
    to pick the family with the lowest held-out RMSRE. The shipped
    pretrained polynomial is always evaluated (without refitting) on
    the identical held-out folds, so ``outcome.beats_shipped`` is an
    apples-to-apples verdict.
    """
    if model == "auto":
        families = list(CANDIDATE_FAMILIES)
    elif model in MODEL_FAMILIES:
        families = [model]
    else:
        raise CostModelError(
            f"unknown model family {model!r}; known: auto, "
            + ", ".join(sorted(MODEL_FAMILIES))
        )
    X, y = corpus.features, corpus.costs
    splits = _splits(len(corpus), folds, holdout_frac, seed)
    shipped = pretrained_default()
    candidates: Dict[str, CandidateReport] = {}
    baseline_folds: List[float] = []
    with tracer.span("costmodel.crossval", cat="costmodel",
                     families=",".join(families),
                     samples=len(corpus)):
        for train, test in splits:
            baseline_folds.append(
                rmsre(shipped.predict(X[test]), y[test])
            )
        for family in families:
            fold_scores = []
            for train, test in splits:
                candidate = MODEL_FAMILIES[family]()
                candidate.fit(X[train], y[train])
                fold_scores.append(
                    rmsre(candidate.predict(X[test]), y[test])
                )
            candidates[family] = CandidateReport(
                family=family,
                fold_rmsre=tuple(fold_scores),
                cv_rmsre=float(np.mean(fold_scores)),
            )
    baseline = CandidateReport(
        family="shipped-polynomial",
        fold_rmsre=tuple(baseline_folds),
        cv_rmsre=float(np.mean(baseline_folds)),
    )
    winner = min(candidates, key=lambda name: candidates[name].cv_rmsre)
    final = MODEL_FAMILIES[winner]()
    with tracer.span("costmodel.fit", cat="costmodel",
                     model=final.name, samples=len(corpus)) as span:
        fit_report = final.fit(X, y)
        span.set(train_rmsre=fit_report.train_rmsre,
                 train_seconds=fit_report.train_seconds)
    return FitOutcome(
        model=final,
        family=winner,
        candidates=candidates,
        baseline=baseline,
        train_rmsre=fit_report.train_rmsre,
        train_seconds=fit_report.train_seconds,
        folds=len(splits) if holdout_frac is None else 1,
        holdout_frac=holdout_frac,
        seed=seed,
        corpus=corpus,
    )


# ----------------------------------------------------------------------
# The repro-costmodel/1 artifact
# ----------------------------------------------------------------------
def _require(params: dict, *keys: str) -> list:
    missing = [key for key in keys if key not in params]
    if missing:
        raise CostModelError(
            f"cost-model artifact parameters missing {missing}"
        )
    return [params[key] for key in keys]


def model_to_params(model: CostModel) -> Tuple[str, dict]:
    """``(family, parameters)`` of a fitted model, JSON-ready."""
    if isinstance(model, PolynomialSGDModel):  # LinearSGD subclasses it
        if model._weights is None:
            raise CostModelError("cannot serialize an unfitted model")
        family = "linear" if model._degree == 1 else "polynomial"
        return family, {
            "degree": int(model._degree),
            "weights": model._weights.tolist(),
            "scaler_mean": model._scaler.mean.tolist(),
            "scaler_std": model._scaler.std.tolist(),
            "design_mean": model._design_scaler.mean.tolist(),
            "design_std": model._design_scaler.std.tolist(),
        }
    if isinstance(model, DecisionTreeModel):
        if not model._nodes:
            raise CostModelError("cannot serialize an unfitted model")
        if model._node_feature is None:
            model._columnize()
        return "tree", {
            "node_feature": model._node_feature.tolist(),
            "node_value": model._node_value.tolist(),
            "node_left": model._node_left.tolist(),
            "node_right": model._node_right.tolist(),
        }
    if isinstance(model, KernelRidgeModel):
        if model._coef is None or model._support is None:
            raise CostModelError("cannot serialize an unfitted model")
        return "svr", {
            "support": model._support.tolist(),
            "coef": model._coef.tolist(),
            "gamma": float(model._gamma),
            "scaler_mean": model._scaler.mean.tolist(),
            "scaler_std": model._scaler.std.tolist(),
        }
    if isinstance(model, UniformCostModel):
        return "uniform", {"cost_seconds": float(model._cost)}
    raise CostModelError(
        f"cannot serialize a {type(model).__name__} into a "
        f"{COSTMODEL_SCHEMA} artifact"
    )


def model_from_params(family: str, params: dict) -> CostModel:
    """Rebuild a fitted model from artifact parameters."""
    if family in ("polynomial", "linear"):
        (degree, weights, scaler_mean, scaler_std, design_mean,
         design_std) = _require(
            params, "degree", "weights", "scaler_mean", "scaler_std",
            "design_mean", "design_std",
        )
        model = (LinearSGDModel() if int(degree) == 1
                 else PolynomialSGDModel(degree=int(degree)))
        model._weights = np.asarray(weights, dtype=np.float64)
        model._scaler.mean = np.asarray(scaler_mean, dtype=np.float64)
        model._scaler.std = np.asarray(scaler_std, dtype=np.float64)
        model._design_scaler.mean = np.asarray(
            design_mean, dtype=np.float64
        )
        model._design_scaler.std = np.asarray(
            design_std, dtype=np.float64
        )
        return model
    if family == "tree":
        feature, value, left, right = _require(
            params, "node_feature", "node_value", "node_left",
            "node_right",
        )
        model = DecisionTreeModel()
        model._node_feature = np.asarray(feature, dtype=np.int64)
        model._node_value = np.asarray(value, dtype=np.float64)
        model._node_left = np.asarray(left, dtype=np.int64)
        model._node_right = np.asarray(right, dtype=np.int64)
        model._nodes = [
            (int(f), float(v), int(lo), int(hi))
            for f, v, lo, hi in zip(
                model._node_feature, model._node_value,
                model._node_left, model._node_right,
            )
        ]
        return model
    if family == "svr":
        support, coef, gamma, scaler_mean, scaler_std = _require(
            params, "support", "coef", "gamma", "scaler_mean",
            "scaler_std",
        )
        model = KernelRidgeModel()
        model._support = np.asarray(support, dtype=np.float64)
        model._coef = np.asarray(coef, dtype=np.float64)
        model._gamma = float(gamma)
        model._scaler.mean = np.asarray(scaler_mean, dtype=np.float64)
        model._scaler.std = np.asarray(scaler_std, dtype=np.float64)
        return model
    if family == "uniform":
        (cost_seconds,) = _require(params, "cost_seconds")
        return UniformCostModel(cost_seconds=float(cost_seconds))
    raise CostModelError(
        f"unsupported cost-model artifact family {family!r}"
    )


def _params_digest(family: str, params: dict) -> str:
    payload = json.dumps(
        {"family": family, "parameters": params}, sort_keys=True
    )
    return hashlib.sha1(payload.encode()).hexdigest()


def artifact_label(artifact: dict) -> str:
    """Stable identity string: ``artifact:<family>@<digest8>``.

    Derived from the serialized parameters only — two machines that
    fit the same model get the same label, and the label (not the
    filesystem path) joins a run's workload fingerprint so recorded
    runs stay comparable across checkouts.
    """
    return (
        f"artifact:{artifact['family']}"
        f"@{artifact['digest'][:8]}"
    )


def save_artifact(model: CostModel, path,
                  provenance: Optional[dict] = None) -> dict:
    """Write a fitted model as a ``repro-costmodel/1`` JSON artifact.

    Returns the artifact dict that was written. ``provenance`` is an
    arbitrary JSON block (``FitOutcome.report()`` in the CLI flow).
    """
    family, params = model_to_params(model)
    artifact = {
        "schema": COSTMODEL_SCHEMA,
        "family": family,
        "digest": _params_digest(family, params),
        "parameters": params,
        "provenance": dict(provenance or {}),
    }
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def load_artifact(path) -> CostModel:
    """Load a ``repro-costmodel/1`` artifact into a usable model.

    The returned model carries ``artifact`` (the full payload) and
    ``artifact_label`` attributes, so ledgers and workload
    fingerprints can name it stably.
    """
    try:
        with open(path) as handle:
            artifact = json.load(handle)
    except OSError as exc:
        raise CostModelError(
            f"cannot read cost-model artifact {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CostModelError(
            f"{path}: corrupt cost-model artifact ({exc.msg})"
        ) from exc
    if not isinstance(artifact, dict) or \
            artifact.get("schema") != COSTMODEL_SCHEMA:
        raise CostModelError(
            f"{path}: unsupported cost-model artifact schema "
            f"{artifact.get('schema') if isinstance(artifact, dict) else None!r} "
            f"(expected {COSTMODEL_SCHEMA!r})"
        )
    family = artifact.get("family")
    params = artifact.get("parameters")
    if not isinstance(params, dict):
        raise CostModelError(
            f"{path}: cost-model artifact has no parameters object"
        )
    digest = artifact.get("digest")
    expected = _params_digest(family, params)
    if digest != expected:
        raise CostModelError(
            f"{path}: artifact digest mismatch (stored {digest!r}, "
            f"parameters hash to {expected!r}) — corrupted or "
            "hand-edited artifact"
        )
    model = model_from_params(family, params)
    model.artifact = artifact
    model.artifact_label = artifact_label(artifact)
    return model
