"""Decision amortization: fingerprinted plan caching for the hot path.

Table IV charges the arbitrator's decision latency into every
superstep, so GUM only wins while deciding stays cheap. On long-tail
road graphs the scheduler faces thousands of *near-identical* FSteal
instances: the workload vector drifts slowly, the active-worker set is
stable, and the cost coefficients change only when the cost model or
the measured bandwidth does. Adaptive load balancers exploit exactly
this stability by reusing decisions while the distribution holds
(Jatala et al.); this module provides the machinery:

* :func:`quantize` — log-bucket a nonnegative vector so that values
  within a relative ``tolerance`` of each other collapse into the same
  bucket (the "quantized fingerprint" of the workload/cost vectors);
* :func:`plan_fingerprint` — the cache key of one FSteal instance:
  quantized workloads, the active-worker set, and quantized cost
  coefficients (``inf`` entries — evicted workers — keep their own
  sentinel, so a shrunk group never matches a wider one);
* :func:`repair_assignment` — rescale a cached assignment to the
  *current* workload vector (tolerance-based reuse is only sound
  because the repaired plan is re-validated exactly);
* :class:`PlanCache` — bounded LRU of repaired-and-validated plans
  with hit/miss/invalidation/eviction counters;
* :class:`LruDict` — the bounded mapping underneath, also used for
  the incremental-OSteal ``z(m)`` memo keyed by fingerprint.

Everything here is *advisory*: a fetched plan has passed
``FStealProblem.validate_assignment`` against the live problem, so a
stale or mis-bucketed entry degrades to a cache miss, never to an
infeasible plan. Disabling the layer (``GumConfig.amortize=False``)
bypasses this module entirely and reproduces pre-amortization virtual
times bit for bit.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.milp import FStealProblem
from repro.errors import SolverError

__all__ = [
    "bucketize",
    "quantize",
    "plan_fingerprint",
    "repair_assignment",
    "LruDict",
    "PlanCache",
]

#: Bucket sentinels for values a logarithm cannot represent.
_ZERO_BUCKET = -(2**62)
_INF_BUCKET = 2**62


def quantize(values: np.ndarray, tolerance: float) -> bytes:
    """Log-bucket a nonnegative vector into a hashable fingerprint.

    Two vectors quantize identically when every entry falls in the
    same multiplicative bucket of width ``1 + tolerance`` (bucket ``k``
    covers roughly ``[(1+tol)^(k-1/2), (1+tol)^(k+1/2))``), so a
    uniform relative drift below ~``tolerance/2`` keeps the
    fingerprint stable. Zeros and ``inf`` (forbidden pairings) get
    their own sentinels — a worker leaving the group always changes
    the fingerprint. ``tolerance <= 0`` degenerates to the exact
    bit pattern (no tolerance-based reuse).

    Besides plan-cache keys, the decision ledger
    (:mod:`repro.obs.ledger`) reuses this fingerprint as each entry's
    quantized feature-vector identity, so "same cached decision"
    and "same ledger fingerprint" mean the same thing.
    """
    values = np.ascontiguousarray(values, dtype=np.float64).ravel()
    if tolerance <= 0.0:
        return values.tobytes()
    return bucketize(values, tolerance).tobytes()


def bucketize(values: np.ndarray, tolerance: float) -> np.ndarray:
    """The bucket indices behind :func:`quantize`, shape-preserving.

    The elementwise mapping (sentinels for zero/``inf``, log-bucket
    otherwise) applied to an array of any shape — each row of a
    bucketized matrix serializes to exactly the bytes ``quantize``
    would produce for that row, which is how the decision ledger
    resolves a whole run's fingerprints in one vectorized pass.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    buckets = np.full(values.shape, _ZERO_BUCKET, dtype=np.int64)
    buckets[np.isinf(values)] = _INF_BUCKET
    finite_pos = (values > 0) & np.isfinite(values)
    if np.any(finite_pos):
        buckets[finite_pos] = np.round(
            np.log(values[finite_pos]) / math.log1p(tolerance)
        ).astype(np.int64)
    return buckets


def plan_fingerprint(
    costs: np.ndarray,
    workloads: np.ndarray,
    tolerance: float,
    active: Optional[Sequence[int]] = None,
) -> Tuple:
    """Cache key of one FSteal instance.

    Covers the per-fragment workload vector, the active-worker set
    (derived from the finite cost columns when not given), and the
    cost coefficients, each quantized with ``tolerance``. The matrix
    shape is included so transposed/reshaped instances can never
    collide.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if active is None:
        active_key = tuple(
            np.flatnonzero(np.isfinite(costs).any(axis=0)).tolist()
        )
    else:
        active_key = tuple(int(j) for j in active)
    return (
        costs.shape,
        active_key,
        quantize(np.asarray(workloads, dtype=np.float64), tolerance),
        quantize(costs, tolerance),
    )


def repair_assignment(
    assignment: np.ndarray,
    problem: FStealProblem,
) -> Optional[np.ndarray]:
    """Rescale a previous assignment to the current problem, or ``None``.

    Work parked on now-forbidden workers (evicted by OSteal) is pulled
    back, then every fragment row is rescaled to its current workload
    by largest-remainder apportionment over the allowed workers —
    preserving the old plan's *shape* (the relative split the solver
    chose) while conserving the new ``l_i`` exactly. Returns ``None``
    when the shapes mismatch or some fragment has no allowed worker
    left; callers must still run
    :meth:`FStealProblem.validate_assignment` on the result (the
    cache does) before trusting it.
    """
    costs, workloads = problem.costs, problem.workloads
    assignment = np.asarray(assignment)
    if assignment.shape != costs.shape or np.any(assignment < 0):
        return None
    allowed = np.isfinite(costs)
    out = assignment.astype(np.int64, copy=True)
    out[~allowed] = 0
    row_sums = out.sum(axis=1)
    if np.array_equal(row_sums, workloads):
        return out
    for i in np.flatnonzero(row_sums != workloads).tolist():
        target = int(workloads[i])
        if target == 0:
            out[i] = 0
            continue
        total = int(row_sums[i])
        if total == 0:
            # the old plan had nothing here: seed the cheapest worker
            candidates = np.flatnonzero(allowed[i])
            if candidates.size == 0:
                return None
            cheapest = candidates[int(np.argmin(costs[i, candidates]))]
            out[i] = 0
            out[i, cheapest] = target
            continue
        exact = out[i] * (target / total)
        floor = np.floor(exact).astype(np.int64)
        deficit = target - int(floor.sum())
        if deficit > 0:
            remainders = exact - floor
            remainders[~allowed[i]] = -1.0
            top = np.argsort(-remainders, kind="stable")[:deficit]
            floor[top] += 1
        out[i] = floor
    return out


class LruDict:
    """Bounded mapping with least-recently-used eviction.

    The storage primitive under :class:`PlanCache` and the OSteal
    ``z(m)`` memo: reads refresh recency, inserts beyond
    ``max_entries`` evict the stalest entry.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise SolverError(
                f"LruDict needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = int(max_entries)
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key, default=None):
        """Value for ``key`` (refreshing its recency), else ``default``."""
        if key not in self._entries:
            return default
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key, value) -> None:
        """Insert/overwrite ``key``, evicting the stalest past the cap."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_create(self, key, factory: Callable[[], object]):
        """Like :meth:`get` but inserting ``factory()`` on a miss."""
        value = self.get(key, default=None)
        if value is None:
            value = factory()
            self.put(key, value)
        return value

    def pop(self, key) -> None:
        """Drop ``key`` if present (not counted as an eviction)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry (not counted as evictions)."""
        self._entries.clear()

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class PlanCache:
    """LRU cache of FSteal assignments keyed by quantized fingerprints.

    ``fetch`` returns a plan only after repairing it to the live
    workload vector and re-validating it against the live problem —
    a failed repair/validation *invalidates* the entry (staleness) and
    reads as a miss, so callers can treat any returned assignment as
    exactly feasible.
    """

    def __init__(
        self, max_entries: int = 64, tolerance: float = 0.05
    ) -> None:
        self.tolerance = float(tolerance)
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._entries = LruDict(max_entries)

    def fingerprint(
        self,
        costs: np.ndarray,
        workloads: np.ndarray,
        active: Optional[Sequence[int]] = None,
    ) -> Tuple:
        """Cache key for one problem (see :func:`plan_fingerprint`)."""
        return plan_fingerprint(costs, workloads, self.tolerance, active)

    def fetch(
        self, key: Tuple, problem: FStealProblem
    ) -> Optional[np.ndarray]:
        """A repaired, validated assignment for ``key`` — or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        repaired = repair_assignment(entry, problem)
        if repaired is not None:
            try:
                problem.validate_assignment(repaired)
            except SolverError:
                repaired = None
        if repaired is None:
            # stale: tolerance admitted a problem the old plan cannot
            # serve (active set shrank, coefficients moved, ...)
            self._entries.pop(key)
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return repaired

    def store(self, key: Tuple, assignment: np.ndarray) -> None:
        """Remember a solved assignment under ``key``."""
        self._entries.put(
            key, np.asarray(assignment, dtype=np.int64).copy()
        )

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def evictions(self) -> int:
        """Entries dropped by the LRU bound."""
        return self._entries.evictions

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (plain ints, JSON-friendly)."""
        return {
            "hits": int(self.hits),
            "misses": int(self.misses),
            "invalidations": int(self.invalidations),
            "evictions": int(self.evictions),
            "entries": int(len(self)),
        }
