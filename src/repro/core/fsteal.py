"""Frontier stealing — Algorithm 1 of the paper (Section III-C).

Given the touched-edges matrix ``X`` from the MILP (``x_ij`` = edges
homed on fragment ``i`` that worker ``j`` must process), select *which
vertices* realize each ``x_ij``: compute the prefix sum of the
frontier's out-degrees and run a sorted search of the cumulative
targets, yielding consecutive vertex ranges per destination worker —
exactly lines 9-18 of Algorithm 1. Consecutive ranges avoid splitting
adjacency lists (no extra atomics) and make the stolen-status copy a
single contiguous transfer.

The module also builds the cost-coefficient matrix
``c_ij = 1/B_ij + g(W_i)`` (Section III-B) from measured bandwidth and
a learned cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.milp import FStealProblem, FStealSolution, FStealSolver
from repro.errors import SolverError
from repro.graph.csr import CSRGraph
from repro.graph.features import FrontierFeatures
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.runtime.frontier import Frontier

__all__ = ["VertexAssignment", "build_cost_matrix", "select_vertices",
           "plan_fsteal"]


@dataclass(frozen=True)
class VertexAssignment:
    """Realized slice of one fragment's frontier for one worker."""

    owner: int
    worker: int
    vertices: np.ndarray
    edges: int


def build_cost_matrix(
    comm_cost: np.ndarray,
    fragment_features: Sequence[FrontierFeatures],
    cost_model: CostModel,
    fragment_home: np.ndarray,
    allowed_workers: Optional[Sequence[int]] = None,
    worker_nodes: Optional[np.ndarray] = None,
    node_representatives: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """The paper's cost coefficients ``c_ij = 1/B_ij + g(W_i)``.

    Parameters
    ----------
    comm_cost:
        ``(num_gpus, num_gpus)`` measured seconds-per-edge matrix
        (from :func:`repro.hardware.microbench.measure_comm_cost_matrix`).
    fragment_features:
        Table-I features of each fragment's current frontier; the
        estimated ``g(W_i)`` is shared by every worker processing that
        fragment's edges.
    cost_model:
        The learned (or oracle) ``g``.
    fragment_home:
        Fragment -> GPU physically holding its data.
    allowed_workers:
        Workers eligible to receive work; others get ``inf`` columns
        (how OSteal's evictions are enforced — Section V, Step 3).
    worker_nodes:
        Optional GPU -> node assignment of a hierarchical topology.
        When given (with ``node_representatives``), the two-level
        policy applies: a worker may steal across nodes only if it is
        its node's representative; other cross-node pairings are
        forbidden with ``inf``. Workers on the fragment's home node
        steal freely.
    node_representatives:
        Per-node representative GPU ids (from the hierarchical
        reduction tree); required when ``worker_nodes`` is given.
    """
    num_fragments = len(fragment_features)
    num_workers = comm_cost.shape[1]
    costs = np.full((num_fragments, num_workers), np.inf)
    allowed = (
        np.asarray(sorted(allowed_workers), dtype=np.int64)
        if allowed_workers is not None
        else np.arange(num_workers, dtype=np.int64)
    )
    if allowed.size == 0:
        raise SolverError("no allowed workers")
    for i, features in enumerate(fragment_features):
        if features.total_edges == 0:
            costs[i, allowed] = comm_cost[int(fragment_home[i]), allowed]
            continue
        g_i = cost_model.edge_cost_seconds(features)
        home = int(fragment_home[i])
        costs[i, allowed] = comm_cost[home, allowed] + g_i
    if worker_nodes is not None:
        if node_representatives is None:
            raise SolverError(
                "two-level masking needs node_representatives"
            )
        worker_nodes = np.asarray(worker_nodes, dtype=np.int64)
        is_rep = np.zeros(num_workers, dtype=bool)
        is_rep[np.asarray(list(node_representatives), dtype=np.int64)] = True
        home_nodes = worker_nodes[
            np.asarray(fragment_home[:num_fragments], dtype=np.int64)
        ]
        # forbid (fragment, worker) pairs that would haul the frontier
        # across the IB fabric into a non-representative
        cross = home_nodes[:, None] != worker_nodes[None, :]
        costs[cross & ~is_rep[None, :]] = np.inf
    return costs


def select_vertices(
    graph: CSRGraph,
    fragment: int,
    frontier: Frontier,
    x_row: np.ndarray,
) -> List[VertexAssignment]:
    """Algorithm 1, lines 9-18: split one frontier by edge quotas.

    ``x_row[j]`` is the target number of edges worker ``j`` should
    process from this fragment. Vertices are assigned as consecutive
    runs (in vertex-id order) whose out-degree prefix sums best match
    the cumulative quotas; actual per-worker edge counts may deviate by
    at most one adjacency list, and the union is exactly the frontier.
    """
    x_row = np.asarray(x_row, dtype=np.int64)
    total = int(x_row.sum())
    vertices = frontier.vertices
    if vertices.size == 0:
        if total != 0:
            raise SolverError("quota assigned to an empty frontier")
        return []
    degrees = graph.out_degrees(vertices)
    if int(degrees.sum()) != total:
        raise SolverError(
            f"quotas ({total}) do not match frontier edges "
            f"({int(degrees.sum())})"
        )
    # D = PrefixSum(out-degrees); F = PrefixSum(X_i); SortedSearch(F, D)
    degree_prefix = np.cumsum(degrees)
    quota_prefix = np.cumsum(x_row)
    boundaries = np.searchsorted(degree_prefix, quota_prefix, side="left")
    boundaries = np.minimum(boundaries + 1, vertices.size)
    # worker j receives vertices[start_j : boundaries[j]]
    assignments: List[VertexAssignment] = []
    start = 0
    for j in range(x_row.size):
        stop = int(boundaries[j]) if x_row[j] > 0 else start
        if j == int(np.max(np.nonzero(x_row)[0], initial=-1)):
            stop = vertices.size  # last quota absorbs rounding remainder
        if stop > start:
            chunk = vertices[start:stop]
            assignments.append(
                VertexAssignment(
                    owner=fragment,
                    worker=j,
                    vertices=chunk,
                    edges=int(degrees[start:stop].sum()),
                )
            )
            start = stop
    return assignments


def plan_fsteal(
    graph: CSRGraph,
    fragment_frontiers: Sequence[Frontier],
    problem: FStealProblem,
    solver: FStealSolver,
    tracer: Tracer = NULL_TRACER,
) -> tuple[FStealSolution, List[VertexAssignment]]:
    """Solve the FSteal MILP and realize it as vertex assignments."""
    with tracer.span(
        "fsteal.milp", track="coordinator", cat="fsteal",
        solver=getattr(solver, "name", type(solver).__name__),
        fragments=len(fragment_frontiers),
    ) as span:
        solution = solver.solve(problem)
        span.set(objective=solution.objective)
    assignments: List[VertexAssignment] = []
    with tracer.span(
        "fsteal.select_vertices", track="coordinator", cat="fsteal"
    ) as span:
        for fragment, frontier in enumerate(fragment_frontiers):
            if not frontier:
                continue
            assignments.extend(
                select_vertices(
                    graph, fragment, frontier, solution.assignment[fragment]
                )
            )
        span.set(assignments=len(assignments))
    return solution, assignments
