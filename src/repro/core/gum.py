"""GUM — the complete system (Figure 5).

:class:`GumEngine` wires the BSP engine to the stealing arbitrator.
Constructing one gives you the paper's full stack: partition-resident
fragments, a coordinator evaluating OSteal/FSteal each superstep under
the learned cost model, hub caching, and message aggregation.

Quick start::

    from repro import GumEngine, datasets, random_partition, dgx1

    graph = datasets.load("LJ")
    topo = dgx1(8)
    engine = GumEngine(topo)
    result = engine.run(graph, random_partition(graph, 8), "bfs", source=0)
    print(result.total_ms, result.stall_fraction())
"""

from __future__ import annotations

from typing import Optional

from repro.core.arbitrator import GumConfig, GumScheduler
from repro.hardware.spec import MachineSpec
from repro.hardware.topology import Topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime.bsp import BSPEngine, EngineOptions

__all__ = ["GumEngine"]


class GumEngine(BSPEngine):
    """The GUM multi-GPU graph-processing engine.

    Parameters
    ----------
    topology:
        Machine layout (e.g. :func:`repro.hardware.dgx1`).
    config:
        Arbitrator tunables (:class:`GumConfig`); default enables
        FSteal + OSteal + hub caching with the pretrained cost model.
    machine:
        Device/synchronization spec overrides.
    options:
        Engine-level switches. By default message aggregation is on
        (the "+opt" of Exp-5); pass
        ``EngineOptions(aggregate_messages=False)`` for the
        unoptimized baseline.
    tracer / metrics:
        Observability hooks (:mod:`repro.obs`); both default to the
        zero-overhead null implementations.
    """

    def __init__(
        self,
        topology: Topology,
        config: Optional[GumConfig] = None,
        machine: Optional[MachineSpec] = None,
        options: Optional[EngineOptions] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        chaos=None,
    ) -> None:
        self._config = config or GumConfig()
        super().__init__(
            topology,
            scheduler=GumScheduler(self._config),
            machine=machine,
            options=options,
            name="gum",
            tracer=tracer,
            metrics=metrics,
            chaos=chaos,
        )

    @property
    def config(self) -> GumConfig:
        """The arbitrator configuration in effect."""
        return self._config

    @property
    def ledger(self):
        """Decision ledger of the most recent run (also on the result).

        Convenience accessor for interactive use: after ``run()`` this
        is the same :class:`repro.obs.ledger.Ledger` the result carries
        as ``RunResult.ledger``.
        """
        return self._scheduler.ledger
