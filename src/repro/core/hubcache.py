"""Hub-vertex caching (Section V-B, Example 6).

High in-degree ("hub") vertices are activated over and over — they
receive the most messages — so GUM replicates their adjacency lists on
every GPU up front and marks them in a bitmap. When a stolen frontier
contains hubs, their neighbor expansions hit the local cache instead of
NVLink, cutting the dominant remote-access cost of FSteal.

The cache is a *pricing* structure here: the engine charges hub edges
at local-bandwidth cost. Capacity accounting (how much device memory
the replicas cost) is exposed so callers can budget ``t4``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import config
from repro.graph.csr import CSRGraph
from repro.obs.metrics import MetricsRegistry, NULL_METRICS

__all__ = ["HubCache"]


class HubCache:
    """Bitmap of hub vertices with cached adjacency lists.

    Parameters
    ----------
    graph:
        The processed graph.
    in_degree_threshold:
        The paper's ``t4``: vertices with in-degree above it are hubs.
    metrics:
        Observability registry; lookups and served hub edges are
        published so hit rates show up in profile snapshots.
    """

    def __init__(
        self,
        graph: CSRGraph,
        in_degree_threshold: int,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._threshold = int(in_degree_threshold)
        in_degrees = graph.in_degrees()
        self._bitmap = in_degrees > self._threshold
        self._bitmap.setflags(write=False)
        out_degrees = graph.out_degrees()
        self._cached_edges = int(out_degrees[self._bitmap].sum())
        self._metrics = metrics or NULL_METRICS
        self._metrics.gauge(
            "hubcache.num_hubs", "vertices replicated on every GPU"
        ).set(self.num_hubs)
        self._metrics.gauge(
            "hubcache.cached_edges", "adjacency entries replicated per GPU"
        ).set(self._cached_edges)

    @property
    def threshold(self) -> int:
        """The in-degree threshold ``t4``."""
        return self._threshold

    @property
    def bitmap(self) -> np.ndarray:
        """Read-only boolean mask of hub vertices."""
        return self._bitmap

    @property
    def num_hubs(self) -> int:
        """Number of cached vertices."""
        return int(self._bitmap.sum())

    @property
    def cached_edges(self) -> int:
        """Total adjacency entries replicated per GPU."""
        return self._cached_edges

    def memory_bytes_per_gpu(self) -> int:
        """Replica footprint on each device."""
        return self._cached_edges * config.BYTES_PER_EDGE

    def hub_edges(self, graph: CSRGraph, vertices: np.ndarray) -> int:
        """Edges of ``vertices`` servable from the local cache."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if self._metrics.enabled:
            self._metrics.counter(
                "hubcache.lookups", "hub-bitmap probes by the arbitrator"
            ).inc()
        if vertices.size == 0:
            return 0
        hubs = vertices[self._bitmap[vertices]]
        if hubs.size == 0:
            return 0
        served = int(graph.out_degrees(hubs).sum())
        if self._metrics.enabled:
            self._metrics.counter(
                "hubcache.hit_vertices", "frontier vertices found cached"
            ).inc(hubs.size)
        return served

    def __repr__(self) -> str:
        return (
            f"HubCache(threshold={self._threshold}, hubs={self.num_hubs}, "
            f"cached_edges={self._cached_edges})"
        )
