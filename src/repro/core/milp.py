"""Solvers for the FSteal min-max assignment problem (Section III-A).

The optimization problem (paper Equation 1)::

    min  max_j  sum_i c_ij * x_ij
    s.t. sum_j x_ij = l_i        for every fragment i
         x_ij integer in [0, l_i],  x_ij = 0 where c_ij = inf

``c_ij`` is the per-edge cost for worker ``j`` to process edges homed on
fragment ``i``; ``l_i`` is fragment ``i``'s active edge count. The paper
solves this as a MILP with SCIP; we provide four interchangeable
backends (also an ablation axis — ``benchmarks/test_ablation_solvers``):

* :class:`GreedySolver` — cheapest-home seeding plus straggler
  rebalancing. No LP machinery; the default for the per-iteration hot
  path (within ~15% of optimal on random instances, sub-millisecond).
* :class:`LPRoundingSolver` — exact LP relaxation (HiGHS via
  ``scipy.linprog``) + largest-remainder rounding.
* :class:`BranchAndBoundSolver` — our own best-first branch-and-bound
  over LP relaxations; exact for the integral program.
* :class:`HiGHSSolver` — ``scipy.optimize.milp`` (the SCIP stand-in).

Edge counts are large (thousands) relative to the integrality gap, so
all four land within a rounding error of each other; they differ in
decision latency, which is what Table IV charges.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Type, Union

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.errors import SolverError

__all__ = [
    "FStealProblem",
    "FStealSolution",
    "FStealSolver",
    "AssemblyWorkspace",
    "GreedySolver",
    "LPRoundingSolver",
    "BranchAndBoundSolver",
    "HiGHSSolver",
    "SOLVERS",
    "make_solver",
]


@dataclass(frozen=True)
class FStealProblem:
    """One FSteal instance.

    ``costs[i, j]`` = seconds per edge for worker ``j`` on fragment
    ``i``'s edges (``inf`` forbids the pairing — evicted workers);
    ``workloads[i]`` = ``l_i``.
    """

    costs: np.ndarray
    workloads: np.ndarray

    def __post_init__(self) -> None:
        costs = np.asarray(self.costs, dtype=np.float64)
        workloads = np.asarray(self.workloads, dtype=np.int64)
        if costs.ndim != 2:
            raise SolverError("costs must be a 2-D matrix")
        if workloads.shape != (costs.shape[0],):
            raise SolverError("workloads must have one entry per fragment")
        if np.any(workloads < 0):
            raise SolverError("workloads cannot be negative")
        finite = np.isfinite(costs)
        if np.any((costs < 0) & finite):
            raise SolverError("costs cannot be negative")
        needs_worker = workloads > 0
        if np.any(needs_worker & ~finite.any(axis=1)):
            raise SolverError(
                "some fragment with work has no allowed worker"
            )
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "workloads", workloads)

    @property
    def num_fragments(self) -> int:
        """Number of data-home fragments (rows)."""
        return self.costs.shape[0]

    @property
    def num_workers(self) -> int:
        """Number of candidate workers (columns)."""
        return self.costs.shape[1]

    def objective(self, assignment: np.ndarray) -> float:
        """``max_j sum_i c_ij x_ij`` for a given assignment."""
        costs = np.where(np.isfinite(self.costs), self.costs, 0.0)
        loads = (costs * assignment).sum(axis=0)
        return float(loads.max()) if loads.size else 0.0

    def validate_assignment(self, assignment: np.ndarray) -> None:
        """Raise unless the assignment is feasible."""
        assignment = np.asarray(assignment)
        if assignment.shape != self.costs.shape:
            raise SolverError("assignment has wrong shape")
        if np.any(assignment < 0):
            raise SolverError("negative assignment")
        if not np.array_equal(assignment.sum(axis=1), self.workloads):
            raise SolverError("assignment does not conserve workloads")
        forbidden = ~np.isfinite(self.costs)
        if np.any(assignment[forbidden] > 0):
            raise SolverError("assignment uses a forbidden worker")


@dataclass(frozen=True)
class FStealSolution:
    """Solver output: integral assignment matrix and achieved min-max.

    ``warm_started`` records that the returned assignment descends from
    a caller-supplied previous iteration's plan (decision amortization)
    rather than a cold seed — Table IV accounting and the run summary
    track how often warm starts actually win.
    """

    assignment: np.ndarray
    objective: float
    solver: str
    warm_started: bool = False


class FStealSolver(abc.ABC):
    """Common solver interface.

    ``solve`` optionally accepts the previous iteration's assignment as
    a warm start. Heuristic backends use it as an extra refinement seed
    or incumbent upper bound; exact backends may ignore it. An
    infeasible warm start (stale shape, forbidden workers) is silently
    discarded — it is advisory, never binding.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return a feasible integral solution."""

    def _finish(
        self,
        problem: FStealProblem,
        assignment: np.ndarray,
        warm_started: bool = False,
    ) -> FStealSolution:
        assignment = np.rint(assignment).astype(np.int64)
        problem.validate_assignment(assignment)
        return FStealSolution(
            assignment=assignment,
            objective=problem.objective(assignment),
            solver=self.name,
            warm_started=warm_started,
        )

    @staticmethod
    def _usable_warm_start(
        problem: FStealProblem, warm_start: Optional[np.ndarray]
    ) -> Optional[np.ndarray]:
        """The warm start as a validated int64 matrix, or ``None``."""
        if warm_start is None:
            return None
        warm = np.asarray(warm_start)
        try:
            problem.validate_assignment(warm)
        except SolverError:
            return None
        return warm.astype(np.int64, copy=True)


def _no_work_solution(problem: FStealProblem, name: str) -> FStealSolution:
    return FStealSolution(
        assignment=np.zeros_like(problem.costs, dtype=np.int64),
        objective=0.0,
        solver=name,
    )


# ----------------------------------------------------------------------
class GreedySolver(FStealSolver):
    """Fast two-phase heuristic for the min-max assignment.

    Two phases, mirroring how unrelated-machines (R||Cmax) heuristics
    work well in practice:

    1. *Cheapest-home seeding* — every fragment's edges go to the
       worker with the lowest per-edge cost for that fragment (usually
       its data home). This minimizes total cost, ignoring balance.
    2. *Straggler rebalancing* — repeatedly move edges off the current
       straggler to the (fragment, worker) pair giving the largest
       min-max improvement, sizing each move to equalize the pair.
       Stops when no move improves the makespan meaningfully.

    The refinement is run from two seeds — cheapest-worker and the
    no-steal diagonal (when feasible) — and the better result wins, so
    the heuristic can never be worse than not stealing at all.
    """

    name = "greedy"

    def __init__(self, refine_steps: int = 256) -> None:
        self._refine_steps = int(refine_steps)

    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return a feasible integral solution."""
        n_frag, n_work = problem.num_fragments, problem.num_workers
        if problem.workloads.sum() == 0:
            return _no_work_solution(problem, self.name)
        safe_costs = np.where(np.isfinite(problem.costs), problem.costs,
                              np.inf)
        seeds = [np.argmin(safe_costs, axis=1)]
        if n_frag <= n_work:
            diagonal = np.arange(n_frag)
            feasible = all(
                problem.workloads[i] == 0
                or np.isfinite(problem.costs[i, i])
                for i in range(n_frag)
            )
            if feasible:
                seeds.append(diagonal)
        best: np.ndarray | None = None
        best_objective = np.inf
        for seed in seeds:
            finish = np.zeros(n_work)
            assignment = np.zeros((n_frag, n_work), dtype=np.int64)
            for i in range(n_frag):
                load = int(problem.workloads[i])
                if load == 0:
                    continue
                j = int(seed[i])
                assignment[i, j] = load
                finish[j] += problem.costs[i, j] * load
            self._refine(problem, assignment, finish)
            objective = problem.objective(assignment)
            if objective < best_objective:
                best, best_objective = assignment, objective
        assert best is not None  # seeds is never empty
        # Warm seed last, accepted only on strict improvement: when it
        # ties the cold seeds the cold result is returned, so a warm
        # start can never change an outcome the cold path would reach.
        warm_won = False
        warm = self._usable_warm_start(problem, warm_start)
        if warm is not None:
            safe = np.where(np.isfinite(problem.costs), problem.costs, 0.0)
            finish = (safe * warm).sum(axis=0)
            self._refine(problem, warm, finish)
            objective = problem.objective(warm)
            if objective < best_objective:
                best, best_objective, warm_won = warm, objective, True
        return self._finish(problem, best, warm_started=warm_won)

    def _refine(
        self,
        problem: FStealProblem,
        assignment: np.ndarray,
        finish: np.ndarray,
    ) -> None:
        """Shift edges from the straggler to cheaper workers, in place."""
        costs = problem.costs
        for __ in range(self._refine_steps):
            straggler = int(np.argmax(finish))
            peak = finish[straggler]
            if peak <= 0:
                return
            best_gain = 0.0
            best_move: tuple[int, int, int] | None = None
            donors = np.flatnonzero(assignment[:, straggler] > 0)
            for i in donors.tolist():
                c_from = costs[i, straggler]
                for j in np.flatnonzero(np.isfinite(costs[i])).tolist():
                    if j == straggler:
                        continue
                    c_to = costs[i, j]
                    gap = peak - finish[j]
                    if gap <= 0:
                        continue
                    # equalize the pair: move until both finish together
                    move = int(min(
                        assignment[i, straggler],
                        max(1, int(gap / (c_from + c_to))),
                    ))
                    if move <= 0:
                        continue
                    new_peak_pair = max(
                        peak - c_from * move, finish[j] + c_to * move
                    )
                    gain = peak - new_peak_pair
                    if gain > best_gain:
                        best_gain = gain
                        best_move = (i, j, move)
            if best_move is None or best_gain <= peak * 1e-4:
                return
            i, j, move = best_move
            assignment[i, straggler] -= move
            assignment[i, j] += move
            finish[straggler] -= costs[i, straggler] * move
            finish[j] += costs[i, j] * move


# ----------------------------------------------------------------------
def _cost_scale(costs: np.ndarray) -> float:
    """Normalization factor for cost coefficients.

    Per-edge costs are ~1e-9 seconds; fed raw into HiGHS they sink
    below its feasibility tolerances and get presolved away. All
    LP/MILP backends divide costs by this scale and multiply the
    epigraph value back.
    """
    finite = costs[np.isfinite(costs)]
    if finite.size == 0 or finite.max() <= 0:
        return 1.0
    return float(finite.max())


@dataclass(frozen=True)
class _ConstraintSystem:
    """Assembled epigraph formulation shared by all LP/MILP backends.

    Variables are one ``x_ij`` per allowed (fragment, worker) pair in
    row-major order, plus the epigraph variable ``z`` last. Costs are
    divided by ``scale`` (see :func:`_cost_scale`); the achieved ``z``
    must be multiplied back.
    """

    c: np.ndarray
    a_ub: Union[np.ndarray, sparse.csr_array]
    b_ub: np.ndarray
    a_eq: Union[np.ndarray, sparse.csr_array]
    b_eq: np.ndarray
    allowed: np.ndarray
    num_x: int
    scale: float


class AssemblyWorkspace:
    """Preallocated dense buffers for repeated constraint assembly.

    The scheduler re-solves near-identical instances every iteration;
    when the fragments×workers shape is unchanged the dense assembly
    path can reuse its ``c``/``A_ub``/``A_eq`` arrays instead of
    allocating fresh ones. Buffers are re-zeroed before use, so the
    assembled system is bit-identical to a cold allocation.
    """

    def __init__(self) -> None:
        self._buffers: Dict[tuple, np.ndarray] = {}

    def zeros(self, tag: str, shape: tuple) -> np.ndarray:
        """A zeroed float64 array of ``shape``, reused per (tag, shape)."""
        buf = self._buffers.get((tag, shape))
        if buf is None:
            buf = np.zeros(shape)
            self._buffers[(tag, shape)] = buf
        else:
            buf.fill(0.0)
        return buf


def _assemble_constraints(
    problem: FStealProblem,
    use_sparse: bool = False,
    workspace: Optional[AssemblyWorkspace] = None,
) -> _ConstraintSystem:
    """Build the shared constraint system, fully vectorized.

    Inequality rows (one per worker ``j``): ``sum_i c_ij x_ij - z <= 0``.
    Equality rows (one per fragment with work): ``sum_j x_ij = l_i``.
    ``use_sparse`` emits ``scipy.sparse`` matrices — the constraint
    matrix has only one x-column entry per allowed pair, so density
    falls off linearly with problem size. ``workspace`` lets the dense
    path reuse preallocated buffers across same-shape instances.
    """
    scale = _cost_scale(problem.costs)
    costs, workloads = problem.costs / scale, problem.workloads
    n_frag, n_work = problem.num_fragments, problem.num_workers
    allowed = np.isfinite(costs) & (workloads[:, None] > 0)
    # np.nonzero is row-major: identical variable order to the legacy
    # nested (i, j) loops, so solver outputs stay bit-identical
    frag_idx, work_idx = np.nonzero(allowed)
    num_x = int(frag_idx.size)
    num_vars = num_x + 1  # + z
    if workspace is not None and not use_sparse:
        c = workspace.zeros("c", (num_vars,))
    else:
        c = np.zeros(num_vars)
    c[-1] = 1.0
    b_ub = np.zeros(n_work)
    rows = np.flatnonzero(workloads > 0)
    row_of_fragment = np.full(n_frag, -1, dtype=np.int64)
    row_of_fragment[rows] = np.arange(rows.size)
    b_eq = workloads[rows].astype(np.float64)
    var_ids = np.arange(num_x)
    coefficients = costs[frag_idx, work_idx]
    if use_sparse:
        a_ub = sparse.csr_array(
            (
                np.concatenate([coefficients, -np.ones(n_work)]),
                (
                    np.concatenate([work_idx, np.arange(n_work)]),
                    np.concatenate([var_ids, np.full(n_work, num_x)]),
                ),
            ),
            shape=(n_work, num_vars),
        )
        a_eq = sparse.csr_array(
            (np.ones(num_x), (row_of_fragment[frag_idx], var_ids)),
            shape=(rows.size, num_vars),
        )
    else:
        if workspace is not None:
            a_ub = workspace.zeros("a_ub", (n_work, num_vars))
            a_eq = workspace.zeros("a_eq", (rows.size, num_vars))
        else:
            a_ub = np.zeros((n_work, num_vars))
            a_eq = np.zeros((rows.size, num_vars))
        a_ub[work_idx, var_ids] = coefficients
        a_ub[:, -1] = -1.0
        a_eq[row_of_fragment[frag_idx], var_ids] = 1.0
    return _ConstraintSystem(
        c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq,
        allowed=allowed, num_x=num_x, scale=scale,
    )


def _lp_relaxation(
    problem: FStealProblem,
    workspace: Optional[AssemblyWorkspace] = None,
) -> tuple[np.ndarray, float, np.ndarray]:
    """Solve the LP relaxation; return (x matrix, z, variable mask).

    Variables: one per allowed (i, j) pair plus the epigraph variable z.
    """
    system = _assemble_constraints(problem, workspace=workspace)
    if system.num_x == 0:
        return (
            np.zeros((problem.num_fragments, problem.num_workers)),
            0.0,
            system.allowed,
        )
    res = linprog(
        system.c, A_ub=system.a_ub, b_ub=system.b_ub,
        A_eq=system.a_eq, b_eq=system.b_eq,
        bounds=(0, None), method="highs",
    )
    if not res.success:
        raise SolverError(f"LP relaxation failed: {res.message}")
    x = np.zeros((problem.num_fragments, problem.num_workers))
    x[system.allowed] = res.x[: system.num_x]
    return x, float(res.x[-1]) * system.scale, system.allowed


def _round_lp(problem: FStealProblem, fractional: np.ndarray) -> np.ndarray:
    """Per-fragment largest-remainder rounding of an LP solution."""
    assignment = np.floor(fractional).astype(np.int64)
    for i in range(problem.num_fragments):
        deficit = int(problem.workloads[i] - assignment[i].sum())
        if deficit > 0:
            remainders = fractional[i] - assignment[i]
            remainders[~np.isfinite(problem.costs[i])] = -1.0
            top = np.argsort(-remainders)[:deficit]
            assignment[i, top] += 1
        elif deficit < 0:
            # repay one unit per donor per pass (most over-assigned
            # first) until the row conserves its workload — a single
            # pass under-repays whenever -deficit > len(donors)
            need = -deficit
            while need > 0:
                donors = np.flatnonzero(assignment[i] > 0)
                if donors.size == 0:
                    raise SolverError(
                        "rounding cannot repay over-assignment "
                        f"for fragment {i}"
                    )
                order = np.argsort(
                    fractional[i, donors] - assignment[i, donors]
                )
                for idx in order[:need]:
                    assignment[i, donors[idx]] -= 1
                need = int(assignment[i].sum() - problem.workloads[i])
    return assignment


class LPRoundingSolver(FStealSolver):
    """Exact LP relaxation + largest-remainder rounding.

    The LP relaxation is exact, so a warm start cannot improve on it —
    it is accepted for interface uniformity and ignored.
    """

    name = "lp"

    def __init__(self) -> None:
        self._workspace = AssemblyWorkspace()

    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return a feasible integral solution."""
        del warm_start  # exact relaxation: nothing to seed
        if problem.workloads.sum() == 0:
            return _no_work_solution(problem, self.name)
        fractional, __, __ = _lp_relaxation(
            problem, workspace=self._workspace
        )
        return self._finish(problem, _round_lp(problem, fractional))


class BranchAndBoundSolver(FStealSolver):
    """Best-first branch & bound over LP relaxations.

    Branches on the most fractional variable, bounding with the LP
    value. Edge workloads are huge relative to unit branching, so the
    incumbent from rounding is almost always optimal and the search
    terminates after a handful of nodes; ``max_nodes`` caps pathological
    cases (falling back to the best incumbent).
    """

    name = "bnb"

    def __init__(self, max_nodes: int = 50, tolerance: float = 1e-9) -> None:
        self._max_nodes = int(max_nodes)
        self._tol = float(tolerance)
        self._workspace = AssemblyWorkspace()

    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return a feasible integral solution."""
        if problem.workloads.sum() == 0:
            return _no_work_solution(problem, self.name)
        fractional, lp_value, __ = _lp_relaxation(
            problem, workspace=self._workspace
        )
        incumbent = _round_lp(problem, fractional)
        incumbent_value = problem.objective(incumbent)
        # Integrality test: if the LP solution is already integral (up
        # to tolerance) we are done; otherwise bound the gap. The gap
        # from rounding at most one edge per (fragment, worker) pair is
        # bounded by the max cost entry, which is tiny relative to z —
        # certify optimality within that bound, else do a short dive.
        frac_part = np.abs(fractional - np.rint(fractional))
        if frac_part.max() <= self._tol:
            return self._finish(problem, np.rint(fractional))
        # A validated warm start whose objective beats the rounding
        # incumbent becomes the initial incumbent: a tighter upper
        # bound lets the optimality certificate fire without diving.
        warm_won = False
        warm = self._usable_warm_start(problem, warm_start)
        if warm is not None:
            warm_value = problem.objective(warm)
            if warm_value < incumbent_value:
                incumbent, incumbent_value = warm, warm_value
                warm_won = True
        finite_costs = problem.costs[np.isfinite(problem.costs)]
        unit_gap = float(finite_costs.max()) if finite_costs.size else 0.0
        nodes = 0
        best = (incumbent_value, incumbent)
        # Dive: repeatedly re-solve with the most fractional variable
        # nudged to each neighbor integer via workload perturbation.
        while (
            best[0] > lp_value + unit_gap * problem.num_fragments
            and nodes < self._max_nodes
        ):
            nodes += 1
            jitter = _round_lp(problem, fractional + 0.5 / (nodes + 1))
            value = problem.objective(jitter)
            if value < best[0]:
                best = (value, jitter)
                warm_won = False
            else:
                break
        return self._finish(
            problem, best[1], warm_started=warm_won and best[1] is incumbent
        )


class HiGHSSolver(FStealSolver):
    """``scipy.optimize.milp`` backend (the SCIP stand-in).

    ``scipy.optimize.milp`` exposes no incumbent-injection API, so the
    warm start is accepted and ignored.
    """

    name = "highs"

    def solve(
        self,
        problem: FStealProblem,
        warm_start: Optional[np.ndarray] = None,
    ) -> FStealSolution:
        """Return a feasible integral solution."""
        del warm_start  # scipy.optimize.milp cannot inject incumbents
        if problem.workloads.sum() == 0:
            return _no_work_solution(problem, self.name)
        system = _assemble_constraints(problem, use_sparse=True)
        constraints = [
            LinearConstraint(system.a_ub, -np.inf, system.b_ub),
            LinearConstraint(system.a_eq, system.b_eq, system.b_eq),
        ]
        integrality = np.ones(system.num_x + 1)
        integrality[-1] = 0.0  # z is continuous
        res = milp(
            system.c,
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(lb=0.0),
        )
        if not res.success:
            raise SolverError(f"MILP solve failed: {res.message}")
        x = np.zeros((problem.num_fragments, problem.num_workers))
        x[system.allowed] = res.x[: system.num_x]
        return self._finish(problem, x)


#: Registry for config-by-name.
SOLVERS: Dict[str, Type[FStealSolver]] = {
    "greedy": GreedySolver,
    "lp": LPRoundingSolver,
    "bnb": BranchAndBoundSolver,
    "highs": HiGHSSolver,
}


def make_solver(name: str, **kwargs) -> FStealSolver:
    """Instantiate a registered solver by name."""
    try:
        solver_cls = SOLVERS[name]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; known: {sorted(SOLVERS)}"
        ) from None
    return solver_cls(**kwargs)
