"""Ownership stealing — Algorithm 2 of the paper (Section IV-B).

OSteal trades parallelism against synchronization overhead: for every
candidate group size ``m`` it folds the reduction tree, solves the
restricted FSteal problem to estimate the kernel cost ``z(m)``, adds
the synchronization estimate ``p * m``, and keeps the cheapest policy
(Equation 4: ``E = z + p * m``).

``p`` is not a constant of the model — the scheduler estimates it from
*observed* synchronization time of previous iterations, exactly as the
paper prescribes ("a parameter that can be estimated during previous
iterations").

Two search strategies are offered. ``search="scan"`` is the verbatim
Algorithm 2 linear enumeration — every candidate ``m`` gets a full
FSteal solve. ``search="bracket"`` exploits the structure of the
objective: ``z(m)`` is non-increasing in ``m`` (a larger group can
always emulate a smaller one) while ``p * m`` is strictly increasing,
so ``E(m)`` is near-unimodal and a hill-walk from a starting bracket
finds the minimum after evaluating only a neighborhood, not the whole
range. Combined with a cross-iteration ``z_cache`` (valid while the
workload fingerprint is stable), steady-state tail iterations reuse
almost every ``z(m)`` instead of re-solving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, MutableMapping, Optional, Sequence

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.fsteal import build_cost_matrix
from repro.core.milp import FStealProblem, FStealSolution, FStealSolver
from repro.core.reduction_tree import ReductionTree
from repro.errors import SolverError
from repro.graph.features import FrontierFeatures
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["OStealDecision", "plan_osteal"]


@dataclass(frozen=True)
class OStealDecision:
    """Chosen ownership policy for the coming iterations.

    ``evaluated_sizes``/``reused_sizes`` account the decision's cost:
    how many candidate group sizes required a fresh FSteal solve this
    call versus a cached ``z(m)`` from a previous iteration — the
    quantity the modeled-overhead clock charges (Table IV).
    """

    group_size: int
    active_workers: List[int]
    ownership: np.ndarray  # fragment -> worker
    estimated_cost: float  # z(m) + p*m, seconds
    estimated_kernel: float  # z(m) alone
    fsteal: FStealSolution  # the X realizing z(m)
    costs: np.ndarray  # the cost matrix used (inf outside the group)
    evaluated_sizes: int = 0  # fresh z(m) solves this call
    reused_sizes: int = 0  # z(m) served from the cross-iteration cache


def plan_osteal(
    tree: ReductionTree,
    comm_cost: np.ndarray,
    fragment_features: Sequence[FrontierFeatures],
    workloads: np.ndarray,
    fragment_home: np.ndarray,
    cost_model: CostModel,
    solver: FStealSolver,
    p_estimate: float,
    candidate_sizes: Optional[Sequence[int]] = None,
    tracer: Tracer = NULL_TRACER,
    search: str = "scan",
    z_cache: Optional[MutableMapping[int, float]] = None,
    start_size: Optional[int] = None,
    solve: Optional[Callable[[FStealProblem], FStealSolution]] = None,
    worker_nodes: Optional[np.ndarray] = None,
    node_representatives: Optional[Sequence[int]] = None,
) -> OStealDecision:
    """Algorithm 2: enumerate group sizes, return the cheapest policy.

    Parameters
    ----------
    tree:
        Reduction tree of the machine topology.
    comm_cost:
        Measured seconds-per-edge matrix between GPUs.
    fragment_features:
        Table-I features per fragment frontier (for ``g(W_i)``).
    workloads:
        ``l_i`` active edges per fragment.
    fragment_home:
        Fragment -> GPU holding its data.
    cost_model:
        Learned (or oracle) per-edge compute-cost model.
    solver:
        FSteal solver used to evaluate ``z(m)``.
    p_estimate:
        Current estimate of per-worker synchronization latency
        (seconds), from observed previous iterations.
    candidate_sizes:
        Group sizes to consider; defaults to ``1..n``.
    tracer:
        Observability hook; each Equation-4 evaluation is recorded as
        one ``osteal.enumerate`` span attribute (null by default).
    search:
        ``"scan"`` (default) — verbatim linear enumeration of every
        candidate; ``"bracket"`` — unimodal hill-walk from
        ``start_size`` over the sorted candidates.
    z_cache:
        Optional mutable ``m -> z(m)`` memo reused across iterations
        while the caller's workload fingerprint is stable. Only
        consulted by the bracket search; fresh evaluations are written
        back into it.
    start_size:
        Bracket-search starting point (typically the previous
        decision's group size); defaults to the largest candidate.
    solve:
        Override for evaluating one restricted FSteal instance
        (defaults to ``solver.solve``); the scheduler routes this
        through its plan cache so OSteal evaluations are amortized
        too.
    worker_nodes / node_representatives:
        Hierarchical two-level constraint, forwarded to
        :func:`~repro.core.fsteal.build_cost_matrix`: inter-node
        steals are restricted to per-node representatives in every
        ``z(m)`` evaluation.
    """
    num_workers = comm_cost.shape[0]
    sizes = (
        list(candidate_sizes)
        if candidate_sizes is not None
        else list(range(1, num_workers + 1))
    )
    if solve is None:
        solve = solver.solve

    def solve_size(m: int) -> tuple[FStealSolution, np.ndarray]:
        active = tree.active_workers(m)
        costs = build_cost_matrix(
            comm_cost,
            fragment_features,
            cost_model,
            fragment_home,
            allowed_workers=active,
            worker_nodes=worker_nodes,
            node_representatives=node_representatives,
        )
        return solve(FStealProblem(costs, workloads)), costs

    if search == "scan":
        return _scan(tree, sizes, solve_size, p_estimate, tracer)
    if search == "bracket":
        return _bracket(
            tree, sizes, solve_size, p_estimate, tracer,
            z_cache=z_cache, start_size=start_size,
        )
    raise SolverError(
        f"unknown OSteal search {search!r}; known: 'scan', 'bracket'"
    )


def _scan(
    tree: ReductionTree,
    sizes: List[int],
    solve_size: Callable,
    p_estimate: float,
    tracer: Tracer,
) -> OStealDecision:
    """Verbatim Algorithm 2: solve ``z(m)`` for every candidate."""
    best: Optional[OStealDecision] = None
    estimates = {} if tracer.enabled else None
    with tracer.span("osteal.enumerate", track="coordinator",
                     cat="osteal", candidates=len(sizes),
                     search="scan") as span:
        for m in sizes:
            solution, costs = solve_size(m)
            total = solution.objective + p_estimate * m
            if estimates is not None:
                estimates[f"m={m}"] = total
            if best is None or total < best.estimated_cost:
                best = OStealDecision(
                    group_size=m,
                    active_workers=tree.active_workers(m),
                    ownership=tree.ownership(m),
                    estimated_cost=total,
                    estimated_kernel=solution.objective,
                    fsteal=solution,
                    costs=costs,
                    evaluated_sizes=len(sizes),
                )
        assert best is not None  # sizes is never empty
        span.set(chosen=best.group_size, estimates=estimates)
    return best


def _bracket(
    tree: ReductionTree,
    sizes: List[int],
    solve_size: Callable,
    p_estimate: float,
    tracer: Tracer,
    z_cache: Optional[MutableMapping[int, float]] = None,
    start_size: Optional[int] = None,
) -> OStealDecision:
    """Hill-walk over the near-unimodal ``E(m) = z(m) + p*m``.

    Starts at ``start_size`` (or the largest candidate) and walks
    toward the neighbor with the strictly smaller estimate until
    neither neighbor improves — a local minimum, which near-unimodality
    makes global. ``z(m)`` values are memoized within the call and,
    via ``z_cache``, across calls; the *chosen* size always gets a
    real solve this call so the returned plan is feasible against the
    live workloads even when its ``z`` came from the cache.
    """
    order = sorted(set(int(m) for m in sizes))
    zvals: dict = {}  # m -> z(m), this call
    solutions: dict = {}  # m -> (FStealSolution, costs), fresh only
    counts = {"evaluated": 0, "reused": 0}

    def z_of(m: int) -> float:
        if m in zvals:
            return zvals[m]
        if z_cache is not None and m in z_cache:
            counts["reused"] += 1
            zvals[m] = float(z_cache[m])
            return zvals[m]
        solution, costs = solve_size(m)
        counts["evaluated"] += 1
        solutions[m] = (solution, costs)
        zvals[m] = float(solution.objective)
        if z_cache is not None:
            z_cache[m] = zvals[m]
        return zvals[m]

    def estimate(m: int) -> float:
        return z_of(m) + p_estimate * m

    estimates = {} if tracer.enabled else None
    with tracer.span("osteal.enumerate", track="coordinator",
                     cat="osteal", candidates=len(order),
                     search="bracket") as span:
        if start_size is not None and start_size in order:
            pos = order.index(int(start_size))
        else:
            pos = len(order) - 1
        while True:
            cur = estimate(order[pos])
            left = estimate(order[pos - 1]) if pos > 0 else np.inf
            right = (
                estimate(order[pos + 1])
                if pos < len(order) - 1
                else np.inf
            )
            if left < cur and left <= right:
                pos -= 1
            elif right < cur:
                pos += 1
            else:
                break
        chosen = order[pos]
        # the walk may have priced the winner from the cache alone:
        # materialize a real plan for it against the live workloads
        if chosen not in solutions:
            solution, costs = solve_size(chosen)
            counts["evaluated"] += 1
            solutions[chosen] = (solution, costs)
            zvals[chosen] = float(solution.objective)
            if z_cache is not None:
                z_cache[chosen] = zvals[chosen]
        solution, costs = solutions[chosen]
        if estimates is not None:
            estimates.update(
                {f"m={m}": z + p_estimate * m for m, z in zvals.items()}
            )
        span.set(chosen=chosen, estimates=estimates,
                 evaluated=counts["evaluated"], reused=counts["reused"])
    return OStealDecision(
        group_size=chosen,
        active_workers=tree.active_workers(chosen),
        ownership=tree.ownership(chosen),
        estimated_cost=float(solution.objective) + p_estimate * chosen,
        estimated_kernel=float(solution.objective),
        fsteal=solution,
        costs=costs,
        evaluated_sizes=counts["evaluated"],
        reused_sizes=counts["reused"],
    )
