"""Ownership stealing — Algorithm 2 of the paper (Section IV-B).

OSteal trades parallelism against synchronization overhead: for every
candidate group size ``m`` it folds the reduction tree, solves the
restricted FSteal problem to estimate the kernel cost ``z(m)``, adds
the synchronization estimate ``p * m``, and keeps the cheapest policy
(Equation 4: ``E = z + p * m``).

``p`` is not a constant of the model — the scheduler estimates it from
*observed* synchronization time of previous iterations, exactly as the
paper prescribes ("a parameter that can be estimated during previous
iterations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.costmodel import CostModel
from repro.core.fsteal import build_cost_matrix
from repro.core.milp import FStealProblem, FStealSolution, FStealSolver
from repro.core.reduction_tree import ReductionTree
from repro.graph.features import FrontierFeatures
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["OStealDecision", "plan_osteal"]


@dataclass(frozen=True)
class OStealDecision:
    """Chosen ownership policy for the coming iterations."""

    group_size: int
    active_workers: List[int]
    ownership: np.ndarray  # fragment -> worker
    estimated_cost: float  # z(m) + p*m, seconds
    estimated_kernel: float  # z(m) alone
    fsteal: FStealSolution  # the X realizing z(m)
    costs: np.ndarray  # the cost matrix used (inf outside the group)


def plan_osteal(
    tree: ReductionTree,
    comm_cost: np.ndarray,
    fragment_features: Sequence[FrontierFeatures],
    workloads: np.ndarray,
    fragment_home: np.ndarray,
    cost_model: CostModel,
    solver: FStealSolver,
    p_estimate: float,
    candidate_sizes: Optional[Sequence[int]] = None,
    tracer: Tracer = NULL_TRACER,
) -> OStealDecision:
    """Algorithm 2: enumerate group sizes, return the cheapest policy.

    Parameters
    ----------
    tree:
        Reduction tree of the machine topology.
    comm_cost:
        Measured seconds-per-edge matrix between GPUs.
    fragment_features:
        Table-I features per fragment frontier (for ``g(W_i)``).
    workloads:
        ``l_i`` active edges per fragment.
    fragment_home:
        Fragment -> GPU holding its data.
    cost_model:
        Learned (or oracle) per-edge compute-cost model.
    solver:
        FSteal solver used to evaluate ``z(m)``.
    p_estimate:
        Current estimate of per-worker synchronization latency
        (seconds), from observed previous iterations.
    candidate_sizes:
        Group sizes to consider; defaults to ``1..n``.
    tracer:
        Observability hook; each Equation-4 evaluation is recorded as
        one ``osteal.enumerate`` span attribute (null by default).
    """
    num_workers = comm_cost.shape[0]
    sizes = (
        list(candidate_sizes)
        if candidate_sizes is not None
        else list(range(1, num_workers + 1))
    )
    best: Optional[OStealDecision] = None
    estimates = {} if tracer.enabled else None
    with tracer.span("osteal.enumerate", track="coordinator",
                     cat="osteal", candidates=len(sizes)) as span:
        for m in sizes:
            active = tree.active_workers(m)
            costs = build_cost_matrix(
                comm_cost,
                fragment_features,
                cost_model,
                fragment_home,
                allowed_workers=active,
            )
            solution = solver.solve(FStealProblem(costs, workloads))
            total = solution.objective + p_estimate * m
            if estimates is not None:
                estimates[f"m={m}"] = total
            if best is None or total < best.estimated_cost:
                best = OStealDecision(
                    group_size=m,
                    active_workers=active,
                    ownership=tree.ownership(m),
                    estimated_cost=total,
                    estimated_kernel=solution.objective,
                    fsteal=solution,
                    costs=costs,
                )
        assert best is not None  # sizes is never empty
        span.set(chosen=best.group_size, estimates=estimates)
    return best
