"""The OSteal reduction tree (Section IV-A, Figure 4b).

Enumerating every ownership-stealing policy is combinatorial
(``sum_i C(n,i) * i^(n-i)``); the paper collapses the search to a fixed
folding order derived from the NVLink topology: pair GPUs along their
widest links, evict one of each pair, recurse on the survivors. The
residual network keeps the largest aggregate bandwidth, and OSteal only
has to choose *how far down the tree to fold* (the group size ``m``).

:class:`ReductionTree` precomputes the full merge sequence — a list of
``(victim, thief)`` events — so that ``ownership(m)`` and
``active_workers(m)`` are O(n) lookups at decision time.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.hardware.topology import Topology

__all__ = ["ReductionTree", "HierarchicalReductionTree", "make_reduction_tree"]


class ReductionTree:
    """Bandwidth-greedy folding order for a topology.

    Levels are built by maximum-weight perfect matching on the direct
    NVLink lane counts among survivors (brute force — at most 8 GPUs,
    105 matchings). Within a level, pairs merge cheapest-loss first, so
    intermediate group sizes (the 8 -> 6 -> 4 -> 1 walk of Figure 9)
    also retain maximal bandwidth. In each merged pair the survivor is
    the endpoint whose links to the other survivors are wider.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._n = topology.num_gpus
        self._merges: List[Tuple[int, int]] = self._build()
        # cache: group size m -> (ownership vector, active list)
        self._cache: dict[int, Tuple[np.ndarray, List[int]]] = {}

    @property
    def topology(self) -> Topology:
        """The topology this tree folds."""
        return self._topology

    @property
    def merge_sequence(self) -> List[Tuple[int, int]]:
        """``(victim, thief)`` events; applying the first ``n - m``
        yields the group of size ``m``."""
        return list(self._merges)

    # ------------------------------------------------------------------
    def _build(self) -> List[Tuple[int, int]]:
        lanes = self._topology.lane_matrix
        merges: List[Tuple[int, int]] = []
        survivors = list(range(self._n))
        while len(survivors) > 1:
            pairs = _max_weight_matching(survivors, lanes)
            # order pairs: losing the least residual bandwidth first
            def loss(pair: Tuple[int, int]) -> int:
                victim = self._pick_victim(pair, survivors, lanes)
                return int(
                    sum(lanes[victim, s] for s in survivors if s != victim)
                )

            for a, b in sorted(pairs, key=loss):
                victim = self._pick_victim((a, b), survivors, lanes)
                thief = b if victim == a else a
                merges.append((victim, thief))
                survivors.remove(victim)
        return merges

    @staticmethod
    def _pick_victim(
        pair: Tuple[int, int], survivors: Sequence[int], lanes: np.ndarray
    ) -> int:
        """Evict the endpoint less connected to the other survivors."""
        a, b = pair
        a_bw = sum(lanes[a, s] for s in survivors if s not in pair)
        b_bw = sum(lanes[b, s] for s in survivors if s not in pair)
        if a_bw != b_bw:
            return a if a_bw < b_bw else b
        return max(a, b)  # tie: keep the lower id (it coordinates)

    # ------------------------------------------------------------------
    def ownership(self, group_size: int) -> np.ndarray:
        """Fragment -> worker vector ``O`` for a target group size.

        Applying the first ``n - m`` merges; a victim's fragments chase
        the thief's own final owner (thieves of one level can be
        victims of a later one).
        """
        ownership, __ = self._resolve(group_size)
        return ownership.copy()

    def active_workers(self, group_size: int) -> List[int]:
        """Sorted surviving worker ids at a target group size."""
        __, active = self._resolve(group_size)
        return list(active)

    def _resolve(self, group_size: int) -> Tuple[np.ndarray, List[int]]:
        if not 1 <= group_size <= self._n:
            raise TopologyError(
                f"group size {group_size} out of range 1..{self._n}"
            )
        if group_size not in self._cache:
            ownership = np.arange(self._n, dtype=np.int64)
            active = set(range(self._n))
            for victim, thief in self._merges[: self._n - group_size]:
                ownership[ownership == victim] = thief
                active.discard(victim)
            self._cache[group_size] = (ownership, sorted(active))
        return self._cache[group_size]


class HierarchicalReductionTree(ReductionTree):
    """Two-level folding order for a multi-node cluster.

    A flat fold at 16 GPUs would brute-force ~2M matchings per level
    and let the greedy matcher pair GPUs across the (narrow) IB
    fabric. The hierarchy avoids both: each node folds internally with
    level-synchronous NVLink matchings (at most 8-GPU instances), then
    the surviving per-node *representatives* fold over the inter-node
    rails. The representative set is what the two-level FSteal policy
    gates on — inter-node steals route only through a node's
    representative.

    Single-node topologies reduce to the flat :class:`ReductionTree`
    fold bit for bit.
    """

    def _build(self) -> List[Tuple[int, int]]:
        topology = self._topology
        if topology.num_nodes == 1:
            merges = super()._build()
            # flat machines have one trivial "node": its representative
            # is the fold's final survivor
            survivor = set(range(self._n))
            for victim, __ in merges:
                survivor.discard(victim)
            self._representatives = sorted(survivor)
            return merges
        lanes = topology.lane_matrix
        merges: List[Tuple[int, int]] = []
        survivors = [
            list(topology.node_members(u))
            for u in range(topology.num_nodes)
        ]
        # level-synchronous intra-node folds: every node runs one
        # matching round per level, nodes in ascending order
        while any(len(s) > 1 for s in survivors):
            for node_survivors in survivors:
                if len(node_survivors) <= 1:
                    continue
                pairs = _max_weight_matching(node_survivors, lanes)

                def loss(pair: Tuple[int, int]) -> int:
                    victim = self._pick_victim(
                        pair, node_survivors, lanes
                    )
                    return int(sum(
                        lanes[victim, s]
                        for s in node_survivors if s != victim
                    ))

                for a, b in sorted(pairs, key=loss):
                    victim = self._pick_victim(
                        (a, b), node_survivors, lanes
                    )
                    thief = b if victim == a else a
                    merges.append((victim, thief))
                    node_survivors.remove(victim)
        representatives = [s[0] for s in survivors]
        self._representatives = sorted(representatives)
        # representatives fold over the IB fabric: same greedy
        # matching, weighted by the node pair's rail count
        rep_lanes = np.zeros((self._n, self._n), dtype=np.int64)
        inter = topology.inter_node_lane_matrix
        for u, rep_u in enumerate(representatives):
            for v, rep_v in enumerate(representatives):
                if u != v:
                    rep_lanes[rep_u, rep_v] = inter[u, v]
        rep_survivors = sorted(representatives)
        while len(rep_survivors) > 1:
            pairs = _max_weight_matching(rep_survivors, rep_lanes)

            def rep_loss(pair: Tuple[int, int]) -> int:
                victim = self._pick_victim(pair, rep_survivors, rep_lanes)
                return int(sum(
                    rep_lanes[victim, s]
                    for s in rep_survivors if s != victim
                ))

            for a, b in sorted(pairs, key=rep_loss):
                victim = self._pick_victim((a, b), rep_survivors, rep_lanes)
                thief = b if victim == a else a
                merges.append((victim, thief))
                rep_survivors.remove(victim)
        return merges

    @property
    def representatives(self) -> List[int]:
        """Sorted per-node representative GPU ids (one per node)."""
        return list(self._representatives)


def make_reduction_tree(topology: Topology) -> ReductionTree:
    """The fold matching a topology's shape.

    Multi-node clusters get the two-level
    :class:`HierarchicalReductionTree`; flat machines keep the paper's
    :class:`ReductionTree` unchanged.
    """
    if topology.num_nodes > 1:
        return HierarchicalReductionTree(topology)
    return ReductionTree(topology)


def _max_weight_matching(
    nodes: Sequence[int], lanes: np.ndarray
) -> List[Tuple[int, int]]:
    """Brute-force maximum-weight (near-)perfect matching.

    Odd node counts leave one node unmatched. Weights are direct lane
    counts; PCIe-only pairs weigh 0 but may still be matched when
    nothing better exists (folding must always be possible).
    """
    nodes = list(nodes)
    if len(nodes) <= 1:
        return []
    best_pairs: List[Tuple[int, int]] = []
    best_weight = -1.0

    def recurse(
        remaining: Tuple[int, ...], acc: List[Tuple[int, int]], weight: float
    ) -> None:
        nonlocal best_pairs, best_weight
        if len(remaining) <= 1:
            if weight > best_weight:
                best_weight = weight
                best_pairs = list(acc)
            return
        first, rest = remaining[0], remaining[1:]
        for idx in range(len(rest)):
            partner = rest[idx]
            acc.append((first, partner))
            recurse(
                rest[:idx] + rest[idx + 1:],
                acc,
                weight + float(lanes[first, partner]),
            )
            acc.pop()
        if len(remaining) % 2 == 1:
            # leave `first` unmatched (odd survivor)
            recurse(rest, acc, weight)

    recurse(tuple(nodes), [], 0.0)
    return best_pairs
