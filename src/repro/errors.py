"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries. Subclasses mirror the
major subsystems (graph construction, partitioning, hardware modelling,
scheduling/solving, and engine execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Malformed or inconsistent graph data (bad CSR arrays, bad edges)."""


class PartitionError(ReproError):
    """Invalid partition specification or violated partition invariants."""


class TopologyError(ReproError):
    """Invalid hardware topology (bad lane matrix, unreachable devices)."""


class SolverError(ReproError):
    """A stealing-policy solver failed to produce a feasible solution."""


class EngineError(ReproError):
    """A processing engine was misconfigured or failed during execution."""


class ConvergenceError(EngineError):
    """An iterative algorithm exceeded its iteration budget."""


class CostModelError(ReproError):
    """Cost-model training or inference failed (e.g. empty training set)."""


class FaultInjectionError(ReproError):
    """A chaos scenario is malformed or impossible on this machine.

    Raised when a scenario file fails schema validation (unknown fault
    kind, missing fields, bad types) or references devices/links the
    target topology does not have.
    """


class DegradedModeError(EngineError):
    """Graceful degradation ran out of road.

    Raised when every worker has been killed, or a degradation policy
    (solver fallback chain, eviction, transfer retry) cannot produce
    any usable configuration. Also an :class:`EngineError`: exceeding
    the fault budget is an execution failure, not a scenario typo.
    """


class RunRegistryError(ReproError):
    """The run registry was asked something it cannot answer.

    Raised for unknown or ambiguous run references, corrupt manifests,
    and attempts to diff incommensurable runs (different workload or
    seed — numbers that were never comparable).
    """


class TraceFormatError(ReproError, ValueError):
    """A trace file is malformed, truncated, or not a trace at all.

    Also a :class:`ValueError` so callers that predate the dedicated
    type keep working.
    """


class SloConfigError(ReproError):
    """An SLO rule file is malformed or semantically invalid.

    Raised for unknown schemas, rules that mix the bound/series/history
    shapes, and out-of-range parameters (``ewma_alpha``, ``history``).
    Rule *violations* are never exceptions — they are report outcomes
    and an exit code.
    """
