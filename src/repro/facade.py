"""One-call convenience API.

For users who want an answer, not an experiment::

    import repro

    result = repro.run(my_graph, "sssp", source=3)           # GUM, 8 GPUs
    result = repro.run(my_graph, "wcc", engine="groute",
                       num_gpus=4, partitioner="metis")

Handles algorithm prerequisites automatically (symmetrization for WCC,
unit weights for SSSP on unweighted graphs) and returns the usual
:class:`~repro.runtime.metrics.RunResult`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Union

from repro.algorithms import GASAlgorithm, make_algorithm
from repro.backend import BACKEND_NAMES
from repro.baselines import GrouteEngine, GunrockEngine
from repro.core import GumConfig, GumEngine
from repro.errors import EngineError
from repro.graph.builders import symmetrize
from repro.graph.csr import CSRGraph
from repro.hardware.topology import Topology, parse_topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.partition.partitioners import make_partition
from repro.runtime import BSPEngine, EngineOptions, RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.costmodel import CostModel

__all__ = ["run"]


def run(
    graph: CSRGraph,
    algorithm: Union[str, GASAlgorithm],
    engine: str = "gum",
    num_gpus: int = 8,
    partitioner: str = "random",
    gum_config: Optional[GumConfig] = None,
    cost_model: Optional[Union[str, "CostModel"]] = None,
    seed: int = 0,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    chaos=None,
    backend: str = "serial",
    topology: Optional[Union[str, Topology]] = None,
    **params,
) -> RunResult:
    """Partition, schedule, and execute one algorithm in a single call.

    Parameters
    ----------
    graph:
        Input graph; prerequisites (symmetric edges for WCC) are
        derived automatically.
    algorithm:
        Registered name (``bfs``/``sssp``/``wcc``/``pr``/``dpr``) or an
        instance.
    engine:
        ``gum`` (default), ``gunrock``, ``groute``, or ``bsp``.
    num_gpus:
        Virtual GPU count (1..8, DGX-1 sub-topology).
    partitioner:
        ``random`` / ``seg`` / ``metis``.
    gum_config:
        Arbitrator overrides (GUM only).
    cost_model:
        Shorthand for ``gum_config.cost_model`` (GUM only): a model
        name (``default``/``oracle``/``uniform``), a
        :class:`~repro.core.costmodel.CostModel` instance, or a path
        to a ``repro-costmodel/1`` artifact written by
        ``repro costmodel fit`` — so a freshly fitted model plugs in
        as ``repro.run(graph, "bfs", cost_model="model.json")``.
        Overrides any ``gum_config.cost_model`` already set.
    tracer / metrics:
        Observability hooks (:mod:`repro.obs`): pass a
        :class:`~repro.obs.tracer.Tracer` and/or
        :class:`~repro.obs.metrics.MetricsRegistry` to record the run.
    chaos:
        A :class:`~repro.chaos.ChaosController` to inject faults into
        the run (BSP-style engines only; see ``docs/robustness.md``).
    backend:
        Execution backend: ``serial`` (in-process, default) or
        ``shmem`` (one worker process per virtual GPU over
        shared-memory graph buffers; BSP-style engines only). Never
        changes results or virtual time — see ``docs/performance.md``.
    topology:
        Machine shape: ``None`` (the ``num_gpus``-GPU DGX-1
        sub-topology), a :class:`~repro.hardware.Topology`, or a
        selector string like ``"nodes=2x4"`` (a 2-node cluster of
        4-GPU servers; the worker count then comes from the topology
        and two-level hierarchical stealing activates).
    params:
        Algorithm init parameters (``source=...`` etc.).

    With the default GUM engine the returned result also carries a
    per-decision explainability ledger (``result.ledger``, a
    :class:`~repro.obs.ledger.Ledger`): every OSteal/FSteal decision
    with its features, predicted vs measured cost, and drift analytics.
    """
    if cost_model is not None:
        if engine != "gum":
            raise EngineError(
                "cost_model= only applies to the gum engine; "
                f"engine={engine!r} has no cost model"
            )
        gum_config = replace(
            gum_config or GumConfig(), cost_model=cost_model
        )
    if isinstance(algorithm, str):
        algorithm = make_algorithm(algorithm)
    if algorithm.needs_symmetric and graph.directed:
        graph = symmetrize(graph).with_name(graph.name)
    if topology is None:
        topology = parse_topology(None, num_gpus)
    else:
        # an explicit topology defines the worker count; num_gpus is
        # ignored (its default of 8 can't be told apart from a request)
        topology = parse_topology(topology)
        num_gpus = topology.num_gpus
    partition = make_partition(partitioner, graph, num_gpus, seed=seed)
    obs = {"tracer": tracer, "metrics": metrics}
    if chaos is not None:
        if engine == "groute":
            raise EngineError(
                "fault injection requires a BSP-style engine; "
                "groute's asynchronous runtime is not supported"
            )
        obs["chaos"] = chaos
    if backend not in BACKEND_NAMES:
        raise EngineError(
            f"unknown execution backend {backend!r}; known: "
            + ", ".join(BACKEND_NAMES)
        )
    if backend != "serial":
        if engine == "groute":
            raise EngineError(
                "execution backends require a BSP-style engine; "
                "groute's asynchronous runtime is not supported"
            )
        obs["options"] = EngineOptions(backend=backend)
    if engine == "gum":
        runner = GumEngine(topology, config=gum_config, **obs)
    elif engine == "gunrock":
        runner = GunrockEngine(topology, **obs)
    elif engine == "groute":
        runner = GrouteEngine(topology, **obs)
    elif engine == "bsp":
        runner = BSPEngine(topology, name="bsp", **obs)
    else:
        raise EngineError(
            f"unknown engine {engine!r}; "
            "known: gum, gunrock, groute, bsp"
        )
    return runner.run(graph, partition, algorithm, **params)
