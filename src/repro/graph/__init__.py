"""Graph substrate: CSR structure, builders, generators, properties.

Public surface of the graph subpackage::

    from repro.graph import CSRGraph, from_edges, rmat, degree_summary
"""

from repro.graph.csr import CSRGraph, ShardedCSRGraph
from repro.graph.builders import (
    coalesce_duplicates,
    from_edge_arrays,
    from_edges,
    load_edge_list,
    load_matrix_market,
    remove_self_loops,
    save_edge_list,
    symmetrize,
)
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    grid_2d,
    path_graph,
    rmat,
    road_network,
    small_world,
    star,
    web_graph,
    with_random_weights,
)
from repro.graph.properties import (
    DegreeSummary,
    bfs_levels,
    degree_entropy,
    degree_summary,
    gini_coefficient,
    is_connected,
    largest_component_fraction,
    pseudo_diameter,
)
from repro.graph.traversal import (
    ego_network,
    filter_by_degree,
    induced_subgraph,
    k_hop_neighborhood,
    top_degree_vertices,
)
from repro.graph.features import FEATURE_NAMES, FrontierFeatures, frontier_features
from repro.graph.gather import gather_edge_positions, gather_edges
from repro.graph.io_npz import (
    load_graph,
    load_partition,
    open_graph_sharded,
    save_graph,
    save_graph_sharded,
    save_partition,
)
from repro.graph.datasets import DATASETS, DatasetSpec, dataset_names, load

__all__ = [
    "CSRGraph",
    "ShardedCSRGraph",
    "from_edges",
    "from_edge_arrays",
    "symmetrize",
    "remove_self_loops",
    "coalesce_duplicates",
    "load_edge_list",
    "load_matrix_market",
    "save_edge_list",
    "rmat",
    "erdos_renyi",
    "grid_2d",
    "road_network",
    "web_graph",
    "small_world",
    "star",
    "path_graph",
    "complete_graph",
    "with_random_weights",
    "DegreeSummary",
    "degree_summary",
    "gini_coefficient",
    "degree_entropy",
    "bfs_levels",
    "pseudo_diameter",
    "is_connected",
    "largest_component_fraction",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load",
    "k_hop_neighborhood",
    "induced_subgraph",
    "filter_by_degree",
    "ego_network",
    "top_degree_vertices",
    "FrontierFeatures",
    "frontier_features",
    "FEATURE_NAMES",
    "gather_edges",
    "gather_edge_positions",
    "save_graph",
    "load_graph",
    "save_graph_sharded",
    "open_graph_sharded",
    "save_partition",
    "load_partition",
]
