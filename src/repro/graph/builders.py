"""Constructing :class:`~repro.graph.csr.CSRGraph` from edge data.

Builders accept edges in the most common interchange forms — arrays of
``(src, dst[, weight])``, Python iterables, whitespace-separated edge-list
files, and MatrixMarket coordinate files — and normalize them into a
validated CSR structure. All builders are deterministic: CSR order is
``(src, dst)``-sorted unless noted.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph, _as_index_array

__all__ = [
    "from_edges",
    "from_edge_arrays",
    "symmetrize",
    "remove_self_loops",
    "coalesce_duplicates",
    "load_edge_list",
    "load_matrix_market",
    "save_edge_list",
]

EdgeLike = Union[Tuple[int, int], Tuple[int, int, float], Sequence[float]]


def from_edge_arrays(
    sources: np.ndarray,
    destinations: np.ndarray,
    num_vertices: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
    directed: bool = True,
    name: str = "graph",
    sort: bool = True,
) -> CSRGraph:
    """Build a CSR graph from parallel source/destination arrays.

    Parameters
    ----------
    sources, destinations:
        Parallel integer arrays of edge endpoints.
    num_vertices:
        Explicit vertex count; inferred as ``max id + 1`` when ``None``.
    weights:
        Optional parallel weight array.
    directed:
        Interpretation flag stored on the graph (no edges are added).
    sort:
        Sort edges by ``(src, dst)`` for a canonical CSR layout. Disable
        only when the caller guarantees sources are already grouped.
    """
    src = _as_index_array(sources, "sources").ravel()
    dst = _as_index_array(destinations, "destinations").ravel()
    if src.shape != dst.shape:
        raise GraphError("sources and destinations must be parallel arrays")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != src.shape:
            raise GraphError("weights must be parallel to the edge arrays")
    if src.size:
        lo = min(int(src.min()), int(dst.min()))
        hi = max(int(src.max()), int(dst.max()))
        if lo < 0:
            raise GraphError("vertex ids must be non-negative")
    else:
        hi = -1
    if num_vertices is None:
        num_vertices = hi + 1
    elif hi >= num_vertices:
        raise GraphError(
            f"edge endpoint {hi} out of range for num_vertices={num_vertices}"
        )

    if sort and src.size:
        order = np.lexsort((dst, src))
        src = src[order]
        dst = dst[order]
        if weights is not None:
            weights = weights[order]

    counts = np.bincount(src, minlength=num_vertices).astype(np.int64)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr, dst, weights=weights, directed=directed, name=name)


def from_edges(
    edges: Iterable[EdgeLike],
    num_vertices: Optional[int] = None,
    directed: bool = True,
    name: str = "graph",
) -> CSRGraph:
    """Build a CSR graph from an iterable of ``(src, dst[, weight])``.

    Weights are used only if *every* edge carries one; a mix of weighted
    and unweighted tuples raises :class:`GraphError`.
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wts: list[float] = []
    saw_weight = None
    for edge in edges:
        if len(edge) == 2:
            has_weight = False
        elif len(edge) == 3:
            has_weight = True
        else:
            raise GraphError(f"edge tuple must have 2 or 3 fields: {edge!r}")
        if saw_weight is None:
            saw_weight = has_weight
        elif saw_weight != has_weight:
            raise GraphError("cannot mix weighted and unweighted edges")
        srcs.append(int(edge[0]))
        dsts.append(int(edge[1]))
        if has_weight:
            wts.append(float(edge[2]))
    weights = np.asarray(wts, dtype=np.float64) if saw_weight else None
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        num_vertices=num_vertices,
        weights=weights,
        directed=directed,
        name=name,
    )


def remove_self_loops(graph: CSRGraph) -> CSRGraph:
    """Return a copy of ``graph`` with all self-loop edges dropped."""
    src, dst = graph.edge_array()
    keep = src != dst
    weights = graph.weights[keep] if graph.weights is not None else None
    return from_edge_arrays(
        src[keep],
        dst[keep],
        num_vertices=graph.num_vertices,
        weights=weights,
        directed=graph.directed,
        name=graph.name,
    )


def coalesce_duplicates(graph: CSRGraph, reduce: str = "min") -> CSRGraph:
    """Merge parallel edges, combining weights by ``min``/``max``/``sum``.

    Unweighted graphs simply deduplicate the edge set.
    """
    if reduce not in ("min", "max", "sum"):
        raise GraphError(f"unknown reduce mode {reduce!r}")
    src, dst = graph.edge_array()
    if src.size == 0:
        return graph
    keys = src * graph.num_vertices + dst
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    unique_mask = np.empty(keys.size, dtype=bool)
    unique_mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=unique_mask[1:])
    group_ids = np.cumsum(unique_mask) - 1

    new_src = src[order][unique_mask]
    new_dst = dst[order][unique_mask]
    new_weights = None
    if graph.weights is not None:
        sorted_w = graph.weights[order]
        num_groups = int(group_ids[-1]) + 1
        if reduce == "sum":
            new_weights = np.zeros(num_groups, dtype=np.float64)
            np.add.at(new_weights, group_ids, sorted_w)
        else:
            fill = np.inf if reduce == "min" else -np.inf
            new_weights = np.full(num_groups, fill, dtype=np.float64)
            ufunc = np.minimum if reduce == "min" else np.maximum
            ufunc.at(new_weights, group_ids, sorted_w)
    return from_edge_arrays(
        new_src,
        new_dst,
        num_vertices=graph.num_vertices,
        weights=new_weights,
        directed=graph.directed,
        name=graph.name,
        sort=False,
    )


def symmetrize(graph: CSRGraph, reduce: str = "min") -> CSRGraph:
    """Return the undirected closure: every edge gets a reverse twin.

    Duplicates created by the union are coalesced with ``reduce``. The
    result is flagged ``directed=False``.
    """
    src, dst = graph.edge_array()
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    weights = None
    if graph.weights is not None:
        weights = np.concatenate([graph.weights, graph.weights])
    combined = from_edge_arrays(
        all_src,
        all_dst,
        num_vertices=graph.num_vertices,
        weights=weights,
        directed=False,
        name=graph.name,
    )
    return coalesce_duplicates(combined, reduce=reduce)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------
def _open_text(path: Union[str, Path]) -> io.TextIOBase:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"))
    return open(path, "r")


def load_edge_list(
    path: Union[str, Path],
    directed: bool = True,
    comment_chars: str = "#%",
    name: Optional[str] = None,
) -> CSRGraph:
    """Load a whitespace-separated edge-list file (optionally gzipped).

    Lines are ``src dst`` or ``src dst weight``; lines starting with any
    character in ``comment_chars`` are skipped. Vertex ids are arbitrary
    non-negative integers and are kept as-is (the vertex count is the max
    id + 1).
    """
    srcs: list[int] = []
    dsts: list[int] = []
    wts: list[float] = []
    saw_weight = None
    with _open_text(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line[0] in comment_chars:
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphError(
                    f"{path}:{lineno}: expected 2 or 3 fields, got {len(parts)}"
                )
            has_weight = len(parts) == 3
            if saw_weight is None:
                saw_weight = has_weight
            elif saw_weight != has_weight:
                raise GraphError(
                    f"{path}:{lineno}: mixed weighted/unweighted lines"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if has_weight:
                wts.append(float(parts[2]))
    weights = np.asarray(wts, dtype=np.float64) if saw_weight else None
    return from_edge_arrays(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        weights=weights,
        directed=directed,
        name=name or Path(path).stem,
    )


def load_matrix_market(
    path: Union[str, Path], name: Optional[str] = None
) -> CSRGraph:
    """Load a MatrixMarket ``coordinate`` file as a graph.

    Supports ``pattern`` (unweighted) and ``real``/``integer`` (weighted)
    fields, and expands ``symmetric`` storage into both edge directions.
    Vertex ids are converted from 1-based to 0-based.
    """
    with _open_text(path) as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise GraphError(f"{path}: missing MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[2] != "coordinate":
            raise GraphError(f"{path}: only coordinate format is supported")
        field, symmetry = tokens[3], tokens[4]
        if field not in ("pattern", "real", "integer"):
            raise GraphError(f"{path}: unsupported field {field!r}")
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise GraphError(f"{path}: malformed size line")
        rows, cols, __ = (int(x) for x in dims)
        n = max(rows, cols)

        srcs: list[int] = []
        dsts: list[int] = []
        wts: list[float] = []
        for raw in handle:
            raw = raw.strip()
            if not raw or raw.startswith("%"):
                continue
            parts = raw.split()
            u, v = int(parts[0]) - 1, int(parts[1]) - 1
            srcs.append(u)
            dsts.append(v)
            if field != "pattern":
                wts.append(float(parts[2]))
    weights = np.asarray(wts, dtype=np.float64) if field != "pattern" else None
    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    directed = symmetry != "symmetric"
    if symmetry == "symmetric":
        off_diag = src != dst
        src, dst = (
            np.concatenate([src, dst[off_diag]]),
            np.concatenate([dst, src[off_diag]]),
        )
        if weights is not None:
            weights = np.concatenate([weights, weights[off_diag]])
    return from_edge_arrays(
        src,
        dst,
        num_vertices=n,
        weights=weights,
        directed=directed,
        name=name or Path(path).stem,
    )


def save_edge_list(graph: CSRGraph, path: Union[str, Path]) -> None:
    """Write the graph as a whitespace-separated edge-list file."""
    src, dst = graph.edge_array()
    with open(path, "w") as handle:
        handle.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                     f"{graph.num_edges} edges\n")
        if graph.weights is not None:
            for u, v, w in zip(src, dst, graph.weights):
                handle.write(f"{u} {v} {w:g}\n")
        else:
            for u, v in zip(src, dst):
                handle.write(f"{u} {v}\n")
