"""Immutable CSR graph representation.

:class:`CSRGraph` is the core data structure of the library: a directed
graph stored in Compressed Sparse Row form (``indptr``/``indices`` plus an
optional parallel ``weights`` array). Every engine, partitioner, and
algorithm operates on this structure.

The CSC (reverse) view needed for pull-style gathers and for in-degree
features (Table I of the paper) is built lazily and cached.

Design notes
------------
* Vertex ids are dense integers ``0..num_vertices-1``; the builders module
  handles relabelling from arbitrary ids.
* Arrays are validated once at construction and then never mutated; all
  accessors return read-only views or fresh arrays.
* Degrees are O(1) vectorized lookups, which the runtime relies on for
  frontier workload computation (``work = sum of out-degrees``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """A directed graph in CSR form with optional edge weights.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``indptr[0] == 0`` and ``indptr[-1] == num_edges``.
    indices:
        ``int64`` array of length ``num_edges``; destination vertex of each
        edge, in ``[0, num_vertices)``.
    weights:
        Optional ``float64`` array parallel to ``indices``. ``None`` means
        the graph is unweighted (algorithms treat every edge as weight 1).
    directed:
        Metadata flag recording whether the edge set is meant to be read as
        directed. Symmetrized graphs built by the builders carry
        ``directed=False`` even though both edge directions are stored.
    name:
        Human-readable label used in benchmark reports.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_directed",
        "_name",
        "_csc_cache",
        "_in_degrees_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if indptr.size > 1 and np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        num_vertices = indptr.size - 1
        if indices.size and (
            indices.min() < 0 or indices.max() >= num_vertices
        ):
            raise GraphError("edge destination out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != indices.shape:
                raise GraphError("weights must be parallel to indices")
            weights.setflags(write=False)
        indptr.setflags(write=False)
        indices.setflags(write=False)

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._directed = bool(directed)
        self._name = str(name)
        self._csc_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._in_degrees_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges ``|E|``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array, length ``|V| + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array, length ``|E|``."""
        return self._indices

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Read-only edge-weight array, or ``None`` if unweighted."""
        return self._weights

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries an explicit weight per edge."""
        return self._weights is not None

    @property
    def directed(self) -> bool:
        """Whether the edge set should be interpreted as directed."""
        return self._directed

    @property
    def name(self) -> str:
        """Human-readable graph label."""
        return self._name

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"CSRGraph(name={self._name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {kind}, "
            f"weighted={self.is_weighted})"
        )

    # ------------------------------------------------------------------
    # Degrees and neighborhoods
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self, vertices: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degrees of ``vertices`` (or of all vertices if ``None``)."""
        if vertices is None:
            return np.diff(self._indptr)
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._indptr[vertices + 1] - self._indptr[vertices]

    def in_degrees(self) -> np.ndarray:
        """In-degrees of all vertices (cached)."""
        if self._in_degrees_cache is None:
            counts = np.bincount(
                self._indices, minlength=self.num_vertices
            ).astype(np.int64)
            counts.setflags(write=False)
            self._in_degrees_cache = counts
        return self._in_degrees_cache

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a read-only array view."""
        return self._indices[self._indptr[v]: self._indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of the out-edges of ``v`` (all-ones if unweighted)."""
        lo, hi = self._indptr[v], self._indptr[v + 1]
        if self._weights is None:
            return np.ones(int(hi - lo), dtype=np.float64)
        return self._weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in CSR order.

        This is a convenience for tests and small graphs; hot paths use
        the vectorized array accessors instead.
        """
        for v in range(self.num_vertices):
            lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
            for k in range(lo, hi):
                w = 1.0 if self._weights is None else float(self._weights[k])
                yield v, int(self._indices[k]), w

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` arrays of all edges."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self._indptr),
        )
        return sources, self._indices.copy()

    # ------------------------------------------------------------------
    # Reverse (CSC) view
    # ------------------------------------------------------------------
    def _build_csc(self) -> Tuple[np.ndarray, np.ndarray]:
        """Build the reverse adjacency (in-neighbors) arrays."""
        n = self.num_vertices
        in_deg = np.bincount(self._indices, minlength=n).astype(np.int64)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=rindptr[1:])
        order = np.argsort(self._indices, kind="stable")
        sources, __ = self.edge_array()
        rindices = sources[order]
        rindptr.setflags(write=False)
        rindices.setflags(write=False)
        return rindptr, rindices

    def reverse_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return cached ``(rindptr, rindices)`` CSC arrays.

        ``rindices[rindptr[v]:rindptr[v+1]]`` are the in-neighbors of
        ``v``. Built on first use; subsequent calls are O(1).
        """
        if self._csc_cache is None:
            self._csc_cache = self._build_csc()
        return self._csc_cache

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (builds the CSC view on first use)."""
        rindptr, rindices = self.reverse_adjacency()
        return rindices[rindptr[v]: rindptr[v + 1]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Return a new graph with every edge direction flipped."""
        rindptr, rindices = self.reverse_adjacency()
        rweights = None
        if self._weights is not None:
            order = np.argsort(self._indices, kind="stable")
            rweights = self._weights[order]
        return CSRGraph(
            rindptr.copy(),
            rindices.copy(),
            weights=rweights,
            directed=self._directed,
            name=f"{self._name}-rev",
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Return a shallow copy carrying a different label."""
        g = CSRGraph.__new__(CSRGraph)
        g._indptr = self._indptr
        g._indices = self._indices
        g._weights = self._weights
        g._directed = self._directed
        g._name = str(name)
        g._csc_cache = self._csc_cache
        g._in_degrees_cache = self._in_degrees_cache
        return g

    def with_unit_weights(self) -> "CSRGraph":
        """Return a copy whose every edge weight is 1.0."""
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            weights=np.ones(self.num_edges, dtype=np.float64),
            directed=self._directed,
            name=self._name,
        )
