"""Immutable CSR graph representation.

:class:`CSRGraph` is the core data structure of the library: a directed
graph stored in Compressed Sparse Row form (``indptr``/``indices`` plus an
optional parallel ``weights`` array). Every engine, partitioner, and
algorithm operates on this structure.

The CSC (reverse) view needed for pull-style gathers and for in-degree
features (Table I of the paper) is built lazily and cached.

Design notes
------------
* Vertex ids are dense integers ``0..num_vertices-1``; the builders module
  handles relabelling from arbitrary ids.
* Arrays are validated once at construction and then never mutated; all
  accessors return read-only views or fresh arrays.
* Degrees are O(1) vectorized lookups, which the runtime relies on for
  frontier workload computation (``work = sum of out-degrees``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph", "ShardedCSRGraph"]


def _as_index_array(array: np.ndarray, label: str) -> np.ndarray:
    """Normalize a CSR index array to contiguous ``int64``, losslessly.

    Construction paths hand us whatever a loader produced — ``int32``
    from a matrix-market reader, a strided slice, or (by accident) a
    float array. Silent truncation of a fractional value would corrupt
    the topology, and a raw shared-memory mapping of a non-contiguous
    or non-``int64`` buffer would be garbage, so both are rejected or
    normalized here, once, at construction.
    """
    source = np.asarray(array)
    out = np.ascontiguousarray(source, dtype=np.int64)
    if source.dtype != np.int64 and source.size:
        if not np.array_equal(out, source):
            raise GraphError(
                f"{label} cannot be losslessly converted to int64 "
                f"(source dtype {source.dtype})"
            )
    return out


class CSRGraph:
    """A directed graph in CSR form with optional edge weights.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``indptr[0] == 0`` and ``indptr[-1] == num_edges``.
    indices:
        ``int64`` array of length ``num_edges``; destination vertex of each
        edge, in ``[0, num_vertices)``.
    weights:
        Optional ``float64`` array parallel to ``indices``. ``None`` means
        the graph is unweighted (algorithms treat every edge as weight 1).
    directed:
        Metadata flag recording whether the edge set is meant to be read as
        directed. Symmetrized graphs built by the builders carry
        ``directed=False`` even though both edge directions are stored.
    name:
        Human-readable label used in benchmark reports.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_directed",
        "_name",
        "_csc_cache",
        "_csc_order_cache",
        "_in_degrees_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = _as_index_array(indptr, "indptr")
        indices = _as_index_array(indices, "indices")
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if indptr.size > 1 and np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        num_vertices = indptr.size - 1
        if indices.size and (
            indices.min() < 0 or indices.max() >= num_vertices
        ):
            raise GraphError("edge destination out of range")
        if weights is not None:
            # asarray first: ascontiguousarray applied directly to an
            # np.memmap copies even when the mapping is already
            # contiguous float64, defeating mmap-mode loads
            weights = np.ascontiguousarray(
                np.asarray(weights), dtype=np.float64
            )
            if weights.ndim != 1 or weights.shape != indices.shape:
                raise GraphError("weights must be parallel to indices")
            weights.setflags(write=False)
        indptr.setflags(write=False)
        indices.setflags(write=False)

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._directed = bool(directed)
        self._name = str(name)
        self._csc_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._csc_order_cache: Optional[np.ndarray] = None
        self._in_degrees_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Pickling (spawn-started worker processes ship graphs by pickle
    # when they are not shared-memory mapped). Lazy caches are dropped
    # — each process rebuilds them on demand — and the read-only flags,
    # which numpy does not preserve across pickling, are restored.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "indptr": self._indptr,
            "indices": self._indices,
            "weights": self._weights,
            "directed": self._directed,
            "name": self._name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["indptr"],
            state["indices"],
            weights=state["weights"],
            directed=state["directed"],
            name=state["name"],
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges ``|E|``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array, length ``|V| + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array, length ``|E|``."""
        return self._indices

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Read-only edge-weight array, or ``None`` if unweighted."""
        return self._weights

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries an explicit weight per edge."""
        return self._weights is not None

    @property
    def directed(self) -> bool:
        """Whether the edge set should be interpreted as directed."""
        return self._directed

    @property
    def name(self) -> str:
        """Human-readable graph label."""
        return self._name

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"CSRGraph(name={self._name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {kind}, "
            f"weighted={self.is_weighted})"
        )

    # ------------------------------------------------------------------
    # Degrees and neighborhoods
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self, vertices: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degrees of ``vertices`` (or of all vertices if ``None``)."""
        if vertices is None:
            return np.diff(self._indptr)
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._indptr[vertices + 1] - self._indptr[vertices]

    def in_degrees(self) -> np.ndarray:
        """In-degrees of all vertices (cached)."""
        if self._in_degrees_cache is None:
            counts = np.bincount(
                self._indices, minlength=self.num_vertices
            ).astype(np.int64)
            counts.setflags(write=False)
            self._in_degrees_cache = counts
        return self._in_degrees_cache

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a read-only array view."""
        return self._indices[self._indptr[v]: self._indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of the out-edges of ``v`` (all-ones if unweighted)."""
        lo, hi = self._indptr[v], self._indptr[v + 1]
        if self._weights is None:
            return np.ones(int(hi - lo), dtype=np.float64)
        return self._weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in CSR order.

        This is a convenience for tests and small graphs; hot paths use
        the vectorized array accessors instead.
        """
        for v in range(self.num_vertices):
            lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
            for k in range(lo, hi):
                w = 1.0 if self._weights is None else float(self._weights[k])
                yield v, int(self._indices[k]), w

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` arrays of all edges."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self._indptr),
        )
        return sources, self._indices.copy()

    # ------------------------------------------------------------------
    # Reverse (CSC) view
    # ------------------------------------------------------------------
    def _build_csc(self) -> Tuple[np.ndarray, np.ndarray]:
        """Build the reverse adjacency (in-neighbors) arrays."""
        n = self.num_vertices
        in_deg = np.bincount(self._indices, minlength=n).astype(np.int64)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=rindptr[1:])
        order = self._csc_order()
        sources, __ = self.edge_array()
        rindices = sources[order]
        rindptr.setflags(write=False)
        rindices.setflags(write=False)
        return rindptr, rindices

    def _csc_order(self) -> np.ndarray:
        """The stable CSR→CSC edge permutation (cached).

        ``reversed()`` permutes weights with exactly this array, so the
        reversed weights are aligned with the cached CSC view by
        construction rather than by recomputing (and trusting) a second
        argsort.
        """
        if self._csc_order_cache is None:
            order = np.argsort(self._indices, kind="stable")
            order.setflags(write=False)
            self._csc_order_cache = order
        return self._csc_order_cache

    def reverse_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return cached ``(rindptr, rindices)`` CSC arrays.

        ``rindices[rindptr[v]:rindptr[v+1]]`` are the in-neighbors of
        ``v``. Built on first use; subsequent calls are O(1).
        """
        if self._csc_cache is None:
            self._csc_cache = self._build_csc()
        return self._csc_cache

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (builds the CSC view on first use)."""
        rindptr, rindices = self.reverse_adjacency()
        return rindices[rindptr[v]: rindptr[v + 1]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Return a new graph with every edge direction flipped."""
        rindptr, rindices = self.reverse_adjacency()
        rweights = None
        if self._weights is not None:
            rweights = self._weights[self._csc_order()]
        return CSRGraph(
            rindptr.copy(),
            rindices.copy(),
            weights=rweights,
            directed=self._directed,
            name=f"{self._name}-rev",
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Return a shallow copy carrying a different label."""
        g = CSRGraph.__new__(CSRGraph)
        g._indptr = self._indptr
        g._indices = self._indices
        g._weights = self._weights
        g._directed = self._directed
        g._name = str(name)
        g._csc_cache = self._csc_cache
        g._csc_order_cache = self._csc_order_cache
        g._in_degrees_cache = self._in_degrees_cache
        return g

    def with_unit_weights(self) -> "CSRGraph":
        """Return a copy whose every edge weight is 1.0."""
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            weights=np.ones(self.num_edges, dtype=np.float64),
            directed=self._directed,
            name=self._name,
        )


class _ShardedEdgeArray:
    """Array-like view over one edge-axis field of a sharded graph.

    Supports exactly the access patterns the engines use on
    ``graph.indices`` / ``graph.weights``: fancy indexing with a 1-D
    position array (the gather hot path), slices, and scalars. Every
    access routes through the owning graph's budgeted shard cache, so
    only the touched shards are resident.
    """

    __slots__ = ("_graph", "_field")

    def __init__(self, graph: "ShardedCSRGraph", field: str) -> None:
        self._graph = graph
        self._field = field

    @property
    def dtype(self) -> np.dtype:
        """Element dtype (``int64`` indices, ``float64`` weights)."""
        return self._graph._field_dtype(self._field)

    @property
    def size(self) -> int:
        """Total number of edges."""
        return self._graph.num_edges

    @property
    def shape(self) -> Tuple[int, ...]:
        """1-D shape over the edge axis."""
        return (self._graph.num_edges,)

    @property
    def ndim(self) -> int:
        """Always 1 — edge arrays are flat."""
        return 1

    def __len__(self) -> int:
        return self._graph.num_edges

    def __getitem__(self, key):
        return self._graph._edge_take(self._field, key)

    def __array__(self, dtype=None, copy=None):
        # full materialization escape hatch for generic numpy code;
        # streams shard-by-shard through the cache (the concatenated
        # result itself is E-sized, like any full gather)
        full = self._graph._edge_take(
            self._field, slice(0, self._graph.num_edges)
        )
        if dtype is not None:
            full = full.astype(dtype, copy=False)
        return full

    def min(self):
        """Streaming minimum over all edges (min is exactly associative)."""
        return self._reduce(np.minimum)

    def max(self):
        """Streaming maximum over all edges (max is exactly associative)."""
        return self._reduce(np.maximum)

    def _reduce(self, op):
        best = None
        graph = self._graph
        for shard in range(graph.num_shards):
            array = graph._shard_array(shard, self._field)
            if array.size == 0:
                continue
            value = op.reduce(array)
            best = value if best is None else op(best, value)
        if best is None:
            raise ValueError("zero-size array reduction")
        return best

    def mean(self):
        """Mean over all edges.

        Materializes once: NumPy's pairwise summation is order
        dependent, so a streamed per-shard mean would not be
        bit-identical to ``ndarray.mean`` on the concatenated array.
        """
        return np.asarray(self).mean()

    def __repr__(self) -> str:
        return (
            f"_ShardedEdgeArray(field={self._field!r}, "
            f"size={self.size}, shards={self._graph.num_shards})"
        )


class ShardedCSRGraph:
    """Out-of-core CSR graph backed by on-disk vertex-range shards.

    Duck-types the :class:`CSRGraph` surface the engines, algorithms,
    partitioners, and feature scans touch — ``indptr`` (resident),
    ``indices``/``weights`` (lazy :class:`_ShardedEdgeArray` views),
    degree accessors — while only materializing the shards a superstep
    actually reads. Shards live in an LRU cache bounded by
    ``resident_bytes``; loads, hits, evictions, and the resident
    high-water mark are counted and optionally published through a
    :class:`~repro.obs.metrics.MetricsRegistry`.

    The hard invariant mirrors the execution backends': a sharded
    graph changes *where bytes live*, never results or virtual time —
    every accessor returns bit-identical values to an in-core
    :class:`CSRGraph` over the same arrays (the sharded equivalence
    tests pin this).

    Parameters
    ----------
    indptr:
        Global row-pointer array (always resident; ``8 * (|V|+1)``
        bytes — the out-of-core budget governs the edge shards).
    shard_loader:
        ``(shard_id, field) -> np.ndarray`` callable materializing one
        shard's ``"indices"`` or ``"weights"`` payload.
    vertex_starts / edge_starts:
        Shard boundaries: shard ``s`` owns vertices
        ``[vertex_starts[s], vertex_starts[s+1])`` and the edge range
        ``[edge_starts[s], edge_starts[s+1])``; both length
        ``num_shards + 1``.
    weighted:
        Whether shards carry a ``weights`` payload.
    resident_bytes:
        Shard-cache budget. Eviction runs *before* a load, so the
        resident total only exceeds the budget when a single shard is
        larger than the whole budget.
    metrics:
        Optional registry receiving the cache counters; ``None``
        keeps counting purely local (``cache_stats()``).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        shard_loader: Callable[[int, str], np.ndarray],
        vertex_starts: np.ndarray,
        edge_starts: np.ndarray,
        weighted: bool,
        directed: bool = True,
        name: str = "graph",
        resident_bytes: int = 256 << 20,
        metrics=None,
    ) -> None:
        self._indptr = _as_index_array(indptr, "indptr")
        self._indptr.setflags(write=False)
        self._vertex_starts = _as_index_array(
            vertex_starts, "vertex_starts"
        )
        self._edge_starts = _as_index_array(edge_starts, "edge_starts")
        if self._vertex_starts.size != self._edge_starts.size:
            raise GraphError(
                "vertex_starts and edge_starts must be parallel"
            )
        if self._vertex_starts.size < 2:
            raise GraphError("need at least one shard")
        if (
            self._vertex_starts[0] != 0
            or self._vertex_starts[-1] != self._indptr.size - 1
            or np.any(np.diff(self._vertex_starts) < 0)
        ):
            raise GraphError("vertex_starts must tile 0..num_vertices")
        if not np.array_equal(
            self._edge_starts, self._indptr[self._vertex_starts]
        ):
            raise GraphError(
                "edge_starts must equal indptr at the shard boundaries"
            )
        self._loader = shard_loader
        self._weighted = bool(weighted)
        self._directed = bool(directed)
        self._name = str(name)
        self._budget = int(resident_bytes)
        if self._budget <= 0:
            raise GraphError("resident_bytes must be positive")
        self._cache: "OrderedDict[Tuple[int, str], np.ndarray]" = (
            OrderedDict()
        )
        self._resident = 0
        self._stats = {
            "shards": self.num_shards,
            "budget_bytes": self._budget,
            "loads": 0,
            "hits": 0,
            "evictions": 0,
            "resident_bytes": 0,
            "peak_resident_bytes": 0,
        }
        self._in_degrees_cache: Optional[np.ndarray] = None
        #: directory this graph was opened from (set by
        #: ``open_graph_sharded``); lets parallel backends hand workers
        #: the path instead of |E|-sized shared mappings
        self.source_path: Optional[str] = None
        self._indices_view = _ShardedEdgeArray(self, "indices")
        self._weights_view = (
            _ShardedEdgeArray(self, "weights") if self._weighted else None
        )
        self._m_loads = self._m_hits = self._m_evictions = None
        self._m_resident = self._m_peak = None
        if metrics is not None and getattr(metrics, "enabled", False):
            self._m_loads = metrics.counter(
                "shard_cache.loads",
                "CSR shards materialized from disk",
            )
            self._m_hits = metrics.counter(
                "shard_cache.hits",
                "shard-cache lookups served from resident shards",
            )
            self._m_evictions = metrics.counter(
                "shard_cache.evictions",
                "shards evicted to respect the resident-byte budget",
            )
            self._m_resident = metrics.gauge(
                "shard_cache.resident_bytes",
                "bytes of CSR shards currently resident",
            )
            self._m_peak = metrics.gauge(
                "shard_cache.peak_resident_bytes",
                "high-water resident bytes of the shard cache",
            )

    # ------------------------------------------------------------------
    # Basic properties (CSRGraph surface)
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges ``|E|``."""
        return int(self._edge_starts[-1])

    @property
    def num_shards(self) -> int:
        """Number of on-disk shards."""
        return self._vertex_starts.size - 1

    @property
    def resident_budget_bytes(self) -> int:
        """The shard cache's resident-byte budget."""
        return self._budget

    @property
    def indptr(self) -> np.ndarray:
        """Read-only global CSR row-pointer array (resident)."""
        return self._indptr

    @property
    def indices(self) -> _ShardedEdgeArray:
        """Lazy edge-destination view routed through the shard cache."""
        return self._indices_view

    @property
    def weights(self) -> Optional[_ShardedEdgeArray]:
        """Lazy edge-weight view, or ``None`` if unweighted."""
        return self._weights_view

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries an explicit weight per edge."""
        return self._weighted

    @property
    def directed(self) -> bool:
        """Whether the edge set should be interpreted as directed."""
        return self._directed

    @property
    def name(self) -> str:
        """Human-readable graph label."""
        return self._name

    @property
    def vertex_starts(self) -> np.ndarray:
        """Shard vertex boundaries (length ``num_shards + 1``)."""
        return self._vertex_starts

    @property
    def edge_starts(self) -> np.ndarray:
        """Shard edge boundaries (length ``num_shards + 1``)."""
        return self._edge_starts

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"ShardedCSRGraph(name={self._name!r}, "
            f"|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"shards={self.num_shards}, {kind}, "
            f"weighted={self._weighted})"
        )

    # ------------------------------------------------------------------
    # Shard cache
    # ------------------------------------------------------------------
    def _field_dtype(self, field: str) -> np.dtype:
        return np.dtype(
            np.int64 if field == "indices" else np.float64
        )

    def _shard_array(self, shard: int, field: str) -> np.ndarray:
        """One shard's payload, via the budgeted LRU cache."""
        key = (shard, field)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self._stats["hits"] += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return cached
        array = np.asarray(self._loader(shard, field))
        if array.dtype != self._field_dtype(field):
            array = array.astype(self._field_dtype(field))
        size = int(array.nbytes)
        # make room first so the peak honors the budget whenever any
        # single shard fits in it
        while self._cache and self._resident + size > self._budget:
            __, evicted = self._cache.popitem(last=False)
            self._resident -= int(evicted.nbytes)
            self._stats["evictions"] += 1
            if self._m_evictions is not None:
                self._m_evictions.inc()
        array.setflags(write=False)
        self._cache[key] = array
        self._resident += size
        self._stats["loads"] += 1
        self._stats["resident_bytes"] = self._resident
        if self._resident > self._stats["peak_resident_bytes"]:
            self._stats["peak_resident_bytes"] = self._resident
            if self._m_peak is not None:
                self._m_peak.set(float(self._resident))
        if self._m_loads is not None:
            self._m_loads.inc()
        if self._m_resident is not None:
            self._m_resident.set(float(self._resident))
        return array

    def cache_stats(self) -> dict:
        """Snapshot of the shard cache's counters."""
        stats = dict(self._stats)
        stats["resident_bytes"] = self._resident
        return stats

    def drop_cache(self) -> None:
        """Release every resident shard (counters are kept)."""
        self._cache.clear()
        self._resident = 0
        self._stats["resident_bytes"] = 0
        if self._m_resident is not None:
            self._m_resident.set(0.0)

    # ------------------------------------------------------------------
    # Edge-axis access (the _ShardedEdgeArray backend)
    # ------------------------------------------------------------------
    def _edge_take(self, field: str, key):
        num_edges = self.num_edges
        if isinstance(key, slice):
            start, stop, step = key.indices(num_edges)
            if step == 1:
                return self._take_range(field, start, stop)
            key = np.arange(start, stop, step, dtype=np.int64)
        if isinstance(key, (int, np.integer)):
            position = int(key)
            if position < 0:
                position += num_edges
            if not 0 <= position < num_edges:
                raise IndexError(
                    f"edge position {key} out of range 0..{num_edges}"
                )
            shard = int(np.searchsorted(
                self._edge_starts, position, side="right"
            )) - 1
            local = position - int(self._edge_starts[shard])
            return self._shard_array(shard, field)[local]
        positions = np.asarray(key, dtype=np.int64)
        if positions.ndim != 1:
            raise GraphError(
                "sharded edge arrays support 1-D indexing only"
            )
        if positions.size == 0:
            return np.empty(0, dtype=self._field_dtype(field))
        if np.any(np.diff(positions) < 0):
            # the gather hot path always hands us sorted positions;
            # restore order for anything else
            order = np.argsort(positions, kind="stable")
            gathered = self._take_sorted(field, positions[order])
            out = np.empty_like(gathered)
            out[order] = gathered
            return out
        return self._take_sorted(field, positions)

    def _take_sorted(
        self, field: str, positions: np.ndarray
    ) -> np.ndarray:
        """Fancy-index with ascending positions, shard by shard."""
        starts = self._edge_starts
        if positions[0] < 0 or positions[-1] >= self.num_edges:
            raise IndexError("edge positions out of range")
        first = int(np.searchsorted(
            starts, positions[0], side="right"
        )) - 1
        last = int(np.searchsorted(
            starts, positions[-1], side="right"
        )) - 1
        out = np.empty(positions.size, dtype=self._field_dtype(field))
        lo = 0
        for shard in range(first, last + 1):
            hi = int(np.searchsorted(
                positions, starts[shard + 1], side="left"
            ))
            if hi > lo:
                out[lo:hi] = self._shard_array(shard, field)[
                    positions[lo:hi] - starts[shard]
                ]
            lo = hi
        return out

    def _take_range(self, field: str, start: int, stop: int) -> np.ndarray:
        """Contiguous edge range ``[start, stop)``, shard by shard."""
        if stop <= start:
            return np.empty(0, dtype=self._field_dtype(field))
        starts = self._edge_starts
        first = int(np.searchsorted(starts, start, side="right")) - 1
        last = int(np.searchsorted(starts, stop - 1, side="right")) - 1
        if first == last:
            base = int(starts[first])
            return self._shard_array(first, field)[
                start - base: stop - base
            ].copy()
        pieces = []
        for shard in range(first, last + 1):
            lo = max(start, int(starts[shard])) - int(starts[shard])
            hi = min(stop, int(starts[shard + 1])) - int(starts[shard])
            pieces.append(self._shard_array(shard, field)[lo:hi])
        return np.concatenate(pieces)

    def iter_edge_shards(self):
        """Yield ``(v_start, v_stop, e_start, indices, weights)`` per shard.

        The streaming-superstep hook: dense edge scans (PageRank's
        power iteration, in-degree accumulation) walk shards in edge
        order, so applying an accumulation per shard is bit-identical
        to one pass over the concatenated arrays.
        """
        for shard in range(self.num_shards):
            indices = self._shard_array(shard, "indices")
            weights = (
                self._shard_array(shard, "weights")
                if self._weighted else None
            )
            yield (
                int(self._vertex_starts[shard]),
                int(self._vertex_starts[shard + 1]),
                int(self._edge_starts[shard]),
                indices,
                weights,
            )

    # ------------------------------------------------------------------
    # Degrees and neighborhoods (CSRGraph surface)
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(
        self, vertices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Out-degrees of ``vertices`` (or of all vertices if ``None``)."""
        if vertices is None:
            return np.diff(self._indptr)
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._indptr[vertices + 1] - self._indptr[vertices]

    def in_degrees(self) -> np.ndarray:
        """In-degrees of all vertices (one streaming pass, cached).

        Per-shard ``bincount`` partial sums add exactly (integer
        addition is associative), so the result is bit-identical to a
        single global ``bincount``.
        """
        if self._in_degrees_cache is None:
            counts = np.zeros(self.num_vertices, dtype=np.int64)
            for __, __, __, indices, __ in self.iter_edge_shards():
                if indices.size:
                    counts += np.bincount(
                        indices, minlength=self.num_vertices
                    )
            counts.setflags(write=False)
            self._in_degrees_cache = counts
        return self._in_degrees_cache

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` (materialized from its shard)."""
        return self._take_range(
            "indices", int(self._indptr[v]), int(self._indptr[v + 1])
        )

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of the out-edges of ``v`` (all-ones if unweighted)."""
        lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
        if not self._weighted:
            return np.ones(hi - lo, dtype=np.float64)
        return self._take_range("weights", lo, hi)

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in CSR order."""
        for v_start, v_stop, e_start, indices, weights in (
            self.iter_edge_shards()
        ):
            for v in range(v_start, v_stop):
                lo = int(self._indptr[v]) - e_start
                hi = int(self._indptr[v + 1]) - e_start
                for k in range(lo, hi):
                    w = 1.0 if weights is None else float(weights[k])
                    yield v, int(indices[k]), w
