"""Immutable CSR graph representation.

:class:`CSRGraph` is the core data structure of the library: a directed
graph stored in Compressed Sparse Row form (``indptr``/``indices`` plus an
optional parallel ``weights`` array). Every engine, partitioner, and
algorithm operates on this structure.

The CSC (reverse) view needed for pull-style gathers and for in-degree
features (Table I of the paper) is built lazily and cached.

Design notes
------------
* Vertex ids are dense integers ``0..num_vertices-1``; the builders module
  handles relabelling from arbitrary ids.
* Arrays are validated once at construction and then never mutated; all
  accessors return read-only views or fresh arrays.
* Degrees are O(1) vectorized lookups, which the runtime relies on for
  frontier workload computation (``work = sum of out-degrees``).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["CSRGraph"]


def _as_index_array(array: np.ndarray, label: str) -> np.ndarray:
    """Normalize a CSR index array to contiguous ``int64``, losslessly.

    Construction paths hand us whatever a loader produced — ``int32``
    from a matrix-market reader, a strided slice, or (by accident) a
    float array. Silent truncation of a fractional value would corrupt
    the topology, and a raw shared-memory mapping of a non-contiguous
    or non-``int64`` buffer would be garbage, so both are rejected or
    normalized here, once, at construction.
    """
    source = np.asarray(array)
    out = np.ascontiguousarray(source, dtype=np.int64)
    if source.dtype != np.int64 and source.size:
        if not np.array_equal(out, source):
            raise GraphError(
                f"{label} cannot be losslessly converted to int64 "
                f"(source dtype {source.dtype})"
            )
    return out


class CSRGraph:
    """A directed graph in CSR form with optional edge weights.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; monotonically
        non-decreasing, ``indptr[0] == 0`` and ``indptr[-1] == num_edges``.
    indices:
        ``int64`` array of length ``num_edges``; destination vertex of each
        edge, in ``[0, num_vertices)``.
    weights:
        Optional ``float64`` array parallel to ``indices``. ``None`` means
        the graph is unweighted (algorithms treat every edge as weight 1).
    directed:
        Metadata flag recording whether the edge set is meant to be read as
        directed. Symmetrized graphs built by the builders carry
        ``directed=False`` even though both edge directions are stored.
    name:
        Human-readable label used in benchmark reports.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_directed",
        "_name",
        "_csc_cache",
        "_csc_order_cache",
        "_in_degrees_cache",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
        directed: bool = True,
        name: str = "graph",
    ) -> None:
        indptr = _as_index_array(indptr, "indptr")
        indices = _as_index_array(indices, "indices")
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        if indptr[0] != 0:
            raise GraphError("indptr[0] must be 0")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({indices.size})"
            )
        if indptr.size > 1 and np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        num_vertices = indptr.size - 1
        if indices.size and (
            indices.min() < 0 or indices.max() >= num_vertices
        ):
            raise GraphError("edge destination out of range")
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.ndim != 1 or weights.shape != indices.shape:
                raise GraphError("weights must be parallel to indices")
            weights.setflags(write=False)
        indptr.setflags(write=False)
        indices.setflags(write=False)

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._directed = bool(directed)
        self._name = str(name)
        self._csc_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._csc_order_cache: Optional[np.ndarray] = None
        self._in_degrees_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Pickling (spawn-started worker processes ship graphs by pickle
    # when they are not shared-memory mapped). Lazy caches are dropped
    # — each process rebuilds them on demand — and the read-only flags,
    # which numpy does not preserve across pickling, are restored.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "indptr": self._indptr,
            "indices": self._indices,
            "weights": self._weights,
            "directed": self._directed,
            "name": self._name,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["indptr"],
            state["indices"],
            weights=state["weights"],
            directed=state["directed"],
            name=state["name"],
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges ``|E|``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array, length ``|V| + 1``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array, length ``|E|``."""
        return self._indices

    @property
    def weights(self) -> Optional[np.ndarray]:
        """Read-only edge-weight array, or ``None`` if unweighted."""
        return self._weights

    @property
    def is_weighted(self) -> bool:
        """Whether the graph carries an explicit weight per edge."""
        return self._weights is not None

    @property
    def directed(self) -> bool:
        """Whether the edge set should be interpreted as directed."""
        return self._directed

    @property
    def name(self) -> str:
        """Human-readable graph label."""
        return self._name

    def __repr__(self) -> str:
        kind = "directed" if self._directed else "undirected"
        return (
            f"CSRGraph(name={self._name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges}, {kind}, "
            f"weighted={self.is_weighted})"
        )

    # ------------------------------------------------------------------
    # Degrees and neighborhoods
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Out-degree of a single vertex."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self, vertices: Optional[np.ndarray] = None) -> np.ndarray:
        """Out-degrees of ``vertices`` (or of all vertices if ``None``)."""
        if vertices is None:
            return np.diff(self._indptr)
        vertices = np.asarray(vertices, dtype=np.int64)
        return self._indptr[vertices + 1] - self._indptr[vertices]

    def in_degrees(self) -> np.ndarray:
        """In-degrees of all vertices (cached)."""
        if self._in_degrees_cache is None:
            counts = np.bincount(
                self._indices, minlength=self.num_vertices
            ).astype(np.int64)
            counts.setflags(write=False)
            self._in_degrees_cache = counts
        return self._in_degrees_cache

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a read-only array view."""
        return self._indices[self._indptr[v]: self._indptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        """Weights of the out-edges of ``v`` (all-ones if unweighted)."""
        lo, hi = self._indptr[v], self._indptr[v + 1]
        if self._weights is None:
            return np.ones(int(hi - lo), dtype=np.float64)
        return self._weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, weight)`` triples in CSR order.

        This is a convenience for tests and small graphs; hot paths use
        the vectorized array accessors instead.
        """
        for v in range(self.num_vertices):
            lo, hi = int(self._indptr[v]), int(self._indptr[v + 1])
            for k in range(lo, hi):
                w = 1.0 if self._weights is None else float(self._weights[k])
                yield v, int(self._indices[k]), w

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, destinations)`` arrays of all edges."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64),
            np.diff(self._indptr),
        )
        return sources, self._indices.copy()

    # ------------------------------------------------------------------
    # Reverse (CSC) view
    # ------------------------------------------------------------------
    def _build_csc(self) -> Tuple[np.ndarray, np.ndarray]:
        """Build the reverse adjacency (in-neighbors) arrays."""
        n = self.num_vertices
        in_deg = np.bincount(self._indices, minlength=n).astype(np.int64)
        rindptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_deg, out=rindptr[1:])
        order = self._csc_order()
        sources, __ = self.edge_array()
        rindices = sources[order]
        rindptr.setflags(write=False)
        rindices.setflags(write=False)
        return rindptr, rindices

    def _csc_order(self) -> np.ndarray:
        """The stable CSR→CSC edge permutation (cached).

        ``reversed()`` permutes weights with exactly this array, so the
        reversed weights are aligned with the cached CSC view by
        construction rather than by recomputing (and trusting) a second
        argsort.
        """
        if self._csc_order_cache is None:
            order = np.argsort(self._indices, kind="stable")
            order.setflags(write=False)
            self._csc_order_cache = order
        return self._csc_order_cache

    def reverse_adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return cached ``(rindptr, rindices)`` CSC arrays.

        ``rindices[rindptr[v]:rindptr[v+1]]`` are the in-neighbors of
        ``v``. Built on first use; subsequent calls are O(1).
        """
        if self._csc_cache is None:
            self._csc_cache = self._build_csc()
        return self._csc_cache

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors of ``v`` (builds the CSC view on first use)."""
        rindptr, rindices = self.reverse_adjacency()
        return rindices[rindptr[v]: rindptr[v + 1]]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """Return a new graph with every edge direction flipped."""
        rindptr, rindices = self.reverse_adjacency()
        rweights = None
        if self._weights is not None:
            rweights = self._weights[self._csc_order()]
        return CSRGraph(
            rindptr.copy(),
            rindices.copy(),
            weights=rweights,
            directed=self._directed,
            name=f"{self._name}-rev",
        )

    def with_name(self, name: str) -> "CSRGraph":
        """Return a shallow copy carrying a different label."""
        g = CSRGraph.__new__(CSRGraph)
        g._indptr = self._indptr
        g._indices = self._indices
        g._weights = self._weights
        g._directed = self._directed
        g._name = str(name)
        g._csc_cache = self._csc_cache
        g._csc_order_cache = self._csc_order_cache
        g._in_degrees_cache = self._in_degrees_cache
        return g

    def with_unit_weights(self) -> "CSRGraph":
        """Return a copy whose every edge weight is 1.0."""
        return CSRGraph(
            self._indptr.copy(),
            self._indices.copy(),
            weights=np.ones(self.num_edges, dtype=np.float64),
            directed=self._directed,
            name=self._name,
        )
