"""Scaled-down stand-ins for the paper's benchmark graphs (Table II).

The paper evaluates on fifteen real graphs from three domains. Those
graphs total billions of edges and are not redistributable here, so this
registry generates synthetic stand-ins that preserve each graph's
*regime* — the properties the paper's results actually hinge on:

* relative size ordering within and across domains,
* degree skew (social >> web >> road),
* diameter class (social ~10, web ~25-400, road ~1000+ in the paper;
  proportionally scaled here).

Every stand-in is roughly 1000x smaller than its original so the whole
evaluation matrix runs on a laptop. Set ``REPRO_SCALE`` (see
:mod:`repro.config`) to grow them uniformly.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro import config
from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph import generators

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load", "load_many"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata binding a Table-II graph to its synthetic stand-in."""

    abbr: str
    original_name: str
    domain: str  # "SN" (social), "WG" (web), "RN" (road)
    original_vertices: str
    original_edges: str
    original_diameter: int
    builder: Callable[[], CSRGraph]

    def build(self) -> CSRGraph:
        """Generate the stand-in graph (deterministic)."""
        graph = self.builder()
        return graph.with_name(self.abbr)


def _s(n: int) -> int:
    return config.scaled(n)


def _social(scale: int, edge_factor: int, seed: int, skew: float = 0.57):
    def build() -> CSRGraph:
        return generators.rmat(
            scale, edge_factor=edge_factor, a=skew,
            b=(1 - skew) / 2.2, c=(1 - skew) / 2.2, seed=seed,
        )

    return build


def _web(n: int, out_degree: int, locality: float, window: int, seed: int):
    def build() -> CSRGraph:
        return generators.web_graph(
            _s(n), out_degree=out_degree, locality=locality,
            window=window, seed=seed,
        )

    return build


def _road(rows: int, cols: int, seed: int):
    # Long, thin, (near-)planar lattices: the row count scales with
    # REPRO_SCALE while the column count fixes the diameter class.
    # Shortcuts are disabled — a handful of random long links would
    # collapse the diameter and with it the long-tail regime.
    def build() -> CSRGraph:
        factor = config.benchmark_scale()
        return generators.road_network(
            max(6, int(rows * factor)), cols, seed=seed,
            shortcut_fraction=0.0,
        )

    return build


#: Registry in Table II order. Vertex/edge strings describe the ORIGINAL
#: graph (for documentation); the builders produce ~1000x smaller twins.
DATASETS: Dict[str, DatasetSpec] = {
    spec.abbr: spec
    for spec in [
        # --- Social networks: R-MAT, heavy skew, tiny diameter ---
        DatasetSpec("LJ", "soc-LiveJournal1", "SN", "4.85M", "85.7M", 13,
                    _social(13, 12, seed=101)),
        DatasetSpec("OR", "soc-orkut", "SN", "3.00M", "213M", 7,
                    _social(13, 24, seed=102)),
        DatasetSpec("SW", "soc-sinaweibo", "SN", "58.7M", "523M", 5,
                    _social(15, 6, seed=103, skew=0.62)),
        DatasetSpec("TW", "soc-twitter-2010", "SN", "21.3M", "530M", 15,
                    _social(14, 16, seed=104)),
        DatasetSpec("CF", "com-friendster", "SN", "65M", "1.8B", 32,
                    _social(15, 16, seed=105)),
        # --- Web graphs: copying model, moderate skew and diameter ---
        DatasetSpec("U2", "uk-2002", "WG", "18.5M", "524M", 25,
                    _web(20_000, 12, locality=0.80, window=256, seed=201)),
        DatasetSpec("AR", "arabic-2005", "WG", "22.7M", "1.11B", 28,
                    _web(24_000, 16, locality=0.82, window=256, seed=202)),
        DatasetSpec("IT", "it-2004", "WG", "41M", "1.15B", 24,
                    _web(40_000, 14, locality=0.80, window=384, seed=203)),
        DatasetSpec("U5", "uk-2005", "WG", "39.5M", "1.57B", 23,
                    _web(40_000, 16, locality=0.82, window=384, seed=204)),
        # webbase is the odd one out among web graphs: diameter 379 in
        # the original — deep crawl chains — so its stand-in pushes
        # locality to the extreme.
        DatasetSpec("WB", "webbase-2001", "WG", "118M", "1.71B", 379,
                    _web(96_000, 8, locality=0.9997, window=10, seed=205)),
        # --- Road networks: perturbed lattices, degree ~3, huge diameter ---
        # Row counts are deliberately tiny: the LT regime requires the
        # per-iteration frontier work to be small against the fixed
        # synchronization cost p*m, as on the paper's testbed where
        # road compute is trivial next to thousands of sync rounds.
        DatasetSpec("TX", "roadNet-TX", "RN", "1.3M", "1.9M", 1054,
                    _road(6, 140, seed=301)),
        DatasetSpec("CA", "roadNet-CA", "RN", "1.9M", "2.7M", 849,
                    _road(6, 205, seed=302)),
        DatasetSpec("GM", "germany-osm", "RN", "11M", "12M", 1277,
                    _road(7, 410, seed=303)),
        DatasetSpec("USA", "road-USA", "RN", "23M", "29M", 1452,
                    _road(8, 550, seed=304)),
        DatasetSpec("EU", "europe-osm", "RN", "50M", "54M", 2037,
                    _road(10, 800, seed=305)),
    ]
}


def dataset_names(domain: str = "") -> List[str]:
    """All abbreviations, optionally filtered by domain (SN/WG/RN)."""
    return [
        abbr
        for abbr, spec in DATASETS.items()
        if not domain or spec.domain == domain
    ]


@functools.lru_cache(maxsize=None)
def load(abbr: str) -> CSRGraph:
    """Build (and cache) the stand-in graph for a Table-II abbreviation."""
    spec = DATASETS.get(abbr)
    if spec is None:
        raise GraphError(
            f"unknown dataset {abbr!r}; known: {sorted(DATASETS)}"
        )
    return spec.build()


def load_many(abbrs) -> Dict[str, CSRGraph]:
    """Build several stand-ins at once, keyed by abbreviation."""
    return {abbr: load(abbr) for abbr in abbrs}
