"""Frontier characteristics (Table I of the paper).

The cost model estimates the per-edge processing cost of a frontier
from six statistics of the frontier's degree structure: average in/out
degree, in/out degree range, Gini coefficient, and degree-distribution
entropy. This module computes them for an arbitrary vertex subset of a
graph — cheaply, with one vectorized scan over the *frontier* (not the
edges), exactly as the paper requires for the FSteal overhead budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.properties import degree_entropy, gini_coefficient

__all__ = ["FrontierFeatures", "frontier_features", "FEATURE_NAMES"]

#: Order of :meth:`FrontierFeatures.vector` entries.
FEATURE_NAMES = (
    "avg_in_degree",
    "avg_out_degree",
    "in_degree_range",
    "out_degree_range",
    "gini",
    "entropy",
)


@dataclass(frozen=True)
class FrontierFeatures:
    """The metric-variable set ``W`` of Table I, for one frontier.

    ``size`` and ``total_edges`` are carried along for workload
    accounting but are not part of the regression feature vector.
    """

    avg_in_degree: float
    avg_out_degree: float
    in_degree_range: float
    out_degree_range: float
    gini: float
    entropy: float
    size: int
    total_edges: int

    def vector(self) -> np.ndarray:
        """The 6-entry feature vector in :data:`FEATURE_NAMES` order.

        Built once and cached (the instance is immutable, and the
        scheduler's audit, pricing, and fingerprinting all re-read it
        every iteration); the returned array is marked read-only.
        """
        cached = self.__dict__.get("_vector")
        if cached is None:
            cached = np.array(
                [
                    self.avg_in_degree,
                    self.avg_out_degree,
                    self.in_degree_range,
                    self.out_degree_range,
                    self.gini,
                    self.entropy,
                ],
                dtype=np.float64,
            )
            cached.flags.writeable = False
            object.__setattr__(self, "_vector", cached)
        return cached

    @staticmethod
    def empty() -> "FrontierFeatures":
        """Features of an empty frontier (all zeros)."""
        return FrontierFeatures(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0)


def frontier_features(
    graph: CSRGraph, vertices: np.ndarray
) -> FrontierFeatures:
    """Compute :class:`FrontierFeatures` for a vertex subset.

    Complexity is O(|frontier|) plus one cached O(|E|) in-degree
    computation per graph — the paper's "features can be collected with
    a scan over active vertices rather than edges" (Exp-3).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return FrontierFeatures.empty()
    out_deg = graph.out_degrees(vertices)
    in_deg = graph.in_degrees()[vertices]
    total_edges = int(out_deg.sum())
    return FrontierFeatures(
        avg_in_degree=float(in_deg.mean()),
        avg_out_degree=float(out_deg.mean()),
        in_degree_range=float(in_deg.max() - in_deg.min()),
        out_degree_range=float(out_deg.max() - out_deg.min()),
        gini=gini_coefficient(out_deg),
        entropy=degree_entropy(out_deg),
        size=int(vertices.size),
        total_edges=total_edges,
    )
