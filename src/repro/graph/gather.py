"""Vectorized adjacency expansion — the engine's hot path.

Given a frontier (vertex subset), produce the flattened arrays of all
their out-edges in one shot, without Python-level per-vertex loops.
Every superstep of every engine funnels through :func:`gather_edges`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["gather_edges", "gather_edge_positions", "expand_indices"]


def expand_indices(
    starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Flatten ranges ``[starts[i], starts[i]+counts[i])`` into one array.

    The standard cumsum trick: output positions where a new range
    begins get a corrective jump, everything else increments by one.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    # positions where each range starts in the output
    range_starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=range_starts[1:])
    nonempty = counts > 0
    first_positions = range_starts[nonempty]
    out[first_positions] = starts[nonempty]
    # corrective jumps: undo the previous range's final value + 1
    if first_positions.size > 1:
        prev_ends = (
            starts[nonempty][:-1] + counts[nonempty][:-1]
        )
        out[first_positions[1:]] = starts[nonempty][1:] - prev_ends + 1
        out[first_positions[0]] = starts[nonempty][0]
    return np.cumsum(out)


def gather_edge_positions(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR edge positions of all out-edges of ``vertices``.

    Returns ``(sources, positions)``: ``positions[k]`` indexes into
    ``graph.indices``/``graph.weights`` and ``sources[k]`` is the
    frontier vertex owning that edge.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    indptr = graph.indptr
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    positions = expand_indices(starts, counts)
    sources = np.repeat(vertices, counts)
    return sources, positions


def gather_edges(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """All out-edges of ``vertices`` as flat parallel arrays.

    Returns ``(sources, destinations, weights)`` where ``sources[k]``
    repeats each frontier vertex once per out-edge, in CSR order, and
    ``weights`` is ``None`` for unweighted graphs.
    """
    sources, positions = gather_edge_positions(graph, vertices)
    destinations = graph.indices[positions]
    weights = None
    if graph.weights is not None:
        weights = graph.weights[positions]
    return sources, destinations, weights
