"""Synthetic graph generators.

The paper evaluates on fifteen real graphs spanning three domains whose
*shape* drives the results:

* **Social networks** — heavily skewed degree distributions (hub
  vertices), small diameter. Generated here with R-MAT / Kronecker
  recursion, the standard synthetic stand-in (Graph500 uses the same).
* **Web graphs** — skewed but with strong locality and a moderate
  diameter. Generated with a copying-model crawl that links mostly to
  nearby ids plus a power-law tail.
* **Road networks** — near-constant tiny degrees and an enormous
  diameter. Generated as 2-D lattices with deterministic perturbation
  (deleted edges and a few shortcuts), the standard planar stand-in.

All generators are deterministic given a seed, return
:class:`~repro.graph.csr.CSRGraph`, and avoid Python-level per-edge loops.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import (
    coalesce_duplicates,
    from_edge_arrays,
    remove_self_loops,
    symmetrize,
)
from repro.graph.csr import CSRGraph

__all__ = [
    "rmat",
    "erdos_renyi",
    "grid_2d",
    "road_network",
    "web_graph",
    "small_world",
    "star",
    "path_graph",
    "complete_graph",
    "with_random_weights",
]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def _rng_at(seed: int, offset: int) -> np.random.Generator:
    """The ``default_rng(seed)`` stream advanced by ``offset`` draws.

    PCG64 consumes one 64-bit step per ``random()`` double, so a
    chunked generator can replay any slice of the one-shot draw
    sequence without materializing the draws before it.
    """
    bits = np.random.PCG64(seed)
    bits.advance(offset)
    return np.random.Generator(bits)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = 0,
    undirected: bool = False,
    name: str = "rmat",
    edge_batch: Optional[int] = None,
) -> CSRGraph:
    """Generate an R-MAT (recursive matrix) graph.

    ``2**scale`` vertices and about ``edge_factor * 2**scale`` edges
    before dedup. The default ``(a, b, c)`` are the Graph500 parameters,
    producing the heavy-tailed degree distribution typical of social
    networks. Self-loops and duplicate edges are removed.

    ``edge_batch`` bounds the per-bit temporary arrays: edges are drawn
    in chunks of that size, with each chunk replaying its exact slice
    of the one-shot RNG stream — the result is bit-identical to
    ``edge_batch=None`` for the same seed (a scale-20 graph's working
    set drops from several |E|-sized doubles to a few batch-sized
    ones).
    """
    if scale < 1 or scale > 30:
        raise GraphError("rmat scale must be in [1, 30]")
    if not (0 < a and 0 <= b and 0 <= c and a + b + c < 1):
        raise GraphError("rmat probabilities must satisfy a+b+c < 1")
    n = 1 << scale
    m = edge_factor * n
    if edge_batch is not None:
        if edge_batch < 1:
            raise GraphError("rmat edge_batch must be >= 1")
        if seed is None:
            raise GraphError(
                "rmat edge_batch needs a concrete seed: chunked "
                "generation replays slices of the seeded RNG stream"
            )
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    # Probability of the column bit given the row bit.
    p_col_given_top = b / (a + b)
    p_col_given_bottom = (1 - a - b - c) / max(1e-12, 1 - a - b)
    if edge_batch is None or edge_batch >= m:
        rng = _rng(seed)
        # Each bit of the vertex id is drawn independently per quadrant.
        for bit in range(scale):
            r = rng.random(m)
            go_right = r >= a + b  # bottom half of the recursion square
            r2 = rng.random(m)
            col_bit = np.where(
                go_right, r2 < p_col_given_bottom, r2 < p_col_given_top
            )
            src |= go_right.astype(np.int64) << bit
            dst |= col_bit.astype(np.int64) << bit
        perm_rng = rng
    else:
        # chunked replay of the one-shot stream: bit ``b``'s row draws
        # occupy stream positions [b*2m, b*2m+m) and its column draws
        # [b*2m+m, (b+1)*2m), so chunk [start, stop) of either is just
        # an advance() to the right offset
        for start in range(0, m, edge_batch):
            stop = min(start + edge_batch, m)
            count = stop - start
            for bit in range(scale):
                base = bit * 2 * m
                r = _rng_at(seed, base + start).random(count)
                go_right = r >= a + b
                r2 = _rng_at(seed, base + m + start).random(count)
                col_bit = np.where(
                    go_right, r2 < p_col_given_bottom,
                    r2 < p_col_given_top,
                )
                src[start:stop] |= go_right.astype(np.int64) << bit
                dst[start:stop] |= col_bit.astype(np.int64) << bit
        perm_rng = _rng_at(seed, scale * 2 * m)
    # Permute ids so hubs are not clustered at id 0 (matters for the
    # locality-aware partitioner experiments).
    perm = perm_rng.permutation(n)
    src = perm[src]
    dst = perm[dst]
    graph = from_edge_arrays(src, dst, num_vertices=n, name=name)
    graph = remove_self_loops(coalesce_duplicates(graph))
    if undirected:
        graph = symmetrize(graph)
    return graph.with_name(name)


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: Optional[int] = 0,
    undirected: bool = False,
    name: str = "er",
) -> CSRGraph:
    """Uniform random graph with ``num_edges`` distinct directed edges."""
    if num_vertices < 1:
        raise GraphError("num_vertices must be positive")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise GraphError("too many edges requested for a simple graph")
    rng = _rng(seed)
    # Oversample then dedup; repeat until enough distinct edges.
    collected_src: list[np.ndarray] = []
    collected_dst: list[np.ndarray] = []
    seen = 0
    while seen < num_edges:
        want = int((num_edges - seen) * 1.3) + 16
        s = rng.integers(0, num_vertices, size=want, dtype=np.int64)
        d = rng.integers(0, num_vertices, size=want, dtype=np.int64)
        ok = s != d
        collected_src.append(s[ok])
        collected_dst.append(d[ok])
        src = np.concatenate(collected_src)
        dst = np.concatenate(collected_dst)
        keys = src * num_vertices + dst
        __, unique_idx = np.unique(keys, return_index=True)
        seen = unique_idx.size
    unique_idx.sort()
    src = src[unique_idx][:num_edges]
    dst = dst[unique_idx][:num_edges]
    graph = from_edge_arrays(src, dst, num_vertices=num_vertices, name=name)
    if undirected:
        graph = symmetrize(graph)
    return graph.with_name(name)


def grid_2d(
    rows: int,
    cols: int,
    seed: Optional[int] = 0,
    drop_fraction: float = 0.0,
    name: str = "grid",
) -> CSRGraph:
    """Undirected 2-D lattice of ``rows x cols`` vertices.

    ``drop_fraction`` of the lattice edges are deterministically removed
    (keeping the graph connected is not guaranteed for large fractions;
    :func:`road_network` layers a repair pass on top).
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, vert_src])
    dst = np.concatenate([horiz_dst, vert_dst])
    if drop_fraction > 0:
        rng = _rng(seed)
        keep = rng.random(src.size) >= drop_fraction
        src, dst = src[keep], dst[keep]
    graph = from_edge_arrays(
        src, dst, num_vertices=rows * cols, directed=False, name=name
    )
    return symmetrize(graph).with_name(name)


def road_network(
    rows: int,
    cols: int,
    seed: Optional[int] = 0,
    drop_fraction: float = 0.08,
    shortcut_fraction: float = 0.001,
    permute_ids: bool = True,
    name: str = "road",
) -> CSRGraph:
    """Road-network stand-in: perturbed lattice plus rare shortcuts.

    The result has average degree < 4 and diameter Θ(rows + cols) — the
    regime where the paper's long-tail (LT) problem dominates. A spanning
    backbone (every horizontal edge of row 0 and every vertical edge of
    column 0) is kept so the graph remains connected.

    Vertex ids are randomly permuted by default: raw row-major ids are
    geodesically ordered, which makes id-based label propagation (WCC)
    artificially worst-case — real road datasets have no such ordering.
    """
    if rows < 2 or cols < 2:
        raise GraphError("road network needs at least a 2x2 lattice")
    rng = _rng(seed)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, vert_src])
    dst = np.concatenate([horiz_dst, vert_dst])
    # Backbone mask: row-0 horizontal edges and col-0 vertical edges.
    backbone = np.zeros(src.size, dtype=bool)
    backbone[: cols - 1] = True  # first row of horizontal edges
    vert_start = horiz_src.size
    backbone[vert_start:: cols] = True  # column 0 of vertical edges
    keep = (rng.random(src.size) >= drop_fraction) | backbone
    src, dst = src[keep], dst[keep]
    # A few long-range shortcuts (bridges/highways).
    num_shortcuts = int(shortcut_fraction * rows * cols)
    if num_shortcuts:
        s = rng.integers(0, rows * cols, size=num_shortcuts, dtype=np.int64)
        d = rng.integers(0, rows * cols, size=num_shortcuts, dtype=np.int64)
        ok = s != d
        src = np.concatenate([src, s[ok]])
        dst = np.concatenate([dst, d[ok]])
    if permute_ids:
        perm = rng.permutation(rows * cols)
        src = perm[src]
        dst = perm[dst]
    graph = from_edge_arrays(
        src, dst, num_vertices=rows * cols, directed=False, name=name
    )
    return symmetrize(graph).with_name(name)


def web_graph(
    num_vertices: int,
    out_degree: int = 12,
    locality: float = 0.8,
    window: int = 512,
    seed: Optional[int] = 0,
    name: str = "web",
) -> CSRGraph:
    """Web-crawl stand-in: local links plus preferential long links.

    Each vertex emits a power-law-skewed number of links around
    ``out_degree`` (link farms and index pages have many; leaves have
    few); a ``locality`` fraction lands within ``window`` ids (crawl
    order locality, like uk-2002/webbase), the rest follow a Zipf-like
    distribution over all ids (popular pages attract global links).
    Diameter sits between social and road graphs and grows as
    ``locality -> 1`` with a small ``window``.
    """
    if num_vertices < 2:
        raise GraphError("web graph needs at least two vertices")
    if not 0 <= locality <= 1:
        raise GraphError("locality must be in [0, 1]")
    rng = _rng(seed)
    # Per-vertex out-degree: Pareto-tailed around the requested mean so
    # frontier workloads are skewed (the DLB ingredient), capped to keep
    # the edge count predictable.
    per_vertex = np.minimum(
        out_degree * 40,
        np.maximum(
            1, (out_degree * (0.4 + rng.pareto(2.2, num_vertices))).astype(
                np.int64
            )
        ),
    )
    m = int(per_vertex.sum())
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), per_vertex)
    is_local = rng.random(m) < locality
    offsets = rng.integers(1, window + 1, size=m, dtype=np.int64)
    sign = np.where(rng.random(m) < 0.5, -1, 1)
    local_dst = np.mod(src + sign * offsets, num_vertices)
    # Zipf-ish global targets: squaring a uniform sample concentrates
    # mass on low ids, which act as the popular pages.
    u = rng.random(m)
    global_dst = (u * u * num_vertices).astype(np.int64)
    dst = np.where(is_local, local_dst, global_dst)
    graph = from_edge_arrays(src, dst, num_vertices=num_vertices, name=name)
    graph = remove_self_loops(coalesce_duplicates(graph))
    return graph.with_name(name)


def small_world(
    num_vertices: int,
    k: int = 4,
    rewire: float = 0.05,
    seed: Optional[int] = 0,
    name: str = "smallworld",
) -> CSRGraph:
    """Watts-Strogatz-style ring lattice with rewired long links."""
    if num_vertices < 3:
        raise GraphError("small world needs at least three vertices")
    if k < 1 or k >= num_vertices // 2 + 1:
        raise GraphError("k out of range")
    rng = _rng(seed)
    base = np.arange(num_vertices, dtype=np.int64)
    srcs = []
    dsts = []
    for hop in range(1, k + 1):
        srcs.append(base)
        dsts.append(np.mod(base + hop, num_vertices))
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    rewired = rng.random(src.size) < rewire
    dst = dst.copy()
    dst[rewired] = rng.integers(
        0, num_vertices, size=int(rewired.sum()), dtype=np.int64
    )
    graph = from_edge_arrays(src, dst, num_vertices=num_vertices, name=name)
    graph = remove_self_loops(coalesce_duplicates(graph))
    return symmetrize(graph).with_name(name)


def star(num_leaves: int, name: str = "star") -> CSRGraph:
    """Star: vertex 0 connected to ``num_leaves`` leaves (undirected)."""
    if num_leaves < 1:
        raise GraphError("star needs at least one leaf")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    src = np.concatenate([np.zeros(num_leaves, dtype=np.int64), leaves])
    dst = np.concatenate([leaves, np.zeros(num_leaves, dtype=np.int64)])
    return from_edge_arrays(
        src, dst, num_vertices=num_leaves + 1, directed=False, name=name
    )


def path_graph(num_vertices: int, name: str = "path") -> CSRGraph:
    """Undirected simple path on ``num_vertices`` vertices."""
    if num_vertices < 1:
        raise GraphError("path needs at least one vertex")
    if num_vertices == 1:
        return from_edge_arrays(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_vertices=1,
            directed=False,
            name=name,
        )
    a = np.arange(num_vertices - 1, dtype=np.int64)
    src = np.concatenate([a, a + 1])
    dst = np.concatenate([a + 1, a])
    return from_edge_arrays(
        src, dst, num_vertices=num_vertices, directed=False, name=name
    )


def complete_graph(num_vertices: int, name: str = "complete") -> CSRGraph:
    """Complete directed graph (no self loops)."""
    if num_vertices < 1:
        raise GraphError("complete graph needs at least one vertex")
    src = np.repeat(
        np.arange(num_vertices, dtype=np.int64), num_vertices
    )
    dst = np.tile(np.arange(num_vertices, dtype=np.int64), num_vertices)
    keep = src != dst
    return from_edge_arrays(
        src[keep], dst[keep], num_vertices=num_vertices, name=name
    )


def with_random_weights(
    graph: CSRGraph,
    low: float = 1.0,
    high: float = 4.0,
    seed: Optional[int] = 0,
    integer: bool = True,
) -> CSRGraph:
    """Attach deterministic pseudo-random edge weights to a graph.

    Integer weights in a narrow band keep SSSP iteration counts
    proportional to the graph diameter, which is what the paper's
    long-tail experiments rely on.
    """
    if high < low:
        raise GraphError("weight range is empty")
    rng = _rng(seed)
    if integer:
        weights = rng.integers(
            int(low), int(high) + 1, size=graph.num_edges
        ).astype(np.float64)
    else:
        weights = rng.uniform(low, high, size=graph.num_edges)
    return CSRGraph(
        graph.indptr.copy(),
        graph.indices.copy(),
        weights=weights,
        directed=graph.directed,
        name=graph.name,
    )
