"""Fast binary persistence for graphs and partitions (NumPy ``.npz``).

Text edge lists are interchangeable but slow; these round-trips store
the validated CSR arrays directly, making dataset caching across
processes cheap. Format: one ``.npz`` per object (compressed by
default) with a ``format_version`` guard.

Two out-of-core paths are layered on top:

* :func:`load_graph` accepts ``mmap_mode`` — the CSR arrays of an
  *uncompressed* archive (``save_graph(..., compress=False)``) are
  memory-mapped straight out of the zip container instead of being
  read into RAM. NumPy's own ``np.load`` silently ignores
  ``mmap_mode`` for ``.npz``, so the member offsets are resolved here
  and handed to ``np.memmap`` directly.
* :func:`save_graph_sharded` / :func:`open_graph_sharded` split a
  graph into contiguous vertex-range shards (one uncompressed ``.npz``
  each) that :class:`~repro.graph.csr.ShardedCSRGraph` materializes
  on demand under a resident-byte budget.
"""

from __future__ import annotations

import struct
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np
from numpy.lib import format as npy_format

from repro.errors import GraphError, PartitionError
from repro.graph.csr import CSRGraph, ShardedCSRGraph
from repro.partition.base import Partition

__all__ = [
    "save_graph",
    "load_graph",
    "save_graph_sharded",
    "open_graph_sharded",
    "save_partition",
    "load_partition",
]

_GRAPH_VERSION = 1
_PARTITION_VERSION = 1
_SHARDED_VERSION = 1

#: file names inside a sharded-graph directory
_META_FILE = "meta.npz"
_INDPTR_FILE = "indptr.npz"
_SHARD_PATTERN = "shard-{:05d}.npz"


def save_graph(
    graph: CSRGraph, path: Union[str, Path], compress: bool = True
) -> None:
    """Write a graph as an ``.npz`` archive.

    ``compress=False`` stores the members verbatim (zip ``STORED``),
    which makes the archive eligible for zero-copy memory mapping via
    ``load_graph(path, mmap_mode="r")``.
    """
    arrays = {
        "format_version": np.array([_GRAPH_VERSION]),
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.array([1 if graph.directed else 0]),
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    if compress:
        np.savez_compressed(path, **arrays)
    else:
        np.savez(path, **arrays)


def _npz_member_memmap(path: Path, member: str) -> np.ndarray:
    """Memory-map one array member of an *uncompressed* ``.npz``.

    ``np.load(..., mmap_mode=...)`` silently ignores the mapping
    request for zip archives, so the member's data offset is resolved
    by hand: zip directory entry -> local file header -> npy header ->
    ``np.memmap`` at the payload offset.
    """
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member)
        except KeyError:
            raise GraphError(f"{path}: no member {member!r}") from None
        if info.compress_type != zipfile.ZIP_STORED:
            raise GraphError(
                f"{path}: member {member!r} is compressed; memory "
                f"mapping needs an archive written with compress=False"
            )
        header_offset = info.header_offset
    with open(path, "rb") as fh:
        fh.seek(header_offset)
        local_header = fh.read(30)
        if local_header[:4] != b"PK\x03\x04":
            raise GraphError(f"{path}: corrupt zip local header")
        name_len, extra_len = struct.unpack("<HH", local_header[26:30])
        fh.seek(header_offset + 30 + name_len + extra_len)
        version = npy_format.read_magic(fh)
        read_header = getattr(
            npy_format, "read_array_header_%d_%d" % version
        )
        shape, fortran_order, dtype = read_header(fh)
        if fortran_order:
            raise GraphError(f"{path}: {member!r} is Fortran-ordered")
        offset = fh.tell()
    return np.memmap(path, dtype=dtype, mode="r", shape=shape,
                     offset=offset)


def load_graph(
    path: Union[str, Path], mmap_mode: Optional[str] = None
) -> CSRGraph:
    """Read a graph written by :func:`save_graph`.

    With ``mmap_mode="r"`` the CSR arrays are memory-mapped from the
    archive (no copy, demand-paged); the archive must have been saved
    with ``compress=False``.
    """
    if mmap_mode is not None and mmap_mode != "r":
        raise GraphError(
            f"unsupported mmap_mode {mmap_mode!r}; only 'r' is supported"
        )
    with np.load(path, allow_pickle=False) as data:
        if "format_version" not in data:
            raise GraphError(f"{path}: not a repro graph archive")
        version = int(data["format_version"][0])
        if version != _GRAPH_VERSION:
            raise GraphError(
                f"{path}: unsupported graph format version {version}"
            )
        directed = bool(int(data["directed"][0]))
        name = str(data["name"][0])
        weighted = "weights" in data
        if mmap_mode is None:
            weights = data["weights"] if weighted else None
            return CSRGraph(
                data["indptr"],
                data["indices"],
                weights=weights,
                directed=directed,
                name=name,
            )
    path = Path(path)
    return CSRGraph(
        _npz_member_memmap(path, "indptr.npy"),
        _npz_member_memmap(path, "indices.npy"),
        weights=(
            _npz_member_memmap(path, "weights.npy") if weighted else None
        ),
        directed=directed,
        name=name,
    )


def save_graph_sharded(
    graph: CSRGraph, path: Union[str, Path], num_shards: int = 4
) -> Path:
    """Write a graph as a directory of per-shard ``.npz`` files.

    Shards cover contiguous vertex ranges chosen so each holds roughly
    ``|E| / num_shards`` edges (a vertex's adjacency list is never
    split, so a hub-heavy range can merge neighboring shards). The
    global ``indptr`` plus a small metadata archive stay alongside;
    shard members are stored uncompressed so
    :func:`open_graph_sharded` can memory-map them.
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1, got {num_shards}")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    indptr = graph.indptr
    targets = (
        graph.num_edges * np.arange(1, num_shards, dtype=np.int64)
    ) // num_shards
    cuts = np.searchsorted(indptr, targets, side="left")
    vertex_starts = np.unique(np.concatenate((
        np.array([0], dtype=np.int64),
        cuts.astype(np.int64),
        np.array([graph.num_vertices], dtype=np.int64),
    )))
    if vertex_starts.size < 2:  # empty graph: one empty shard
        vertex_starts = np.array([0, graph.num_vertices], dtype=np.int64)
    edge_starts = indptr[vertex_starts]
    np.savez_compressed(
        path / _META_FILE,
        format_version=np.array([_SHARDED_VERSION]),
        num_vertices=np.array([graph.num_vertices]),
        num_edges=np.array([graph.num_edges]),
        directed=np.array([1 if graph.directed else 0]),
        weighted=np.array([1 if graph.weights is not None else 0]),
        name=np.array([graph.name]),
        vertex_starts=vertex_starts,
        edge_starts=edge_starts,
    )
    np.savez(path / _INDPTR_FILE, indptr=indptr)
    for shard in range(vertex_starts.size - 1):
        lo, hi = int(edge_starts[shard]), int(edge_starts[shard + 1])
        arrays = {"indices": graph.indices[lo:hi]}
        if graph.weights is not None:
            arrays["weights"] = graph.weights[lo:hi]
        np.savez(path / _SHARD_PATTERN.format(shard), **arrays)
    return path


def open_graph_sharded(
    path: Union[str, Path],
    resident_bytes: int = 256 << 20,
    metrics=None,
) -> ShardedCSRGraph:
    """Open a directory written by :func:`save_graph_sharded`.

    Only the global ``indptr`` is loaded eagerly; shard payloads are
    materialized on first touch through an LRU cache bounded by
    ``resident_bytes`` (see :class:`~repro.graph.csr.ShardedCSRGraph`).
    ``metrics`` optionally receives the cache's load/hit/eviction
    counters.
    """
    path = Path(path)
    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise GraphError(f"{path}: not a sharded graph directory")
    with np.load(meta_path, allow_pickle=False) as meta:
        if "format_version" not in meta:
            raise GraphError(f"{path}: not a sharded graph directory")
        version = int(meta["format_version"][0])
        if version != _SHARDED_VERSION:
            raise GraphError(
                f"{path}: unsupported sharded format version {version}"
            )
        vertex_starts = np.array(meta["vertex_starts"], dtype=np.int64)
        edge_starts = np.array(meta["edge_starts"], dtype=np.int64)
        weighted = bool(int(meta["weighted"][0]))
        directed = bool(int(meta["directed"][0]))
        name = str(meta["name"][0])
    with np.load(path / _INDPTR_FILE, allow_pickle=False) as data:
        indptr = np.array(data["indptr"], dtype=np.int64)

    def loader(shard: int, field: str) -> np.ndarray:
        mapped = _npz_member_memmap(
            path / _SHARD_PATTERN.format(shard), field + ".npy"
        )
        return np.array(mapped)  # one sequential read; mapping closes

    graph = ShardedCSRGraph(
        indptr,
        loader,
        vertex_starts,
        edge_starts,
        weighted=weighted,
        directed=directed,
        name=name,
        resident_bytes=resident_bytes,
        metrics=metrics,
    )
    graph.source_path = str(path)
    return graph


def save_partition(partition: Partition, path: Union[str, Path]) -> None:
    """Write a partition's owner map as a compressed ``.npz`` archive.

    The graph itself is not embedded; loading requires the same graph
    (checked by vertex count).
    """
    np.savez_compressed(
        path,
        format_version=np.array([_PARTITION_VERSION]),
        owner=partition.owner,
        num_fragments=np.array([partition.num_fragments]),
        name=np.array([partition.name]),
    )


def load_partition(path: Union[str, Path], graph: CSRGraph) -> Partition:
    """Read a partition written by :func:`save_partition` for ``graph``."""
    with np.load(path, allow_pickle=False) as data:
        if "format_version" not in data:
            raise PartitionError(f"{path}: not a repro partition archive")
        version = int(data["format_version"][0])
        if version != _PARTITION_VERSION:
            raise PartitionError(
                f"{path}: unsupported partition format version {version}"
            )
        owner = data["owner"]
        if owner.shape != (graph.num_vertices,):
            raise PartitionError(
                f"{path}: partition covers {owner.shape[0]} vertices but "
                f"the graph has {graph.num_vertices}"
            )
        return Partition(
            graph,
            owner,
            int(data["num_fragments"][0]),
            name=str(data["name"][0]),
        )
