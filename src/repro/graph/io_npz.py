"""Fast binary persistence for graphs and partitions (NumPy ``.npz``).

Text edge lists are interchangeable but slow; these round-trips store
the validated CSR arrays directly, making dataset caching across
processes cheap. Format: one compressed ``.npz`` per object with a
``format_version`` guard.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphError, PartitionError
from repro.graph.csr import CSRGraph
from repro.partition.base import Partition

__all__ = ["save_graph", "load_graph", "save_partition", "load_partition"]

_GRAPH_VERSION = 1
_PARTITION_VERSION = 1


def save_graph(graph: CSRGraph, path: Union[str, Path]) -> None:
    """Write a graph as a compressed ``.npz`` archive."""
    arrays = {
        "format_version": np.array([_GRAPH_VERSION]),
        "indptr": graph.indptr,
        "indices": graph.indices,
        "directed": np.array([1 if graph.directed else 0]),
        "name": np.array([graph.name]),
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_graph(path: Union[str, Path]) -> CSRGraph:
    """Read a graph written by :func:`save_graph`."""
    with np.load(path, allow_pickle=False) as data:
        if "format_version" not in data:
            raise GraphError(f"{path}: not a repro graph archive")
        version = int(data["format_version"][0])
        if version != _GRAPH_VERSION:
            raise GraphError(
                f"{path}: unsupported graph format version {version}"
            )
        weights = data["weights"] if "weights" in data else None
        return CSRGraph(
            data["indptr"],
            data["indices"],
            weights=weights,
            directed=bool(int(data["directed"][0])),
            name=str(data["name"][0]),
        )


def save_partition(partition: Partition, path: Union[str, Path]) -> None:
    """Write a partition's owner map as a compressed ``.npz`` archive.

    The graph itself is not embedded; loading requires the same graph
    (checked by vertex count).
    """
    np.savez_compressed(
        path,
        format_version=np.array([_PARTITION_VERSION]),
        owner=partition.owner,
        num_fragments=np.array([partition.num_fragments]),
        name=np.array([partition.name]),
    )


def load_partition(path: Union[str, Path], graph: CSRGraph) -> Partition:
    """Read a partition written by :func:`save_partition` for ``graph``."""
    with np.load(path, allow_pickle=False) as data:
        if "format_version" not in data:
            raise PartitionError(f"{path}: not a repro partition archive")
        version = int(data["format_version"][0])
        if version != _PARTITION_VERSION:
            raise PartitionError(
                f"{path}: unsupported partition format version {version}"
            )
        owner = data["owner"]
        if owner.shape != (graph.num_vertices,):
            raise PartitionError(
                f"{path}: partition covers {owner.shape[0]} vertices but "
                f"the graph has {graph.num_vertices}"
            )
        return Partition(
            graph,
            owner,
            int(data["num_fragments"][0]),
            name=str(data["name"][0]),
        )
