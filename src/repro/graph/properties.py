"""Structural graph properties.

Implements the degree-distribution statistics the paper's cost model
consumes (Table I: average/range of in/out degree, Gini coefficient,
degree-distribution entropy) at whole-graph granularity, plus
connectivity and diameter estimators used by the dataset registry and
tests. Frontier-granularity features live in :mod:`repro.core.features`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = [
    "gini_coefficient",
    "degree_entropy",
    "DegreeSummary",
    "degree_summary",
    "bfs_levels",
    "pseudo_diameter",
    "is_connected",
    "largest_component_fraction",
]


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed).

    Uses the sorted-rank formula from Kunegis & Preusse (the paper's
    reference [31]): ``G = 2 Σ_u u·d(u) / (|V| Σ_u d(u)) - (|V|+1)/|V|``
    with ``d`` sorted ascending and ranks ``u`` starting at 1.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return 0.0
    if np.any(values < 0):
        raise ValueError("gini_coefficient requires non-negative values")
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_vals = np.sort(values)
    n = values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * (ranks * sorted_vals).sum() / (n * total) - (n + 1) / n)


def degree_entropy(degrees: np.ndarray, num_edges: Optional[int] = None) -> float:
    """Normalized degree-distribution entropy in ``[0, 1]``.

    Implements the paper's ``H_er`` (Table I):
    ``H = (1/ln|V|) Σ_u -(d(u)/2|E|) ln(d(u)/2|E|)`` — the entropy of the
    degree-share distribution, normalized by ``ln |V|``. Zero-degree
    vertices contribute nothing.
    """
    degrees = np.asarray(degrees, dtype=np.float64).ravel()
    n = degrees.size
    if n <= 1:
        return 0.0
    total = degrees.sum() if num_edges is None else float(2 * num_edges)
    if total <= 0:
        return 0.0
    shares = degrees[degrees > 0] / total
    return float(-(shares * np.log(shares)).sum() / np.log(n))


@dataclass(frozen=True)
class DegreeSummary:
    """Degree-distribution statistics of a graph (Table I, graph level)."""

    avg_in_degree: float
    avg_out_degree: float
    in_degree_range: int
    out_degree_range: int
    max_out_degree: int
    gini: float
    entropy: float

    def as_dict(self) -> dict:
        """Plain-dict view for reporting."""
        return {
            "avg_in_degree": self.avg_in_degree,
            "avg_out_degree": self.avg_out_degree,
            "in_degree_range": self.in_degree_range,
            "out_degree_range": self.out_degree_range,
            "max_out_degree": self.max_out_degree,
            "gini": self.gini,
            "entropy": self.entropy,
        }


def degree_summary(graph: CSRGraph) -> DegreeSummary:
    """Compute the whole-graph :class:`DegreeSummary`."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    if graph.num_vertices == 0:
        return DegreeSummary(0.0, 0.0, 0, 0, 0, 0.0, 0.0)
    return DegreeSummary(
        avg_in_degree=float(in_deg.mean()),
        avg_out_degree=float(out_deg.mean()),
        in_degree_range=int(in_deg.max() - in_deg.min()),
        out_degree_range=int(out_deg.max() - out_deg.min()),
        max_out_degree=int(out_deg.max()),
        gini=gini_coefficient(out_deg),
        entropy=degree_entropy(out_deg, num_edges=graph.num_edges),
    )


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Unweighted BFS levels from ``source`` (-1 for unreachable).

    Vectorized level-synchronous BFS used by property estimators and as
    the reference oracle for the BFS algorithm tests.
    """
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    depth = 0
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        depth += 1
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        total = int((stops - starts).sum())
        if total == 0:
            break
        neighbor_chunks = [
            indices[s:e] for s, e in zip(starts, stops) if e > s
        ]
        neighbors = np.concatenate(neighbor_chunks)
        fresh = neighbors[levels[neighbors] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        levels[fresh] = depth
        frontier = fresh
    return levels


def pseudo_diameter(graph: CSRGraph, seed: int = 0, sweeps: int = 4) -> int:
    """Lower-bound diameter estimate via repeated double-sweep BFS.

    Starts from a pseudo-random vertex, repeatedly jumps to the farthest
    vertex found, and returns the largest eccentricity observed. Exact on
    trees; a good lower bound in general and sufficient for classifying
    graphs into the paper's short/long-diameter regimes.
    """
    if graph.num_vertices == 0:
        return 0
    # Start from a high-out-degree vertex: a uniformly random start often
    # lands on a low-degree or isolated vertex and grossly underestimates.
    del seed  # kept for signature stability
    start = int(np.argmax(graph.out_degrees()))
    best = 0
    current = start
    for __ in range(max(1, sweeps)):
        levels = bfs_levels(graph, current)
        reachable = levels >= 0
        farthest = int(levels[reachable].max()) if reachable.any() else 0
        if farthest <= best and current != start:
            break
        best = max(best, farthest)
        current = int(np.argmax(np.where(reachable, levels, -1)))
    return best


def _undirected_components(graph: CSRGraph) -> np.ndarray:
    """Component labels treating all edges as undirected (union-find)."""
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    src, dst = graph.edge_array()
    for u, v in zip(src.tolist(), dst.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    return np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)


def is_connected(graph: CSRGraph) -> bool:
    """Whether the graph is (weakly) connected."""
    if graph.num_vertices <= 1:
        return True
    labels = _undirected_components(graph)
    return bool(np.all(labels == labels[0]))


def largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of vertices in the largest weakly-connected component."""
    if graph.num_vertices == 0:
        return 1.0
    labels = _undirected_components(graph)
    counts = np.bincount(labels, minlength=graph.num_vertices)
    return float(counts.max() / graph.num_vertices)
