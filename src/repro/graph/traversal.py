"""Traversal and subgraph utilities.

General-purpose helpers a downstream user of the library needs around
the core engines: bounded-hop neighborhoods, induced subgraphs,
filtering, and ego networks. All return new :class:`CSRGraph` objects
or plain arrays; nothing here mutates inputs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builders import from_edge_arrays
from repro.graph.csr import CSRGraph
from repro.graph.gather import gather_edges

__all__ = [
    "k_hop_neighborhood",
    "induced_subgraph",
    "filter_by_degree",
    "ego_network",
    "top_degree_vertices",
]


def k_hop_neighborhood(
    graph: CSRGraph, sources: np.ndarray, hops: int
) -> np.ndarray:
    """Vertices reachable from ``sources`` within ``hops`` out-steps.

    Includes the sources themselves (hop 0). Sorted unique ids.
    """
    if hops < 0:
        raise GraphError("hops cannot be negative")
    visited = np.unique(np.asarray(sources, dtype=np.int64))
    if visited.size and (
        visited[0] < 0 or visited[-1] >= graph.num_vertices
    ):
        raise GraphError("source vertex out of range")
    frontier = visited
    for __ in range(hops):
        if frontier.size == 0:
            break
        __, destinations, __w = gather_edges(graph, frontier)
        fresh = np.setdiff1d(np.unique(destinations), visited,
                             assume_unique=True)
        visited = np.union1d(visited, fresh)
        frontier = fresh
    return visited


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray
) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced on ``vertices``; returns ``(subgraph, mapping)``.

    ``mapping[i]`` is the original id of the subgraph's vertex ``i``.
    Edges with either endpoint outside the set are dropped; weights are
    preserved.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size and (
        vertices[0] < 0 or vertices[-1] >= graph.num_vertices
    ):
        raise GraphError("vertex out of range")
    local_id = np.full(graph.num_vertices, -1, dtype=np.int64)
    local_id[vertices] = np.arange(vertices.size)
    sources, destinations, weights = gather_edges(graph, vertices)
    keep = local_id[destinations] >= 0
    sub = from_edge_arrays(
        local_id[sources[keep]],
        local_id[destinations[keep]],
        num_vertices=vertices.size,
        weights=weights[keep] if weights is not None else None,
        directed=graph.directed,
        name=f"{graph.name}-sub",
    )
    return sub, vertices


def filter_by_degree(
    graph: CSRGraph,
    min_out: int = 0,
    max_out: Optional[int] = None,
) -> np.ndarray:
    """Vertices whose out-degree lies in ``[min_out, max_out]``."""
    degrees = graph.out_degrees()
    mask = degrees >= min_out
    if max_out is not None:
        mask &= degrees <= max_out
    return np.flatnonzero(mask).astype(np.int64)


def ego_network(
    graph: CSRGraph, center: int, hops: int = 1
) -> Tuple[CSRGraph, np.ndarray]:
    """The induced subgraph around ``center`` within ``hops`` steps."""
    if not 0 <= center < graph.num_vertices:
        raise GraphError("center out of range")
    members = k_hop_neighborhood(
        graph, np.array([center], dtype=np.int64), hops
    )
    return induced_subgraph(graph, members)


def top_degree_vertices(graph: CSRGraph, k: int,
                        by: str = "out") -> np.ndarray:
    """The ``k`` highest-degree vertices (``by`` = "out" or "in")."""
    if by == "out":
        degrees = graph.out_degrees()
    elif by == "in":
        degrees = graph.in_degrees()
    else:
        raise GraphError(f"unknown degree kind {by!r}")
    k = min(k, graph.num_vertices)
    return np.argsort(-degrees, kind="stable")[:k].astype(np.int64)
