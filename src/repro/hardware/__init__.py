"""Virtual multi-GPU hardware: specs, topology, device and timing models."""

from repro.hardware.spec import (
    ETHERNET_GBPS,
    GPUSpec,
    IB_LANE_GBPS,
    LinkSpec,
    MachineSpec,
    NVLINK_LANE_GBPS,
    PCIE_GBPS,
    SyncSpec,
    V100_SPEC,
)
from repro.hardware.topology import (
    Topology,
    cluster,
    dgx1,
    fully_connected,
    parse_topology,
    ring_topology,
    single_gpu,
)
from repro.hardware.device import DeviceModel
from repro.hardware.timing import TimingModel
from repro.hardware.microbench import (
    measure_bandwidth_matrix,
    measure_comm_cost_matrix,
)

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "SyncSpec",
    "MachineSpec",
    "V100_SPEC",
    "NVLINK_LANE_GBPS",
    "PCIE_GBPS",
    "IB_LANE_GBPS",
    "ETHERNET_GBPS",
    "Topology",
    "cluster",
    "dgx1",
    "parse_topology",
    "ring_topology",
    "fully_connected",
    "single_gpu",
    "DeviceModel",
    "TimingModel",
    "measure_bandwidth_matrix",
    "measure_comm_cost_matrix",
]
