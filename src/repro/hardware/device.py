"""Ground-truth device compute-cost model.

On real hardware, the per-edge cost of a Gather kernel depends on the
frontier's structure: degree skew concentrates atomic updates on hot
vertices (contention), wide degree ranges defeat coalescing and the L2
cache, and so on. The paper *learns* this relationship (the function
``g(W)`` of Section III-B) from running logs.

In this reproduction the role of "real hardware" is played by
:class:`DeviceModel`: a deliberately-richer-than-polynomial analytic
function of the Table-I features, plus a small deterministic
pseudo-noise term standing in for run-to-run measurement variance.
The learned cost model (:mod:`repro.core.costmodel`) never sees this
function's form — it only sees (features, observed cost) pairs, so the
Table V comparison of model families is a genuine learning problem.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.features import FrontierFeatures
from repro.hardware.spec import GPUSpec

__all__ = ["DeviceModel"]


class DeviceModel:
    """Analytic ground truth for per-edge compute cost ``g*(W)``.

    Parameters
    ----------
    gpu:
        Device spec supplying the baseline per-edge cost.
    noise_amplitude:
        Relative amplitude of the deterministic pseudo-noise (default
        3%): measurement jitter a learned model cannot and should not
        fit.
    """

    def __init__(self, gpu: GPUSpec | None = None,
                 noise_amplitude: float = 0.03) -> None:
        self._gpu = gpu or GPUSpec()
        self._noise = float(noise_amplitude)
        # id-keyed ground-truth memo; entries pin their features object
        # so a recycled id can never alias (see true_edge_cost)
        self._cost_memo: Dict[
            int, Tuple[FrontierFeatures, float]
        ] = {}

    #: Ground-truth memo flush threshold (bounds a long run's memory).
    _MEMO_BOUND = 4096

    @property
    def gpu(self) -> GPUSpec:
        """The device spec this model describes."""
        return self._gpu

    # ------------------------------------------------------------------
    def contention_factor(self, features: FrontierFeatures) -> float:
        """Atomic-contention multiplier (hot destinations serialize).

        Grows with degree skew (Gini) and, jointly, with how spread the
        destinations are (entropy x gini interaction): skew alone hurts
        only if updates actually collide. A smooth regime shift around
        gini ~ 0.55 models the transition into serialized atomics on
        hub vertices.
        """
        g = features.gini
        regime = 1.0 + 0.9 / (1.0 + np.exp(-12.0 * (g - 0.55)))
        return float((1.0 + 2.2 * g * g + 1.1 * g * features.entropy)
                     * regime)

    def coalescing_factor(self, features: FrontierFeatures) -> float:
        """Memory-irregularity multiplier (cache / coalescing misses).

        Wide out-degree ranges mean warps mix short and long adjacency
        lists; large average degrees amortize lookup overhead slightly
        (log term).
        """
        spread = np.sqrt(features.out_degree_range) / (
            features.avg_out_degree + 10.0
        )
        amortize = 1.0 + 0.30 * np.log1p(features.avg_out_degree)
        return float(amortize + 0.7 * spread)

    def gather_factor(self, features: FrontierFeatures) -> float:
        """In-edge-side multiplier: pulling from high in-degree regions."""
        return float(1.0 + 0.18 * np.log1p(features.avg_in_degree))

    def _pseudo_noise(self, features: FrontierFeatures) -> float:
        """Deterministic jitter in ``[1 - a, 1 + a]`` keyed on features."""
        if self._noise <= 0:
            return 1.0
        vec = features.vector()
        key = np.int64(
            abs(hash((round(float(vec[0]), 6), round(float(vec[1]), 6),
                      round(float(vec[4]), 6), features.size)))
        )
        rng = np.random.default_rng(int(key) % (2**63 - 1))
        return float(1.0 + self._noise * (2.0 * rng.random() - 1.0))

    # ------------------------------------------------------------------
    def true_edge_cost(self, features: FrontierFeatures) -> float:
        """Ground-truth compute cost per edge, in **seconds**.

        This is what the simulated GPU "actually takes"; the engine
        charges it to the virtual clock and logs it as the regression
        target for cost-model training.
        """
        if features.total_edges == 0:
            return self._gpu.base_edge_cost_ns * 1e-9
        # the cost is a pure function of the (immutable) features, and
        # frontier objects memoize their features — so the scheduler's
        # prediction audit and the engine's chunk pricing can share one
        # evaluation per frontier instead of recomputing the noise hash
        hit = self._cost_memo.get(id(features))
        if hit is not None and hit[0] is features:
            return hit[1]
        multiplier = (
            self.contention_factor(features)
            * self.coalescing_factor(features)
            * self.gather_factor(features)
        )
        cost = (
            self._gpu.base_edge_cost_ns
            * multiplier
            * self._pseudo_noise(features)
            * 1e-9
        )
        if len(self._cost_memo) >= self._MEMO_BOUND:
            self._cost_memo.clear()
        self._cost_memo[id(features)] = (features, cost)
        return cost

    def oracle(self):
        """Return ``g*`` as a plain callable (the Exp-7 oracle baseline)."""
        return self.true_edge_cost
