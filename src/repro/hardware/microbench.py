"""Simulated bandwidth micro-benchmark.

The paper evaluates ``B_ij`` "via micro benchmark" (Section III-B):
before running algorithms, the system measures achievable bandwidth
between every GPU pair. On our virtual machine the *true* bandwidth is
known; the micro-benchmark returns it perturbed by a small,
deterministic measurement error, so policy code consumes *measured*
numbers (as on real hardware) and the tests can quantify the effect of
measurement error on policy quality.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.topology import Topology

__all__ = ["measure_bandwidth_matrix", "measure_comm_cost_matrix"]


def measure_bandwidth_matrix(
    topology: Topology, seed: int = 0, error: float = 0.02
) -> np.ndarray:
    """Measured effective bandwidth (GB/s) between all GPU pairs.

    Parameters
    ----------
    topology:
        Machine under test.
    seed:
        Measurement-noise seed (deterministic).
    error:
        Maximum relative measurement error (default 2%); the returned
        matrix stays symmetric, as a real ping-pong benchmark would be
        averaged.
    """
    true = topology.effective_bandwidth_matrix().copy()
    n = topology.num_gpus
    rng = np.random.default_rng(seed)
    jitter = 1.0 + error * (2.0 * rng.random((n, n)) - 1.0)
    jitter = (jitter + jitter.T) / 2.0
    np.fill_diagonal(jitter, 1.0)  # local HBM figure is a datasheet value
    return true * jitter


def measure_comm_cost_matrix(
    topology: Topology, bytes_per_edge: int, seed: int = 0,
    error: float = 0.02,
) -> np.ndarray:
    """Measured seconds-per-edge communication cost matrix ``1/B_ij``."""
    bandwidth = measure_bandwidth_matrix(topology, seed=seed, error=error)
    return bytes_per_edge / (bandwidth * 1e9)
