"""Hardware specification dataclasses for the virtual multi-GPU machine.

These describe the *capabilities* of the simulated devices and links;
:mod:`repro.hardware.topology` arranges links into a machine,
:mod:`repro.hardware.device` turns specs into per-edge costs, and
:mod:`repro.hardware.timing` accumulates virtual time.

Default constants are calibrated to an NVIDIA DGX-1-class server
(8x V100 + hybrid-cube-mesh NVLink), the platform in the paper's
evaluation (Section VI-A). See DESIGN.md §5 for the calibration story.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "SyncSpec",
    "MachineSpec",
    "V100_SPEC",
    "NVLINK_LANE_GBPS",
    "PCIE_GBPS",
    "IB_LANE_GBPS",
    "ETHERNET_GBPS",
]

#: One NVLink 2.0 lane (V100 generation), GB/s per direction.
NVLINK_LANE_GBPS = 25.0

#: PCIe 3.0 x16 effective bandwidth used as the no-NVLink fallback, GB/s.
PCIE_GBPS = 12.0

#: One InfiniBand HDR100 rail between two nodes, GB/s per direction.
#: Multi-node topologies model the inter-node fabric as counted IB
#: lanes per node pair, mirroring how NVLink lanes work within a node.
IB_LANE_GBPS = 12.5

#: 10 GbE management-network fallback for node pairs without any IB
#: rail — the inter-node analogue of the PCIe floor.
ETHERNET_GBPS = 1.25


@dataclass(frozen=True)
class GPUSpec:
    """Compute and memory capabilities of one virtual GPU.

    Attributes
    ----------
    name:
        Marketing name, for reports.
    memory_gb:
        Device memory capacity. The engines check that fragments fit.
    local_bandwidth_gbps:
        HBM bandwidth used for the ``1/B_ii`` local-access cost term.
    base_edge_cost_ns:
        Baseline per-edge processing cost (nanoseconds) before the
        device model's contention/caching modulation. One *simulated*
        edge stands for ``config.EDGE_SCALE`` original edges, so this
        is the physical ~0.5 ns/edge times that factor.
    kernel_launch_us:
        Latency of launching one kernel, microseconds. Each BSP
        iteration launches several kernels (Fig 4a of the paper).
    """

    name: str = "V100"
    memory_gb: float = 32.0
    local_bandwidth_gbps: float = 900.0
    base_edge_cost_ns: float = 500.0
    kernel_launch_us: float = 8.0


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link between two GPUs.

    ``lanes`` counts NVLink lanes (0 means the pair communicates over
    PCIe through the host). Bandwidth is ``lanes * NVLINK_LANE_GBPS``
    or ``PCIE_GBPS`` when there is no direct link.
    """

    a: int
    b: int
    lanes: int = 1

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError("a link must connect two distinct GPUs")
        if self.lanes < 0:
            raise TopologyError("lane count cannot be negative")

    @property
    def bandwidth_gbps(self) -> float:
        """Effective bandwidth of this link in GB/s."""
        if self.lanes == 0:
            return PCIE_GBPS
        return self.lanes * NVLINK_LANE_GBPS


@dataclass(frozen=True)
class SyncSpec:
    """Per-iteration synchronization overhead model (the LT ingredient).

    The paper models the synchronization cost of an iteration as
    ``p * m`` where ``m`` is the number of participating workers
    (Equation 4). ``p`` aggregates kernel launches, frontier-size
    exchange, and message-buffer preparation; here it is decomposed so
    the runtime can attribute time to the right breakdown bucket.

    Attributes
    ----------
    per_worker_us:
        The paper's ``p``: fixed latency contributed by each active
        worker each iteration (microseconds).
    barrier_us:
        Fixed cost of the global barrier itself, independent of ``m``.
    serialization_ns_per_byte:
        Cost of packing scattered updates into contiguous send buffers,
        charged per message byte crossing a worker boundary. The pack
        is a strided gather through HBM, so the effective rate is a
        fraction of the 900 GB/s stream bandwidth (~200 GB/s).
    """

    per_worker_us: float = 100.0
    barrier_us: float = 20.0
    serialization_ns_per_byte: float = 0.005


@dataclass(frozen=True)
class MachineSpec:
    """A complete virtual machine: one GPU spec + sync behaviour.

    The link layout itself lives in :class:`repro.hardware.topology.Topology`;
    this object only carries the per-device characteristics shared by
    all GPUs in the (homogeneous) server.
    """

    gpu: GPUSpec = field(default_factory=GPUSpec)
    sync: SyncSpec = field(default_factory=SyncSpec)


#: The default device spec used throughout benchmarks.
V100_SPEC = GPUSpec()
