"""Virtual-time accounting for the simulated machine.

:class:`TimingModel` converts *work* (edges processed, bytes moved,
workers synchronized) into *virtual seconds*, combining:

* the topology's effective bandwidth matrix (the ``1/B_ij`` term of the
  paper's cost coefficient ``c_ij``),
* the device model's ground-truth per-edge compute cost ``g*(W)``,
* the synchronization model ``p * m`` responsible for the long tail.

Engines never invent timing constants; they ask this object. The
stealing algorithms use the *same* object via measured bandwidth and a
*learned* ``g`` — so an inaccurate cost model really does produce worse
policies (Exp-7's "slowdown" column measures exactly that gap).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import config
from repro.graph.features import FrontierFeatures
from repro.hardware.device import DeviceModel
from repro.hardware.spec import MachineSpec, SyncSpec
from repro.hardware.topology import Topology

__all__ = ["TimingModel"]


class TimingModel:
    """Charges virtual time for compute, communication, and sync.

    Parameters
    ----------
    topology:
        Machine layout; supplies effective bandwidths.
    machine:
        Device + sync specs; defaults to the V100/DGX-1 calibration.
    device_model:
        Ground-truth compute-cost model; constructed from the machine's
        GPU spec when omitted.
    """

    def __init__(
        self,
        topology: Topology,
        machine: Optional[MachineSpec] = None,
        device_model: Optional[DeviceModel] = None,
    ) -> None:
        self._topology = topology
        self._machine = machine or MachineSpec(gpu=topology.gpu)
        self._device = device_model or DeviceModel(self._machine.gpu)
        # seconds per edge moved between each pair (bytes / bandwidth)
        eff = topology.effective_bandwidth_matrix()
        self._comm_per_edge = config.BYTES_PER_EDGE / (eff * 1e9)
        self._comm_per_edge.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The machine layout this model charges for."""
        return self._topology

    @property
    def device_model(self) -> DeviceModel:
        """The ground-truth compute-cost model."""
        return self._device

    @property
    def sync(self) -> SyncSpec:
        """The synchronization-overhead spec."""
        return self._machine.sync

    # ------------------------------------------------------------------
    # Compute & communication
    # ------------------------------------------------------------------
    def compute_seconds(
        self, num_edges: int, features: FrontierFeatures
    ) -> float:
        """Time for one GPU to process ``num_edges`` edges locally."""
        return num_edges * self._device.true_edge_cost(features)

    def comm_seconds_per_edge(self, owner: int, worker: int) -> float:
        """The ``1/B_ij`` term: seconds to move one edge's data.

        ``owner == worker`` prices local HBM access.
        """
        return float(self._comm_per_edge[owner, worker])

    def comm_per_edge_matrix(self) -> np.ndarray:
        """Full matrix of :meth:`comm_seconds_per_edge`."""
        return self._comm_per_edge

    def remote_edge_seconds(
        self, owner: int, worker: int, num_edges: int,
        features: FrontierFeatures,
    ) -> float:
        """Total time for ``worker`` to process edges owned by ``owner``.

        Implements the paper's per-edge cost
        ``c_ij = 1/B_ij + g(W_i)`` times the edge count, with the
        ground-truth ``g*`` (engines charge true costs; policies may
        have estimated them differently).
        """
        per_edge = (
            self.comm_seconds_per_edge(owner, worker)
            + self._device.true_edge_cost(features)
        )
        return num_edges * per_edge

    # ------------------------------------------------------------------
    # Synchronization & serialization (the LT ingredients)
    # ------------------------------------------------------------------
    def sync_seconds(self, num_workers: int) -> float:
        """Per-iteration synchronization cost with ``m`` active workers.

        The paper's ``p * m`` (Equation 4) plus a fixed barrier cost.
        Zero workers means the iteration did not happen.
        """
        if num_workers <= 0:
            return 0.0
        spec = self._machine.sync
        return (
            spec.per_worker_us * num_workers + spec.barrier_us
        ) * 1e-6

    def kernel_launch_seconds(self, num_kernels: int = 1) -> float:
        """Latency of launching ``num_kernels`` kernels on one GPU."""
        return num_kernels * self._machine.gpu.kernel_launch_us * 1e-6

    def serialization_seconds(self, num_messages: int) -> float:
        """Packing scattered updates into contiguous send buffers."""
        nbytes = num_messages * config.BYTES_PER_MESSAGE
        return nbytes * self._machine.sync.serialization_ns_per_byte * 1e-9

    def transfer_seconds(self, owner: int, peer: int, nbytes: int) -> float:
        """Bulk transfer of ``nbytes`` between two GPUs."""
        if owner == peer:
            bandwidth = self._topology.gpu.local_bandwidth_gbps
        else:
            bandwidth = self._topology.effective_bandwidth(owner, peer)
        return nbytes / (bandwidth * 1e9)
