"""Asymmetric interconnect topology for the virtual multi-GPU machine.

Models the NVLink layouts the paper exploits (Section I, Figure 2):

* links between GPU pairs are *asymmetric* — two lanes (50 GB/s), one
  lane (25 GB/s), or none (PCIe fallback through the host);
* multiple *stealing paths* may exist between a pair, routing through a
  transit GPU.

:class:`Topology` stores the lane matrix and answers the two questions
the stealing algorithms ask: *what is the effective bandwidth between
i and j* (best direct-or-multi-hop path, store-and-forward penalized
per hop), and *what ring should a ring-based system (Groute) use*.

The shipped preset is the DGX-1V hybrid cube mesh — two fully-connected
quads bridged by doubled links, six lanes per GPU — which is the
8xV100 server class used in the paper's evaluation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.hardware.spec import (
    GPUSpec,
    LinkSpec,
    NVLINK_LANE_GBPS,
    PCIE_GBPS,
)

__all__ = ["Topology", "dgx1", "ring_topology", "fully_connected", "single_gpu"]


class Topology:
    """A set of GPUs plus a symmetric lane matrix.

    Parameters
    ----------
    num_gpus:
        Number of devices.
    links:
        Point-to-point :class:`LinkSpec` entries. Pairs not listed
        communicate over PCIe (``PCIE_GBPS``).
    gpu:
        Per-device spec (homogeneous machine).
    """

    def __init__(
        self,
        num_gpus: int,
        links: Sequence[LinkSpec] = (),
        gpu: Optional[GPUSpec] = None,
        name: str = "custom",
    ) -> None:
        if num_gpus < 1:
            raise TopologyError("need at least one GPU")
        self._n = int(num_gpus)
        self._gpu = gpu or GPUSpec()
        self._name = name
        lanes = np.zeros((self._n, self._n), dtype=np.int64)
        for link in links:
            if not (0 <= link.a < self._n and 0 <= link.b < self._n):
                raise TopologyError(
                    f"link ({link.a},{link.b}) out of range for "
                    f"{self._n} GPUs"
                )
            lanes[link.a, link.b] += link.lanes
            lanes[link.b, link.a] += link.lanes
        lanes.setflags(write=False)
        self._lanes = lanes
        self._bandwidth_cache: Optional[np.ndarray] = None
        self._ring_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Number of devices in the machine."""
        return self._n

    @property
    def gpu(self) -> GPUSpec:
        """The per-device specification."""
        return self._gpu

    @property
    def name(self) -> str:
        """Topology preset name, for reports."""
        return self._name

    @property
    def lane_matrix(self) -> np.ndarray:
        """Symmetric ``n x n`` matrix of direct NVLink lane counts."""
        return self._lanes

    def __repr__(self) -> str:
        return f"Topology(name={self._name!r}, num_gpus={self._n})"

    # ------------------------------------------------------------------
    def direct_bandwidth(self, i: int, j: int) -> float:
        """Bandwidth of the direct link i-j in GB/s.

        ``i == j`` returns local HBM bandwidth; zero-lane pairs return
        the PCIe fallback.
        """
        if i == j:
            return self._gpu.local_bandwidth_gbps
        lanes = int(self._lanes[i, j])
        return lanes * NVLINK_LANE_GBPS if lanes else PCIE_GBPS

    def direct_bandwidth_matrix(self) -> np.ndarray:
        """Matrix of :meth:`direct_bandwidth` for all pairs."""
        bw = np.where(
            self._lanes > 0, self._lanes * NVLINK_LANE_GBPS, PCIE_GBPS
        ).astype(np.float64)
        np.fill_diagonal(bw, self._gpu.local_bandwidth_gbps)
        return bw

    def effective_bandwidth_matrix(self) -> np.ndarray:
        """Best achievable bandwidth per pair, allowing transit GPUs.

        A path through ``h`` hops is store-and-forward: its effective
        bandwidth is the bottleneck link bandwidth divided by ``h``.
        The matrix entry is the max over direct PCIe and every NVLink
        path of at most ``n-1`` hops — this is the paper's observation
        that GPU0 may steal from GPU7 through GPU1 or GPU6 when the
        transit path beats the fallback.
        """
        if self._bandwidth_cache is not None:
            return self._bandwidth_cache
        n = self._n
        nvlink = (self._lanes * NVLINK_LANE_GBPS).astype(np.float64)
        # widest[i, j] = best bottleneck bandwidth over NVLink-only paths
        # of at most k hops; computed by maximin Floyd-Warshall variant
        # tracked per hop count.
        best = np.full((n, n), -np.inf)
        hop_widest = np.where(nvlink > 0, nvlink, -np.inf)
        current = hop_widest.copy()
        for hops in range(1, n):
            if hops > 1:
                # extend every (hops-1)-path by one NVLink hop
                extended = np.full((n, n), -np.inf)
                for mid in range(n):
                    cand = np.minimum.outer(current[:, mid], hop_widest[mid])
                    np.maximum(extended, cand, out=extended)
                current = extended
            np.maximum(best, current / hops, out=best)
        eff = np.maximum(best, PCIE_GBPS)
        np.fill_diagonal(eff, self._gpu.local_bandwidth_gbps)
        eff.setflags(write=False)
        self._bandwidth_cache = eff
        return eff

    def effective_bandwidth(self, i: int, j: int) -> float:
        """Effective (possibly multi-hop) bandwidth between i and j."""
        return float(self.effective_bandwidth_matrix()[i, j])

    def aggregate_bandwidth(self, members: Sequence[int]) -> float:
        """Sum of direct NVLink bandwidth among a subset of GPUs.

        The OSteal reduction tree keeps the *residual network with the
        largest aggregated bandwidth* (Section IV-A); this is the
        quantity it maximizes.
        """
        members = list(members)
        total = 0.0
        for idx, i in enumerate(members):
            for j in members[idx + 1:]:
                total += float(self._lanes[i, j]) * NVLINK_LANE_GBPS
        return total

    # ------------------------------------------------------------------
    def find_ring(self) -> Optional[List[int]]:
        """Find a Hamiltonian NVLink ring, preferring wide links.

        Returns the GPU order of a ring using only direct NVLink links,
        or ``None`` if no such ring exists (e.g. odd sub-topologies of
        the cube mesh) — the case where Groute degrades in the paper's
        Exp-2.
        """
        if self._ring_cache is not None:
            return list(self._ring_cache)
        n = self._n
        if n == 1:
            self._ring_cache = [0]
            return [0]
        if n == 2:
            if self._lanes[0, 1] > 0:
                self._ring_cache = [0, 1]
                return [0, 1]
            return None

        order = [0]
        used = [False] * n
        used[0] = True

        def backtrack() -> bool:
            if len(order) == n:
                return bool(self._lanes[order[-1], 0] > 0)
            last = order[-1]
            # try wide links first so the chosen ring is the fast one
            candidates = sorted(
                (v for v in range(n) if not used[v] and self._lanes[last, v]),
                key=lambda v: -int(self._lanes[last, v]),
            )
            for v in candidates:
                used[v] = True
                order.append(v)
                if backtrack():
                    return True
                order.pop()
                used[v] = False
            return False

        if backtrack():
            self._ring_cache = list(order)
            return list(order)
        return None

    def with_degraded_link(
        self, a: int, b: int, lanes: int = 0, name: str = ""
    ) -> "Topology":
        """Copy of this topology with the direct link ``a``-``b`` set to
        ``lanes`` lanes.

        ``lanes=0`` models a lost link (the pair falls back to PCIe or a
        multi-hop NVLink path); a positive count below the current one
        models partial lane degradation. The effective-bandwidth matrix
        of the returned topology is recomputed from scratch, so
        multi-hop steal paths reroute around the damage.
        """
        if a == b:
            raise TopologyError("cannot degrade a device's local link")
        if not (0 <= a < self._n and 0 <= b < self._n):
            raise TopologyError(
                f"link ({a},{b}) out of range for {self._n} GPUs"
            )
        if lanes < 0:
            raise TopologyError("lane count cannot be negative")
        links = []
        for i in range(self._n):
            for j in range(i + 1, self._n):
                count = lanes if {i, j} == {a, b} else int(self._lanes[i, j])
                if count:
                    links.append(LinkSpec(i, j, count))
        return Topology(
            self._n,
            links,
            gpu=self._gpu,
            name=name or f"{self._name}-degraded",
        )

    def subset(self, members: Sequence[int], name: str = "") -> "Topology":
        """Topology induced on a subset of GPUs (ids are renumbered)."""
        members = list(members)
        if len(set(members)) != len(members):
            raise TopologyError("subset members must be distinct")
        remap = {g: i for i, g in enumerate(members)}
        links = []
        for idx, i in enumerate(members):
            for j in members[idx + 1:]:
                lanes = int(self._lanes[i, j])
                if lanes:
                    links.append(LinkSpec(remap[i], remap[j], lanes))
        return Topology(
            len(members),
            links,
            gpu=self._gpu,
            name=name or f"{self._name}[{len(members)}]",
        )


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: DGX-1V hybrid cube mesh: two quads {0..3} / {4..7}, six lanes per GPU.
_DGX1_LINKS: Tuple[Tuple[int, int, int], ...] = (
    (0, 1, 1), (0, 2, 1), (0, 3, 2), (0, 4, 2),
    (1, 2, 2), (1, 3, 1), (1, 5, 2),
    (2, 3, 1), (2, 6, 2),
    (3, 7, 2),
    (4, 5, 1), (4, 6, 1), (4, 7, 2),
    (5, 6, 2), (5, 7, 1),
    (6, 7, 1),
)


def dgx1(num_gpus: int = 8, gpu: Optional[GPUSpec] = None) -> Topology:
    """The paper's platform: 8x V100 hybrid cube mesh (Figure 2 class).

    ``num_gpus < 8`` returns the induced sub-topology on GPUs
    ``0..num_gpus-1``, the configuration used in the scaling
    experiments (Exp-2).
    """
    if not 1 <= num_gpus <= 8:
        raise TopologyError("dgx1 preset supports 1..8 GPUs")
    links = [LinkSpec(a, b, lanes) for a, b, lanes in _DGX1_LINKS]
    full = Topology(8, links, gpu=gpu, name="dgx1")
    if num_gpus == 8:
        return full
    return full.subset(range(num_gpus), name=f"dgx1[{num_gpus}]")


def ring_topology(
    num_gpus: int, lanes: int = 2, gpu: Optional[GPUSpec] = None
) -> Topology:
    """Simple ring of ``num_gpus`` devices with ``lanes`` lanes per link."""
    if num_gpus < 1:
        raise TopologyError("need at least one GPU")
    links = [
        LinkSpec(i, (i + 1) % num_gpus, lanes)
        for i in range(num_gpus)
        if num_gpus > 1 and i != (i + 1) % num_gpus
    ]
    # a 2-GPU "ring" is a single link, not a double one
    if num_gpus == 2:
        links = [LinkSpec(0, 1, lanes)]
    return Topology(num_gpus, links, gpu=gpu, name=f"ring{num_gpus}")


def fully_connected(
    num_gpus: int, lanes: int = 1, gpu: Optional[GPUSpec] = None
) -> Topology:
    """All-to-all NVLink (NVSwitch-like), ``lanes`` lanes per pair."""
    links = [
        LinkSpec(i, j, lanes)
        for i in range(num_gpus)
        for j in range(i + 1, num_gpus)
    ]
    return Topology(num_gpus, links, gpu=gpu, name=f"full{num_gpus}")


def single_gpu(gpu: Optional[GPUSpec] = None) -> Topology:
    """A machine with a single device (the scaling baseline)."""
    return Topology(1, (), gpu=gpu, name="single")
