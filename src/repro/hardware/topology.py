"""Asymmetric interconnect topology for the virtual multi-GPU machine.

Models the NVLink layouts the paper exploits (Section I, Figure 2):

* links between GPU pairs are *asymmetric* — two lanes (50 GB/s), one
  lane (25 GB/s), or none (PCIe fallback through the host);
* multiple *stealing paths* may exist between a pair, routing through a
  transit GPU.

:class:`Topology` stores the lane matrix and answers the two questions
the stealing algorithms ask: *what is the effective bandwidth between
i and j* (best direct-or-multi-hop path, store-and-forward penalized
per hop), and *what ring should a ring-based system (Groute) use*.

The shipped preset is the DGX-1V hybrid cube mesh — two fully-connected
quads bridged by doubled links, six lanes per GPU — which is the
8xV100 server class used in the paper's evaluation.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TopologyError
from repro.hardware.spec import (
    ETHERNET_GBPS,
    GPUSpec,
    IB_LANE_GBPS,
    LinkSpec,
    NVLINK_LANE_GBPS,
    PCIE_GBPS,
)

__all__ = [
    "Topology",
    "dgx1",
    "ring_topology",
    "fully_connected",
    "single_gpu",
    "cluster",
    "parse_topology",
]


def _maximin_over_hops(lanes_gbps: np.ndarray) -> np.ndarray:
    """Best store-and-forward bandwidth per pair over a lane graph.

    ``lanes_gbps`` is the symmetric direct-bandwidth matrix (zero where
    no link). A path through ``h`` hops is store-and-forward: its
    effective bandwidth is the bottleneck link bandwidth divided by
    ``h``. Entries with no path at all come back ``-inf`` so callers
    can apply their fallback floor.
    """
    n = lanes_gbps.shape[0]
    best = np.full((n, n), -np.inf)
    hop_widest = np.where(lanes_gbps > 0, lanes_gbps, -np.inf)
    current = hop_widest.copy()
    for hops in range(1, n):
        if hops > 1:
            # extend every (hops-1)-path by one direct hop
            extended = np.full((n, n), -np.inf)
            for mid in range(n):
                cand = np.minimum.outer(current[:, mid], hop_widest[mid])
                np.maximum(extended, cand, out=extended)
            current = extended
        np.maximum(best, current / hops, out=best)
    return best


class Topology:
    """A set of GPUs plus a symmetric lane matrix.

    Parameters
    ----------
    num_gpus:
        Number of devices.
    links:
        Point-to-point :class:`LinkSpec` entries. Pairs not listed
        communicate over PCIe (``PCIE_GBPS``).
    gpu:
        Per-device spec (homogeneous machine).
    node_of:
        Optional GPU -> node assignment for multi-node clusters. Node
        ids must be ``0..num_nodes-1`` with every node non-empty.
        NVLink links never cross nodes; unlisted *intra-node* pairs
        fall back to PCIe while unlisted *inter-node* pairs fall back
        to Ethernet.
    inter_node_links:
        :class:`LinkSpec` entries over **node** ids counting modeled
        InfiniBand rails between node pairs (``IB_LANE_GBPS`` each).
    """

    def __init__(
        self,
        num_gpus: int,
        links: Sequence[LinkSpec] = (),
        gpu: Optional[GPUSpec] = None,
        name: str = "custom",
        node_of: Optional[Sequence[int]] = None,
        inter_node_links: Sequence[LinkSpec] = (),
    ) -> None:
        if num_gpus < 1:
            raise TopologyError("need at least one GPU")
        self._n = int(num_gpus)
        self._gpu = gpu or GPUSpec()
        self._name = name
        if node_of is None:
            nodes = np.zeros(self._n, dtype=np.int64)
        else:
            nodes = np.asarray(list(node_of), dtype=np.int64)
            if nodes.shape != (self._n,):
                raise TopologyError(
                    f"node_of must assign all {self._n} GPUs"
                )
            if nodes.min() < 0:
                raise TopologyError("node ids cannot be negative")
            expected = np.arange(int(nodes.max()) + 1)
            if not np.isin(expected, nodes).all():
                raise TopologyError(
                    "node ids must be contiguous 0..num_nodes-1 with "
                    "every node non-empty"
                )
        nodes.setflags(write=False)
        self._node_of = nodes
        self._num_nodes = int(nodes.max()) + 1
        lanes = np.zeros((self._n, self._n), dtype=np.int64)
        for link in links:
            if not (0 <= link.a < self._n and 0 <= link.b < self._n):
                raise TopologyError(
                    f"link ({link.a},{link.b}) out of range for "
                    f"{self._n} GPUs"
                )
            if nodes[link.a] != nodes[link.b]:
                raise TopologyError(
                    f"NVLink link ({link.a},{link.b}) crosses nodes "
                    f"{int(nodes[link.a])} and {int(nodes[link.b])}; "
                    "inter-node traffic uses inter_node_links"
                )
            lanes[link.a, link.b] += link.lanes
            lanes[link.b, link.a] += link.lanes
        lanes.setflags(write=False)
        self._lanes = lanes
        inter = np.zeros((self._num_nodes, self._num_nodes),
                         dtype=np.int64)
        if inter_node_links and self._num_nodes == 1:
            raise TopologyError(
                "inter_node_links require a multi-node node_of grouping"
            )
        for link in inter_node_links:
            if not (0 <= link.a < self._num_nodes
                    and 0 <= link.b < self._num_nodes):
                raise TopologyError(
                    f"inter-node link ({link.a},{link.b}) out of range "
                    f"for {self._num_nodes} nodes"
                )
            inter[link.a, link.b] += link.lanes
            inter[link.b, link.a] += link.lanes
        inter.setflags(write=False)
        self._inter_lanes = inter
        self._bandwidth_cache: Optional[np.ndarray] = None
        self._ring_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Number of devices in the machine."""
        return self._n

    @property
    def gpu(self) -> GPUSpec:
        """The per-device specification."""
        return self._gpu

    @property
    def name(self) -> str:
        """Topology preset name, for reports."""
        return self._name

    @property
    def lane_matrix(self) -> np.ndarray:
        """Symmetric ``n x n`` matrix of direct NVLink lane counts."""
        return self._lanes

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the cluster (1 for a single server)."""
        return self._num_nodes

    @property
    def node_assignment(self) -> np.ndarray:
        """Read-only GPU -> node id array."""
        return self._node_of

    @property
    def inter_node_lane_matrix(self) -> np.ndarray:
        """Symmetric ``nodes x nodes`` matrix of IB rail counts."""
        return self._inter_lanes

    def node_of(self, i: int) -> int:
        """Node hosting GPU ``i``."""
        return int(self._node_of[i])

    def node_members(self, node: int) -> List[int]:
        """GPU ids hosted on ``node``, ascending."""
        return [int(g) for g in np.flatnonzero(self._node_of == node)]

    def __repr__(self) -> str:
        return f"Topology(name={self._name!r}, num_gpus={self._n})"

    # ------------------------------------------------------------------
    def direct_bandwidth(self, i: int, j: int) -> float:
        """Bandwidth of the direct link i-j in GB/s.

        ``i == j`` returns local HBM bandwidth; zero-lane intra-node
        pairs return the PCIe fallback. Pairs on different nodes use
        the node pair's IB rails, or the Ethernet floor without any.
        """
        if i == j:
            return self._gpu.local_bandwidth_gbps
        u, v = int(self._node_of[i]), int(self._node_of[j])
        if u != v:
            rails = int(self._inter_lanes[u, v])
            return rails * IB_LANE_GBPS if rails else ETHERNET_GBPS
        lanes = int(self._lanes[i, j])
        return lanes * NVLINK_LANE_GBPS if lanes else PCIE_GBPS

    def direct_bandwidth_matrix(self) -> np.ndarray:
        """Matrix of :meth:`direct_bandwidth` for all pairs."""
        bw = np.where(
            self._lanes > 0, self._lanes * NVLINK_LANE_GBPS, PCIE_GBPS
        ).astype(np.float64)
        if self._num_nodes > 1:
            node_bw = np.where(
                self._inter_lanes > 0,
                self._inter_lanes * IB_LANE_GBPS,
                ETHERNET_GBPS,
            ).astype(np.float64)
            cross = self._node_of[:, None] != self._node_of[None, :]
            bw[cross] = node_bw[
                self._node_of[:, None], self._node_of[None, :]
            ][cross]
        np.fill_diagonal(bw, self._gpu.local_bandwidth_gbps)
        return bw

    def effective_bandwidth_matrix(self) -> np.ndarray:
        """Best achievable bandwidth per pair, allowing transit GPUs.

        A path through ``h`` hops is store-and-forward: its effective
        bandwidth is the bottleneck link bandwidth divided by ``h``.
        The matrix entry is the max over direct PCIe and every NVLink
        path of at most ``n-1`` hops — this is the paper's observation
        that GPU0 may steal from GPU7 through GPU1 or GPU6 when the
        transit path beats the fallback.
        """
        if self._bandwidth_cache is not None:
            return self._bandwidth_cache
        nvlink = (self._lanes * NVLINK_LANE_GBPS).astype(np.float64)
        # widest[i, j] = best bottleneck bandwidth over NVLink-only paths
        # of at most k hops; a maximin Floyd-Warshall variant tracked
        # per hop count. NVLink lanes never cross nodes, so intra-node
        # entries are independent of the inter-node fabric by
        # construction.
        best = _maximin_over_hops(nvlink)
        eff = np.maximum(best, PCIE_GBPS)
        if self._num_nodes > 1:
            # node-level fabric: maximin over IB rails with the same
            # store-and-forward penalty, floored at the Ethernet
            # management network. Every cross-node GPU pair sees its
            # node pair's effective rate.
            ib = (self._inter_lanes * IB_LANE_GBPS).astype(np.float64)
            node_eff = np.maximum(_maximin_over_hops(ib), ETHERNET_GBPS)
            cross = self._node_of[:, None] != self._node_of[None, :]
            eff[cross] = node_eff[
                self._node_of[:, None], self._node_of[None, :]
            ][cross]
        np.fill_diagonal(eff, self._gpu.local_bandwidth_gbps)
        eff.setflags(write=False)
        self._bandwidth_cache = eff
        return eff

    def effective_bandwidth(self, i: int, j: int) -> float:
        """Effective (possibly multi-hop) bandwidth between i and j."""
        return float(self.effective_bandwidth_matrix()[i, j])

    def aggregate_bandwidth(self, members: Sequence[int]) -> float:
        """Sum of direct NVLink bandwidth among a subset of GPUs.

        The OSteal reduction tree keeps the *residual network with the
        largest aggregated bandwidth* (Section IV-A); this is the
        quantity it maximizes.
        """
        members = list(members)
        total = 0.0
        for idx, i in enumerate(members):
            for j in members[idx + 1:]:
                total += float(self._lanes[i, j]) * NVLINK_LANE_GBPS
        if self._num_nodes > 1:
            # an IB rail is shared by every GPU pair spanning its two
            # nodes, so each node pair contributes its rails once
            present = sorted({int(self._node_of[g]) for g in members})
            for idx, u in enumerate(present):
                for v in present[idx + 1:]:
                    total += float(self._inter_lanes[u, v]) * IB_LANE_GBPS
        return total

    # ------------------------------------------------------------------
    def find_ring(self) -> Optional[List[int]]:
        """Find a Hamiltonian NVLink ring, preferring wide links.

        Returns the GPU order of a ring using only direct NVLink links,
        or ``None`` if no such ring exists (e.g. odd sub-topologies of
        the cube mesh) — the case where Groute degrades in the paper's
        Exp-2.
        """
        if self._ring_cache is not None:
            return list(self._ring_cache)
        n = self._n
        if n == 1:
            self._ring_cache = [0]
            return [0]
        if n == 2:
            if self._lanes[0, 1] > 0:
                self._ring_cache = [0, 1]
                return [0, 1]
            return None

        order = [0]
        used = [False] * n
        used[0] = True

        def backtrack() -> bool:
            if len(order) == n:
                return bool(self._lanes[order[-1], 0] > 0)
            last = order[-1]
            # try wide links first so the chosen ring is the fast one
            candidates = sorted(
                (v for v in range(n) if not used[v] and self._lanes[last, v]),
                key=lambda v: -int(self._lanes[last, v]),
            )
            for v in candidates:
                used[v] = True
                order.append(v)
                if backtrack():
                    return True
                order.pop()
                used[v] = False
            return False

        if backtrack():
            self._ring_cache = list(order)
            return list(order)
        return None

    def with_degraded_link(
        self, a: int, b: int, lanes: int = 0, name: str = ""
    ) -> "Topology":
        """Copy of this topology with the direct link ``a``-``b`` set to
        ``lanes`` lanes.

        ``lanes=0`` models a lost link (the pair falls back to PCIe or a
        multi-hop NVLink path); a positive count below the current one
        models partial lane degradation. The effective-bandwidth matrix
        of the returned topology is recomputed from scratch, so
        multi-hop steal paths reroute around the damage.

        When ``a`` and ``b`` live on different nodes the degradation
        applies to that node pair's IB rails instead: ``lanes`` is the
        remaining rail count and 0 drops the pair to the Ethernet
        floor. Node groupings are preserved either way, so chaos
        ``degrade_link`` composes with hierarchical topologies.
        """
        if a == b:
            raise TopologyError("cannot degrade a device's local link")
        if not (0 <= a < self._n and 0 <= b < self._n):
            raise TopologyError(
                f"link ({a},{b}) out of range for {self._n} GPUs"
            )
        if lanes < 0:
            raise TopologyError("lane count cannot be negative")
        node_a, node_b = int(self._node_of[a]), int(self._node_of[b])
        links = []
        for i in range(self._n):
            for j in range(i + 1, self._n):
                degraded = node_a == node_b and {i, j} == {a, b}
                count = lanes if degraded else int(self._lanes[i, j])
                if count:
                    links.append(LinkSpec(i, j, count))
        inter_links = []
        for u in range(self._num_nodes):
            for v in range(u + 1, self._num_nodes):
                degraded = node_a != node_b and {u, v} == {node_a, node_b}
                count = lanes if degraded else int(self._inter_lanes[u, v])
                if count:
                    inter_links.append(LinkSpec(u, v, count))
        return Topology(
            self._n,
            links,
            gpu=self._gpu,
            name=name or f"{self._name}-degraded",
            node_of=None if self._num_nodes == 1 else self._node_of,
            inter_node_links=inter_links,
        )

    def subset(self, members: Sequence[int], name: str = "") -> "Topology":
        """Topology induced on a subset of GPUs (ids are renumbered).

        Node groupings survive the cut: each member keeps its node,
        represented nodes are renumbered compactly in ascending
        original order, and IB rails are induced on the surviving node
        pairs.
        """
        members = list(members)
        if len(set(members)) != len(members):
            raise TopologyError("subset members must be distinct")
        remap = {g: i for i, g in enumerate(members)}
        links = []
        for idx, i in enumerate(members):
            for j in members[idx + 1:]:
                lanes = int(self._lanes[i, j])
                if lanes:
                    links.append(LinkSpec(remap[i], remap[j], lanes))
        member_nodes = [int(self._node_of[g]) for g in members]
        present = sorted(set(member_nodes))
        node_remap = {u: i for i, u in enumerate(present)}
        node_of = None
        inter_links = []
        if len(present) > 1:
            node_of = [node_remap[u] for u in member_nodes]
            for idx, u in enumerate(present):
                for v in present[idx + 1:]:
                    rails = int(self._inter_lanes[u, v])
                    if rails:
                        inter_links.append(
                            LinkSpec(node_remap[u], node_remap[v], rails)
                        )
        return Topology(
            len(members),
            links,
            gpu=self._gpu,
            name=name or f"{self._name}[{len(members)}]",
            node_of=node_of,
            inter_node_links=inter_links,
        )


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

#: DGX-1V hybrid cube mesh: two quads {0..3} / {4..7}, six lanes per GPU.
_DGX1_LINKS: Tuple[Tuple[int, int, int], ...] = (
    (0, 1, 1), (0, 2, 1), (0, 3, 2), (0, 4, 2),
    (1, 2, 2), (1, 3, 1), (1, 5, 2),
    (2, 3, 1), (2, 6, 2),
    (3, 7, 2),
    (4, 5, 1), (4, 6, 1), (4, 7, 2),
    (5, 6, 2), (5, 7, 1),
    (6, 7, 1),
)


def dgx1(num_gpus: int = 8, gpu: Optional[GPUSpec] = None) -> Topology:
    """The paper's platform: 8x V100 hybrid cube mesh (Figure 2 class).

    ``num_gpus < 8`` returns the induced sub-topology on GPUs
    ``0..num_gpus-1``, the configuration used in the scaling
    experiments (Exp-2).
    """
    if not 1 <= num_gpus <= 8:
        raise TopologyError("dgx1 preset supports 1..8 GPUs")
    links = [LinkSpec(a, b, lanes) for a, b, lanes in _DGX1_LINKS]
    full = Topology(8, links, gpu=gpu, name="dgx1")
    if num_gpus == 8:
        return full
    return full.subset(range(num_gpus), name=f"dgx1[{num_gpus}]")


def ring_topology(
    num_gpus: int, lanes: int = 2, gpu: Optional[GPUSpec] = None
) -> Topology:
    """Simple ring of ``num_gpus`` devices with ``lanes`` lanes per link."""
    if num_gpus < 1:
        raise TopologyError("need at least one GPU")
    links = [
        LinkSpec(i, (i + 1) % num_gpus, lanes)
        for i in range(num_gpus)
        if num_gpus > 1 and i != (i + 1) % num_gpus
    ]
    # a 2-GPU "ring" is a single link, not a double one
    if num_gpus == 2:
        links = [LinkSpec(0, 1, lanes)]
    return Topology(num_gpus, links, gpu=gpu, name=f"ring{num_gpus}")


def fully_connected(
    num_gpus: int, lanes: int = 1, gpu: Optional[GPUSpec] = None
) -> Topology:
    """All-to-all NVLink (NVSwitch-like), ``lanes`` lanes per pair."""
    links = [
        LinkSpec(i, j, lanes)
        for i in range(num_gpus)
        for j in range(i + 1, num_gpus)
    ]
    return Topology(num_gpus, links, gpu=gpu, name=f"full{num_gpus}")


def single_gpu(gpu: Optional[GPUSpec] = None) -> Topology:
    """A machine with a single device (the scaling baseline)."""
    return Topology(1, (), gpu=gpu, name="single")


def cluster(
    num_nodes: int,
    gpus_per_node: int,
    ib_rails: int = 1,
    gpu: Optional[GPUSpec] = None,
) -> Topology:
    """A multi-node cluster of DGX-1-class servers over an IB fabric.

    Each node carries the first ``gpus_per_node`` GPUs of the hybrid
    cube mesh (exactly :func:`dgx1`'s sub-topology), and every node
    pair is joined by ``ib_rails`` InfiniBand rails — the flat fabric
    of a small GPU cluster. ``cluster(1, k)`` is bit-identical to
    ``dgx1(k)`` apart from the preset name; ``--topology nodes=2x4``
    style CLI selectors resolve here.
    """
    if num_nodes < 1:
        raise TopologyError("need at least one node")
    if not 1 <= gpus_per_node <= 8:
        raise TopologyError("cluster nodes carry 1..8 GPUs (dgx1 class)")
    if ib_rails < 0:
        raise TopologyError("IB rail count cannot be negative")
    node_links = [
        (a, b, lanes)
        for a, b, lanes in _DGX1_LINKS
        if a < gpus_per_node and b < gpus_per_node
    ]
    links = [
        LinkSpec(node * gpus_per_node + a, node * gpus_per_node + b, lanes)
        for node in range(num_nodes)
        for a, b, lanes in node_links
    ]
    node_of = None
    inter_links = []
    if num_nodes > 1:
        node_of = [
            node for node in range(num_nodes) for __ in range(gpus_per_node)
        ]
        if ib_rails:
            inter_links = [
                LinkSpec(u, v, ib_rails)
                for u in range(num_nodes)
                for v in range(u + 1, num_nodes)
            ]
    return Topology(
        num_nodes * gpus_per_node,
        links,
        gpu=gpu,
        name=f"cluster{num_nodes}x{gpus_per_node}",
        node_of=node_of,
        inter_node_links=inter_links,
    )


def parse_topology(
    spec: Optional[Union["Topology", str]],
    num_gpus: Optional[int] = None,
    gpu: Optional[GPUSpec] = None,
) -> "Topology":
    """Resolve a topology selector to a :class:`Topology`.

    Accepted forms:

    * ``None`` — the default single-node DGX-1 sub-topology over
      ``num_gpus`` devices (8 when unspecified);
    * a :class:`Topology` instance — returned as-is;
    * ``"dgx1"`` — same as ``None``;
    * ``"nodes=NxG"`` (e.g. ``nodes=2x4``) — an N-node cluster of
      G-GPU servers via :func:`cluster`; total worker count N*G.

    This is the single resolution point for the CLI's ``--topology``
    flag and the facade's ``topology=`` parameter.
    """
    if spec is None:
        return dgx1(8 if num_gpus is None else num_gpus, gpu=gpu)
    if isinstance(spec, Topology):
        return spec
    text = str(spec).strip().lower()
    if text in ("dgx1", "default"):
        return dgx1(8 if num_gpus is None else num_gpus, gpu=gpu)
    match = re.fullmatch(r"nodes=(\d+)x(\d+)", text)
    if match is None:
        raise TopologyError(
            f"unknown topology selector {spec!r}; expected 'dgx1' or "
            f"'nodes=NxG' (e.g. nodes=2x4)"
        )
    num_nodes, gpus_per_node = int(match.group(1)), int(match.group(2))
    topology = cluster(num_nodes, gpus_per_node, gpu=gpu)
    if num_gpus is not None and num_gpus != topology.num_gpus:
        raise TopologyError(
            f"topology {text!r} carries {topology.num_gpus} GPUs but "
            f"num_gpus={num_gpus} was requested"
        )
    return topology
