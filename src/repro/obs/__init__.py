"""Observability: structured spans, metrics, and trace export.

One shared way to answer "where did the time go and why" across every
engine, scheduler, and baseline:

* :class:`Tracer` — nestable spans on the virtual and host clocks with
  pluggable sinks (:class:`InMemorySink`, :class:`JsonlSink`,
  :class:`ChromeTraceSink` for ``chrome://tracing`` / Perfetto);
* :class:`MetricsRegistry` — counters, gauges, histograms engines
  publish (stolen edges per pair, MILP solve time, hub-cache hit
  rates, online cost-model RMSRE, ...);
* :func:`result_to_spans` — the offline bridge from a finished
  :class:`~repro.runtime.metrics.RunResult` to the same span stream a
  live tracer emits;
* :class:`Ledger` — the per-decision explainability record the GUM
  arbitrator keeps (prediction audit, drift detection, error
  attribution; ``repro explain`` renders it).

Everything defaults to :data:`NULL_TRACER` / :data:`NULL_METRICS`,
which discard all records, so uninstrumented runs pay nothing.
"""

from repro.obs.tracer import (
    InMemorySink,
    JsonlSink,
    NULL_TRACER,
    NullTracer,
    Sink,
    Span,
    SpanRecord,
    Tracer,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    Timeseries,
)
from repro.obs.chrome import (
    ChromeTraceSink,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.export import (
    emit_iteration,
    iteration_spans,
    result_to_spans,
)
from repro.obs.analysis import (
    CriticalPathReport,
    ReplayReport,
    SpanDag,
    WhatIf,
    analyze,
    build_dag,
    replay,
)
from repro.obs.live import (
    StreamingSink,
    read_stream_events,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    Ledger,
    LedgerError,
    explain_lines,
    reconstruct_rmsre,
)
from repro.obs.prom import prom_text, write_prom
from repro.obs.slo import (
    SloPolicy,
    SloReport,
    evaluate,
    load_policy,
    slo_indicators,
)

__all__ = [
    "SpanRecord",
    "Span",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "ChromeTraceSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "iteration_spans",
    "result_to_spans",
    "emit_iteration",
    "SpanDag",
    "CriticalPathReport",
    "ReplayReport",
    "WhatIf",
    "analyze",
    "build_dag",
    "replay",
    "StreamingSink",
    "read_stream_events",
    "LEDGER_SCHEMA",
    "Ledger",
    "LedgerError",
    "explain_lines",
    "reconstruct_rmsre",
    "prom_text",
    "write_prom",
    "SloPolicy",
    "SloReport",
    "evaluate",
    "load_policy",
    "slo_indicators",
]
