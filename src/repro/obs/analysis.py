"""Trace analytics: span DAG, critical path, attribution, what-if.

The paper's whole argument is an *attribution* argument — which GPU
straggles each superstep (Figures 1/8), how much the coordinator's
FSteal/OSteal decisions cost (Table IV), where the Figure 6 buckets
go. This module answers those questions offline, from a finished
:class:`~repro.runtime.metrics.RunResult` or an archived trace, in the
style of dPRO-like trace replayers for training stacks:

* :func:`build_dag` reconstructs the run's dependency DAG — per-GPU
  ``busy`` spans fan into each superstep's BSP ``barrier``, followed by
  a ``coordinator`` tail (message transfer, serialization, sync, and
  decision overhead) that gates the next superstep;
* :func:`analyze` computes the virtual-time **critical path** through
  that DAG and attributes end-to-end time per iteration to
  ``{compute, communication, stall, coordinator}`` buckets that sum to
  ``result.total_ms`` exactly, naming the **straggler GPU** of every
  superstep;
* :func:`replay` re-simulates the DAG under a :class:`WhatIf` scenario
  (scale GPU *i*'s compute by *x*, zero the decision overhead, drop
  FSteal's rebalancing) with scaled durations. A no-op scenario
  reproduces the original end-to-end time exactly — the invariant the
  test suite pins.

All three accept a ``RunResult``, a ``(header, records)`` pair from
:func:`repro.runtime.trace.load_trace`, or a bare list of iteration
records, so archived runs in the registry analyze identically to live
ones. Durations are milliseconds throughout, matching ``total_ms``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.runtime.metrics import RunResult
from repro.runtime.trace import trace_records

__all__ = [
    "DagNode",
    "SpanDag",
    "IterationCost",
    "CriticalPathReport",
    "WhatIf",
    "ReplayReport",
    "build_dag",
    "analyze",
    "replay",
    "format_report",
    "format_replay",
]

#: Aggregate attribution bucket names, in reporting order.
ATTRIBUTION_BUCKETS = ("compute", "communication", "stall", "coordinator")

AnalysisSource = Union[
    RunResult,
    Tuple[Dict, List[Dict]],
    Sequence[Dict],
]


# ----------------------------------------------------------------------
# Input normalization
# ----------------------------------------------------------------------
def _normalize(source: AnalysisSource) -> Tuple[Dict, List[Dict]]:
    """``(header, iteration_records)`` from any accepted source."""
    if isinstance(source, RunResult):
        header = {
            "engine": source.engine,
            "algorithm": source.algorithm,
            "graph": source.graph_name,
            "num_gpus": source.num_gpus,
            "total_ms": source.total_ms,
        }
        return header, trace_records(source)
    if isinstance(source, tuple) and len(source) == 2:
        header, records = source
        return dict(header), list(records)
    if isinstance(source, Sequence):
        return {}, list(source)
    raise TraceFormatError(
        f"cannot analyze {type(source).__name__}: expected a RunResult, "
        "a (header, records) pair from load_trace, or a record list"
    )


def _record_field(record: Dict, key: str, iteration: int):
    try:
        return record[key]
    except (KeyError, TypeError):
        raise TraceFormatError(
            f"iteration record {iteration} is missing {key!r}; "
            "not a repro trace?"
        ) from None


# ----------------------------------------------------------------------
# Per-iteration costs
# ----------------------------------------------------------------------
@dataclass
class IterationCost:
    """Everything the analysis derives from one superstep record.

    ``attribution_ms`` splits the superstep's wall time into the four
    buckets of :data:`ATTRIBUTION_BUCKETS`; the split is exact — the
    buckets sum to ``wall_ms`` by construction:

    * ``compute`` — mean per-edge compute across the active group,
    * ``communication`` — remote edge access, steal migration, and the
      post-barrier message transfer,
    * ``stall`` — load-imbalance wait (critical-path busy minus the
      group's mean busy), the quantity FSteal exists to shrink,
    * ``coordinator`` — serialization, barrier sync, and the decision
      overhead the arbitrator charges every superstep (Table IV).
    """

    iteration: int
    wall_ms: float
    active: List[int]
    busy_ms: np.ndarray
    stall_ms: np.ndarray
    critical_ms: float
    straggler: Optional[int]
    mean_busy_ms: float
    breakdown_ms: Dict[str, float]
    attribution_ms: Dict[str, float]
    fsteal: bool = False
    stolen_edges: int = 0
    frontier_edges: int = 0
    group_size: Optional[int] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "iteration": self.iteration,
            "wall_ms": float(self.wall_ms),
            "straggler": self.straggler,
            "critical_ms": float(self.critical_ms),
            "mean_busy_ms": float(self.mean_busy_ms),
            "attribution_ms": {
                key: float(value)
                for key, value in self.attribution_ms.items()
            },
            "fsteal": bool(self.fsteal),
            "stolen_edges": int(self.stolen_edges),
        }


def _iteration_cost(record: Dict, position: int) -> IterationCost:
    iteration = int(record.get("iteration", position))
    busy = np.asarray(
        _record_field(record, "busy_ms", iteration), dtype=float
    )
    stall = np.asarray(record.get("stall_ms", np.zeros_like(busy)),
                       dtype=float)
    if stall.shape != busy.shape:
        raise TraceFormatError(
            f"iteration record {iteration}: busy_ms has "
            f"{busy.size} workers but stall_ms has {stall.size}"
        )
    wall = float(_record_field(record, "wall_ms", iteration))
    active = [int(a) for a in record.get("active_workers",
                                         range(busy.size))]
    if any(not 0 <= a < busy.size for a in active):
        raise TraceFormatError(
            f"iteration record {iteration}: active worker out of "
            f"range for {busy.size} GPUs: {active}"
        )
    if active:
        active_arr = np.asarray(active, dtype=np.int64)
        critical = float(busy[active_arr].max())
        straggler = int(active_arr[int(np.argmax(busy[active_arr]))])
        mean_busy = float(busy[active_arr].mean())
    else:
        critical, straggler, mean_busy = 0.0, None, 0.0

    breakdown = dict(record.get("breakdown_ms") or {})
    if breakdown:
        compute = float(breakdown.get("compute", 0.0))
        communication = float(breakdown.get("communication", 0.0))
        coordinator = (
            float(breakdown.get("serialization", 0.0))
            + float(breakdown.get("sync", 0.0))
            + float(breakdown.get("overhead", 0.0))
        )
        # The engine folds barrier wait into its communication bucket
        # (mean stall + remote access + transfer). Pull the wait back
        # out via the busy spans: stall = critical - mean busy. Clamped
        # so the four buckets always sum to the wall time exactly.
        stall_attr = min(max(critical - mean_busy, 0.0), communication)
        attribution = {
            "compute": compute,
            "communication": communication - stall_attr,
            "stall": stall_attr,
            "coordinator": coordinator,
        }
    else:
        # foreign trace without a bucket breakdown: coarse split into
        # on-critical-path busy and everything after the barrier
        attribution = {
            "compute": critical,
            "communication": 0.0,
            "stall": 0.0,
            "coordinator": wall - critical,
        }
    return IterationCost(
        iteration=iteration,
        wall_ms=wall,
        active=active,
        busy_ms=busy,
        stall_ms=stall,
        critical_ms=critical,
        straggler=straggler,
        mean_busy_ms=mean_busy,
        breakdown_ms=breakdown,
        attribution_ms=attribution,
        fsteal=bool(record.get("fsteal", False)),
        stolen_edges=int(record.get("stolen_edges", 0) or 0),
        frontier_edges=int(record.get("frontier_edges", 0) or 0),
        group_size=record.get("group_size"),
    )


def _costs(source: AnalysisSource) -> Tuple[Dict, List[IterationCost]]:
    header, records = _normalize(source)
    return header, [
        _iteration_cost(record, position)
        for position, record in enumerate(records)
    ]


# ----------------------------------------------------------------------
# The span DAG
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DagNode:
    """One node of the reconstructed dependency DAG."""

    id: str
    kind: str  # "source" | "busy" | "barrier" | "coordinator" | "sink"
    duration_ms: float
    iteration: int = -1
    gpu: Optional[int] = None


class SpanDag:
    """Dependency DAG of a run: nodes with durations, directed edges.

    Construction order is topological (supersteps are appended in
    execution order), which :meth:`longest_path` relies on. Barrier
    wait (stall) is *derived* — ``barrier start - busy end`` — rather
    than a node, so the longest path is the true critical path and
    never rides a wait edge.
    """

    def __init__(self, meta: Optional[Dict] = None) -> None:
        self.meta: Dict = dict(meta or {})
        self.nodes: Dict[str, DagNode] = {}
        self._successors: Dict[str, List[str]] = {}
        self._predecessors: Dict[str, List[str]] = {}

    def add_node(self, node: DagNode) -> DagNode:
        """Register a node (ids must be unique)."""
        if node.id in self.nodes:
            raise TraceFormatError(f"duplicate DAG node {node.id!r}")
        self.nodes[node.id] = node
        self._successors[node.id] = []
        self._predecessors[node.id] = []
        return node

    def add_edge(self, src: str, dst: str) -> None:
        """Add a dependency edge ``src -> dst``."""
        for node_id in (src, dst):
            if node_id not in self.nodes:
                raise TraceFormatError(f"unknown DAG node {node_id!r}")
        self._successors[src].append(dst)
        self._predecessors[dst].append(src)

    def successors(self, node_id: str) -> List[str]:
        """Outgoing edges of one node."""
        return list(self._successors[node_id])

    def predecessors(self, node_id: str) -> List[str]:
        """Incoming edges of one node."""
        return list(self._predecessors[node_id])

    def __len__(self) -> int:
        return len(self.nodes)

    def longest_path(self) -> Tuple[float, List[str]]:
        """``(length_ms, node_ids)`` of the duration-weighted longest
        path — the run's virtual-time critical path."""
        if not self.nodes:
            return 0.0, []
        finish: Dict[str, float] = {}
        best_pred: Dict[str, Optional[str]] = {}
        for node_id, node in self.nodes.items():  # insertion = topo
            start = 0.0
            pred_choice: Optional[str] = None
            for pred in self._predecessors[node_id]:
                # first predecessor always wins the tie so zero-duration
                # ancestors (source, barriers) stay on the reported path
                if pred_choice is None or finish[pred] > start:
                    start = finish[pred]
                    pred_choice = pred
            finish[node_id] = start + node.duration_ms
            best_pred[node_id] = pred_choice
        # ties resolve to the last-inserted node so the zero-duration
        # sink terminates the path rather than its final coordinator
        end = max(reversed(list(finish)),
                  key=lambda node_id: finish[node_id])
        path = [end]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return finish[end], path


def build_dag(source: AnalysisSource) -> SpanDag:
    """Reconstruct the dependency DAG of a run.

    Shape per superstep *k* (the BSP structure the engine executes)::

        coordinator(k-1) --> busy(k, gpu j) --> barrier(k)
                                                   |
                             busy(k, straggler) ---+--> coordinator(k)

    ``coordinator(k)`` carries the post-barrier tail — message
    transfer, serialization, sync, and decision overhead — i.e.
    ``wall(k) - max_j busy(k, j)``.
    """
    header, costs = _costs(source)
    dag = SpanDag(meta=header)
    previous = dag.add_node(DagNode(id="source", kind="source",
                                    duration_ms=0.0))
    for cost in costs:
        k = cost.iteration
        barrier = DagNode(id=f"barrier:{k}", kind="barrier",
                          duration_ms=0.0, iteration=k)
        busy_nodes = []
        for gpu in cost.active:
            busy_nodes.append(dag.add_node(DagNode(
                id=f"busy:{k}:gpu{gpu}", kind="busy",
                duration_ms=float(cost.busy_ms[gpu]),
                iteration=k, gpu=gpu,
            )))
        dag.add_node(barrier)
        tail = max(cost.wall_ms - cost.critical_ms, 0.0)
        coordinator = dag.add_node(DagNode(
            id=f"coordinator:{k}", kind="coordinator",
            duration_ms=tail, iteration=k,
        ))
        if busy_nodes:
            for node in busy_nodes:
                dag.add_edge(previous.id, node.id)
                dag.add_edge(node.id, barrier.id)
        else:
            dag.add_edge(previous.id, barrier.id)
        dag.add_edge(barrier.id, coordinator.id)
        previous = coordinator
    sink = dag.add_node(DagNode(id="sink", kind="sink", duration_ms=0.0))
    dag.add_edge(previous.id, sink.id)
    return dag


# ----------------------------------------------------------------------
# Critical-path attribution
# ----------------------------------------------------------------------
@dataclass
class CriticalPathReport:
    """Where a run's end-to-end time went, and who it waited on."""

    total_ms: float
    num_gpus: int
    iterations: List[IterationCost]
    buckets_ms: Dict[str, float]
    per_gpu_busy_ms: List[float]
    per_gpu_stall_ms: List[float]
    per_gpu_critical_ms: List[float]
    straggler_counts: List[int]
    critical_path_ms: float
    meta: Dict = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        """Supersteps analyzed."""
        return len(self.iterations)

    def straggler_series(self) -> List[Optional[int]]:
        """Straggler GPU per superstep, in order."""
        return [cost.straggler for cost in self.iterations]

    def dominant_straggler(self) -> Optional[int]:
        """The GPU that straggled the most supersteps (None if empty)."""
        if not any(self.straggler_counts):
            return None
        return int(np.argmax(self.straggler_counts))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (per-iteration detail included)."""
        return {
            "total_ms": float(self.total_ms),
            "critical_path_ms": float(self.critical_path_ms),
            "num_gpus": self.num_gpus,
            "num_iterations": self.num_iterations,
            "buckets_ms": {
                key: float(value)
                for key, value in self.buckets_ms.items()
            },
            "per_gpu_busy_ms": [float(v) for v in self.per_gpu_busy_ms],
            "per_gpu_stall_ms": [float(v) for v in self.per_gpu_stall_ms],
            "per_gpu_critical_ms": [
                float(v) for v in self.per_gpu_critical_ms
            ],
            "straggler_counts": [int(c) for c in self.straggler_counts],
            "dominant_straggler": self.dominant_straggler(),
            "iterations": [cost.as_dict() for cost in self.iterations],
        }


def analyze(source: AnalysisSource) -> CriticalPathReport:
    """Critical-path attribution of a run (see module docstring)."""
    header, costs = _costs(source)
    num_gpus = int(header.get("num_gpus",
                              costs[0].busy_ms.size if costs else 0))
    busy = np.zeros(num_gpus)
    stall = np.zeros(num_gpus)
    on_critical = np.zeros(num_gpus)
    straggled = np.zeros(num_gpus, dtype=np.int64)
    buckets = {key: 0.0 for key in ATTRIBUTION_BUCKETS}
    total = 0.0
    for cost in costs:
        total += cost.wall_ms
        for key in ATTRIBUTION_BUCKETS:
            buckets[key] += cost.attribution_ms[key]
        if cost.busy_ms.size == num_gpus:
            busy += cost.busy_ms
            stall += cost.stall_ms
        if cost.straggler is not None:
            on_critical[cost.straggler] += cost.critical_ms
            straggled[cost.straggler] += 1
    # the DAG's longest path is sum(critical + tail) = sum(wall);
    # computed through the DAG so the invariant holds by construction
    critical_path_ms, __ = build_dag(source).longest_path()
    return CriticalPathReport(
        total_ms=total,
        num_gpus=num_gpus,
        iterations=costs,
        buckets_ms=buckets,
        per_gpu_busy_ms=busy.tolist(),
        per_gpu_stall_ms=stall.tolist(),
        per_gpu_critical_ms=on_critical.tolist(),
        straggler_counts=straggled.tolist(),
        critical_path_ms=critical_path_ms,
        meta=header,
    )


# ----------------------------------------------------------------------
# What-if replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WhatIf:
    """A hypothetical to re-simulate the DAG under.

    Attributes
    ----------
    gpu_compute_scale:
        Per-GPU compute scale factors, e.g. ``{3: 0.5}`` asks "what if
        GPU 3 computed twice as fast". Only the compute share of the
        GPU's busy time scales; its communication share is preserved
        (the share is the superstep's mean compute fraction, the finest
        split the trace carries).
    compute_scale:
        Like ``gpu_compute_scale`` but applied to every GPU.
    zero_decision_overhead:
        Zero the coordinator's per-superstep decision overhead — the
        "what if the solver were free" Table IV hypothetical.
    drop_fsteal:
        Undo FSteal's rebalancing: in supersteps where FSteal applied,
        the stolen edges are charged back to the superstep's straggler
        at the group's mean cost per edge — a first-order estimate of
        the un-balanced critical path.
    """

    gpu_compute_scale: Mapping[int, float] = field(default_factory=dict)
    compute_scale: float = 1.0
    zero_decision_overhead: bool = False
    drop_fsteal: bool = False

    def is_noop(self) -> bool:
        """True when the scenario changes nothing."""
        return (
            not self.zero_decision_overhead
            and not self.drop_fsteal
            and self.compute_scale == 1.0
            and all(x == 1.0 for x in self.gpu_compute_scale.values())
        )

    def describe(self) -> str:
        """Human-readable scenario label."""
        parts = []
        for gpu, x in sorted(self.gpu_compute_scale.items()):
            parts.append(f"gpu{gpu} compute x{x:g}")
        if self.compute_scale != 1.0:
            parts.append(f"all compute x{self.compute_scale:g}")
        if self.zero_decision_overhead:
            parts.append("decision overhead = 0")
        if self.drop_fsteal:
            parts.append("FSteal dropped")
        return ", ".join(parts) if parts else "no-op"


@dataclass
class ReplayReport:
    """Outcome of re-simulating a run under a :class:`WhatIf`."""

    scenario: WhatIf
    baseline_ms: float
    total_ms: float
    wall_ms_series: List[float]

    @property
    def delta_ms(self) -> float:
        """Predicted change in end-to-end time."""
        return self.total_ms - self.baseline_ms

    @property
    def speedup(self) -> float:
        """Baseline over replayed time (>1 means the scenario helps)."""
        return self.baseline_ms / self.total_ms if self.total_ms else 1.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "scenario": self.scenario.describe(),
            "baseline_ms": float(self.baseline_ms),
            "total_ms": float(self.total_ms),
            "delta_ms": float(self.delta_ms),
            "speedup": float(self.speedup),
            "wall_ms_series": [float(w) for w in self.wall_ms_series],
        }


def replay(source: AnalysisSource,
           whatif: Optional[WhatIf] = None) -> ReplayReport:
    """Re-simulate the run's DAG with scaled durations.

    Per superstep the replay recomputes the barrier time (max scaled
    busy over the active group) and shifts the recorded wall time by
    the barrier delta; the coordinator tail rides along unchanged
    unless the scenario zeroes the decision overhead. A no-op scenario
    therefore returns the original per-superstep walls bit-exactly.
    """
    whatif = whatif or WhatIf()
    __, costs = _costs(source)
    walls: List[float] = []
    baseline = 0.0
    for cost in costs:
        baseline += cost.wall_ms
        busy = cost.busy_ms
        scaled = False
        scales = dict(whatif.gpu_compute_scale)
        if whatif.compute_scale != 1.0:
            for gpu in cost.active:
                scales[gpu] = scales.get(gpu, 1.0) * whatif.compute_scale
        scales = {gpu: x for gpu, x in scales.items() if x != 1.0}
        if scales or (whatif.drop_fsteal and cost.fsteal
                      and cost.stolen_edges):
            busy = busy.copy()
            scaled = True
        if scales and cost.mean_busy_ms > 0:
            # only the compute share of busy scales; the trace carries
            # the group's mean compute fraction, so use that
            compute = cost.breakdown_ms.get("compute", cost.mean_busy_ms)
            fraction = min(max(compute / cost.mean_busy_ms, 0.0), 1.0)
            for gpu, x in scales.items():
                if 0 <= gpu < busy.size:
                    busy[gpu] *= 1.0 + (x - 1.0) * fraction
        if whatif.drop_fsteal and cost.fsteal and cost.stolen_edges \
                and cost.frontier_edges > 0 and cost.straggler is not None:
            group_busy = float(busy[cost.active].sum())
            per_edge = group_busy / cost.frontier_edges
            busy[cost.straggler] += cost.stolen_edges * per_edge
        if scaled and cost.active:
            new_critical = float(busy[np.asarray(cost.active)].max())
        else:
            new_critical = cost.critical_ms
        wall = cost.wall_ms + (new_critical - cost.critical_ms)
        if whatif.zero_decision_overhead:
            overhead = float(cost.breakdown_ms.get("overhead", 0.0))
            wall = max(wall - overhead, new_critical)
        walls.append(wall)
    return ReplayReport(
        scenario=whatif,
        baseline_ms=baseline,
        total_ms=float(sum(walls)),
        wall_ms_series=walls,
    )


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def format_report(report: CriticalPathReport) -> str:
    """Human-readable attribution summary."""
    total = max(report.total_ms, 1e-12)
    lines = [
        f"critical path: {report.total_ms:.2f} ms over "
        f"{report.num_iterations} supersteps "
        f"({report.num_gpus} GPUs)",
        "attribution:",
    ]
    for key in ATTRIBUTION_BUCKETS:
        value = report.buckets_ms.get(key, 0.0)
        lines.append(
            f"  {key:13s}: {value:10.2f} ms  ({value / total:6.1%})"
        )
    dominant = report.dominant_straggler()
    if dominant is not None:
        lines.append("stragglers (supersteps on the critical path):")
        for gpu in range(report.num_gpus):
            count = report.straggler_counts[gpu]
            if count:
                marker = "  <-- dominant" if gpu == dominant else ""
                lines.append(
                    f"  gpu{gpu}: {count:5d} supersteps, "
                    f"{report.per_gpu_critical_ms[gpu]:10.2f} ms"
                    f"{marker}"
                )
    return "\n".join(lines)


def format_replay(result: ReplayReport) -> str:
    """Human-readable what-if outcome."""
    return (
        f"what-if [{result.scenario.describe()}]: "
        f"{result.baseline_ms:.2f} ms -> {result.total_ms:.2f} ms "
        f"({result.delta_ms:+.2f} ms, {result.speedup:.2f}x)"
    )
