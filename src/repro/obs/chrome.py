"""Chrome ``trace_event`` export (``chrome://tracing`` / Perfetto).

Span records map onto the Trace Event Format's JSON object form:

* complete events (``ph: "X"``) with microsecond ``ts``/``dur``;
* instant events (``ph: "i"``);
* metadata events (``ph: "M"``) naming one "process" per track, so the
  per-GPU rows render exactly like the paper's Figure 1 timeline.

Virtual-clock records keep their own timeline (simulated microseconds
since run start). Host-clock-only records (solver latencies and other
coordinator decisions) are exported under a parallel ``<track> (host)``
process rebased to the trace's first host timestamp — the two clock
domains never share a row, so bars are always internally consistent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.tracer import Sink, SpanRecord

__all__ = ["chrome_trace_events", "write_chrome_trace", "ChromeTraceSink"]

_US = 1e6  # seconds -> trace-event microseconds


def _track_order_key(track: str) -> tuple:
    # coordinator first, then gpu0..gpuN numerically, then the rest
    if track == "coordinator":
        return (0, 0, track)
    if track.startswith("gpu") and track[3:].split(" ")[0].isdigit():
        return (1, int(track[3:].split(" ")[0]), track)
    return (2, 0, track)


def chrome_trace_events(
    records: Iterable[SpanRecord],
    meta: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Convert span records to a ``traceEvents`` list."""
    records = list(records)
    events: List[Dict[str, object]] = []
    tracks: List[str] = []

    host_starts = [r.wall_start for r in records
                   if r.virtual_start is None and r.wall_start is not None]
    host_base = min(host_starts) if host_starts else 0.0

    def track_of(record: SpanRecord) -> str:
        if record.virtual_start is not None:
            return record.track
        return f"{record.track} (host)"

    for record in records:
        track = track_of(record)
        if track not in tracks:
            tracks.append(track)

    pids = {
        track: pid
        for pid, track in enumerate(sorted(tracks, key=_track_order_key))
    }
    for track, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": track},
        })

    for record in records:
        pid = pids[track_of(record)]
        if record.virtual_start is not None:
            ts = record.virtual_start * _US
            dur = (record.virtual_dur or 0.0) * _US
        else:
            ts = ((record.wall_start or 0.0) - host_base) * _US
            dur = (record.wall_dur or 0.0) * _US
        event: Dict[str, object] = {
            "name": record.name,
            "cat": record.cat,
            "pid": pid,
            "tid": 0,
            "ts": ts,
        }
        if record.kind == "instant":
            event["ph"] = "i"
            event["s"] = "p"  # process-scoped marker line
        else:
            event["ph"] = "X"
            event["dur"] = dur
        if record.attrs:
            event["args"] = _jsonable(record.attrs)
        events.append(event)
    return events


def _jsonable(attrs: Dict[str, object]) -> Dict[str, object]:
    """Coerce numpy scalars/arrays so ``json.dump`` never chokes."""
    out: Dict[str, object] = {}
    for key, value in attrs.items():
        if getattr(value, "ndim", None):
            value = value.tolist()  # numpy array
        elif hasattr(value, "item") and not isinstance(value, (list, dict)):
            value = value.item()  # numpy scalar (or 0-d array)
        out[key] = value
    return out


def write_chrome_trace(
    path: Union[str, Path],
    records: Iterable[SpanRecord],
    meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Write records as a Chrome/Perfetto-loadable JSON file."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(records, meta),
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


class ChromeTraceSink(Sink):
    """Buffers records, writes the Chrome JSON on :meth:`close`.

    (The trace-event container is a single JSON object, so it cannot be
    streamed line-by-line the way :class:`~repro.obs.tracer.JsonlSink`
    does.)
    """

    def __init__(self, path: Union[str, Path],
                 meta: Optional[Dict[str, object]] = None) -> None:
        self._path = Path(path)
        self._meta = dict(meta or {})
        self._records: List[SpanRecord] = []
        self._written = False

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._path

    def emit(self, record: SpanRecord) -> None:
        """Consume one completed record."""
        self._records.append(record)

    def close(self) -> None:
        """Write the buffered trace (idempotent)."""
        if self._written:
            return
        write_chrome_trace(self._path, self._records, self._meta)
        self._written = True
