"""Bridging engine records and trace spans — one source of truth.

:func:`iteration_spans` defines, in exactly one place, how a priced
:class:`~repro.runtime.metrics.IterationRecord` becomes timeline spans:
a ``superstep`` span on the coordinator track plus ``busy``/``stall``
spans on each active GPU's track. Engines call it live through
:func:`emit_iteration`; :func:`result_to_spans` replays a finished
:class:`~repro.runtime.metrics.RunResult` through the same function, so
offline reports (``runtime/trace.py``) and interactive traces can never
drift apart.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import COORDINATOR_TRACK, SpanRecord, Tracer
from repro.runtime.metrics import IterationRecord, RunResult

__all__ = [
    "iteration_spans",
    "result_to_spans",
    "emit_iteration",
]


def gpu_track(worker: int) -> str:
    """Track (Chrome process) name of one GPU worker."""
    return f"gpu{worker}"


def iteration_spans(
    record: IterationRecord,
    virtual_start: float,
    engine: str = "",
) -> List[SpanRecord]:
    """Timeline spans for one priced iteration.

    One ``superstep`` span covers the iteration's wall time on the
    coordinator track; each active worker gets a ``busy`` span and — if
    it waited at the barrier — a ``stall`` span directly after it.
    """
    attrs = {
        "iteration": record.iteration,
        "engine": engine,
        "frontier_size": record.frontier_size,
        "frontier_edges": record.frontier_edges,
        "active_workers": list(record.active_workers),
        "fsteal": record.fsteal_applied,
        "group_size": record.osteal_group_size,
        "stolen_edges": record.stolen_edges,
        "breakdown_ms": record.breakdown.scaled_ms(),
    }
    spans = [SpanRecord(
        name="superstep",
        track=COORDINATOR_TRACK,
        cat="superstep",
        virtual_start=virtual_start,
        virtual_dur=record.wall_seconds,
        attrs=attrs,
    )]
    for worker in record.active_workers:
        busy = float(record.busy_seconds[worker])
        stall = float(record.stall_seconds[worker])
        if busy > 0.0:
            spans.append(SpanRecord(
                name="busy",
                track=gpu_track(worker),
                cat="worker",
                virtual_start=virtual_start,
                virtual_dur=busy,
                attrs={"iteration": record.iteration, "gpu": worker},
            ))
        if stall > 0.0:
            spans.append(SpanRecord(
                name="stall",
                track=gpu_track(worker),
                cat="worker",
                virtual_start=virtual_start + busy,
                virtual_dur=stall,
                attrs={"iteration": record.iteration, "gpu": worker},
            ))
    return spans


def _chaos_instant(event: dict, clock: float) -> SpanRecord:
    """Fault marker identical to the live ``chaos.{kind}`` instant."""
    return SpanRecord(
        name=f"chaos.{event.get('kind')}",
        track=COORDINATOR_TRACK,
        kind="instant",
        cat="chaos",
        virtual_start=clock,
        virtual_dur=0.0,
        attrs=dict(event),
    )


def result_to_spans(result: RunResult) -> List[SpanRecord]:
    """Replay a finished run as the spans a live tracer would emit.

    Includes the ``osteal.group_change`` instants between iterations
    whose group size differs (the Figure 9 switching events) and, for
    chaos runs, the ``chaos.{kind}`` fault markers the engine emitted
    live — each placed at the virtual clock *before* its faulted
    iteration, exactly where ``BSPEngine._apply_faults`` put it.
    """
    spans: List[SpanRecord] = []
    clock = 0.0
    prev_group: Optional[int] = None
    chaos_events: List[dict] = list(
        (result.chaos or {}).get("events") or []
    )
    for record in result.iterations:
        remaining = []
        for event in chaos_events:
            if event.get("iteration") == record.iteration:
                spans.append(_chaos_instant(event, clock))
            else:
                remaining.append(event)
        chaos_events = remaining
        spans.extend(iteration_spans(record, clock, engine=result.engine))
        group = record.osteal_group_size
        if group is not None and prev_group is not None \
                and group != prev_group:
            spans.append(SpanRecord(
                name="osteal.group_change",
                track=COORDINATOR_TRACK,
                kind="instant",
                cat="osteal",
                virtual_start=clock,
                virtual_dur=0.0,
                attrs={"from": prev_group, "to": group,
                       "iteration": record.iteration},
            ))
        if group is not None:
            prev_group = group
        clock += record.wall_seconds
    # faults scheduled past the last executed iteration never fired
    # live, so they are (correctly) absent here too
    return spans


class _IterationInstruments:
    """Resolved-once instrument handles for :func:`emit_iteration`.

    Name lookups and label-key construction are cheap individually but
    the emitter performs ~10 of them per superstep, which adds up at
    the obs budget's scale. One of these is cached per registry; the
    conditional instruments (steal/fsteal/group) stay lazily created so
    a run that never steals registers exactly the instruments it always
    did.
    """

    __slots__ = (
        "registry", "iterations", "frontier_edges", "buckets",
        "bucket_keys", "wall_hist", "wall_ms", "edges_series",
        "active_series", "steal_total", "fsteal_iters", "group_gauge",
        "steal_series",
    )

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.registry = metrics
        self.iterations = metrics.counter("engine.iterations")
        self.frontier_edges = metrics.counter("engine.frontier_edges")
        self.buckets = metrics.counter(
            "engine.bucket_seconds",
            "virtual seconds per Figure-6 cost bucket",
        )
        # (label key, TimeBreakdown attribute) pairs — the as_dict()
        # buckets minus the derived "total", with the label tuples
        # prebuilt so the per-superstep loop is pure dict updates
        self.bucket_keys = tuple(
            ((("bucket", name),), name)
            for name in ("compute", "communication", "serialization",
                         "sync", "overhead")
        )
        self.wall_hist = metrics.histogram("engine.iteration_wall_seconds")
        self.wall_ms = metrics.timeseries(
            "engine.wall_ms_series", "per-superstep wall time (ms)"
        )
        self.edges_series = metrics.timeseries(
            "engine.frontier_edges_series",
            "per-superstep frontier out-edges",
        )
        self.active_series = metrics.timeseries(
            "engine.active_workers_series",
            "per-superstep communication-group size",
        )
        self.steal_total = None
        self.fsteal_iters = None
        self.group_gauge = None
        self.steal_series = None


def _iteration_instruments(metrics: MetricsRegistry) -> _IterationInstruments:
    handles = getattr(metrics, "_iteration_instruments", None)
    if handles is None or handles.registry is not metrics:
        handles = _IterationInstruments(metrics)
        metrics._iteration_instruments = handles
    return handles


def emit_iteration(
    tracer: Tracer,
    metrics: MetricsRegistry,
    record: IterationRecord,
    virtual_start: float,
    prev_group: Optional[int],
    engine: str = "",
) -> float:
    """Publish one iteration to a live tracer + metrics registry.

    Returns the virtual clock *after* the iteration. Engines call this
    once per superstep; with both observers disabled it is a pair of
    attribute reads.
    """
    if tracer.enabled:
        for span in iteration_spans(record, virtual_start, engine=engine):
            tracer.emit(span)
        group = record.osteal_group_size
        if group is not None and prev_group is not None \
                and group != prev_group:
            tracer.instant(
                "osteal.group_change",
                virtual_ts=virtual_start,
                cat="osteal",
                **{"from": prev_group, "to": group,
                   "iteration": record.iteration},
            )
    if metrics.enabled:
        handles = _iteration_instruments(metrics)
        handles.iterations.inc()
        handles.frontier_edges.inc(record.frontier_edges)
        if record.stolen_edges:
            if handles.steal_total is None:
                handles.steal_total = metrics.counter("steal.edges_total")
            handles.steal_total.inc(record.stolen_edges)
        if record.fsteal_applied:
            if handles.fsteal_iters is None:
                handles.fsteal_iters = metrics.counter("fsteal.iterations")
            handles.fsteal_iters.inc()
        if record.osteal_group_size is not None:
            if handles.group_gauge is None:
                handles.group_gauge = metrics.gauge("osteal.group_size")
            handles.group_gauge.set(record.osteal_group_size)
        buckets = handles.buckets
        breakdown = record.breakdown
        for key, bucket in handles.bucket_keys:
            buckets.inc_key(key, getattr(breakdown, bucket))
        handles.wall_hist.observe(record.wall_seconds)
        # per-iteration timeseries: the run registry archives these so
        # two runs can be compared superstep-by-superstep, not just on
        # end-to-end aggregates
        iteration = record.iteration
        handles.wall_ms.append(record.wall_seconds * 1e3, index=iteration)
        handles.edges_series.append(record.frontier_edges, index=iteration)
        handles.active_series.append(record.num_active, index=iteration)
        if record.stolen_edges:
            if handles.steal_series is None:
                handles.steal_series = metrics.timeseries(
                    "steal.edges_series", "per-superstep stolen edges"
                )
            handles.steal_series.append(record.stolen_edges,
                                        index=iteration)
    return virtual_start + record.wall_seconds
