"""Bridging engine records and trace spans — one source of truth.

:func:`iteration_spans` defines, in exactly one place, how a priced
:class:`~repro.runtime.metrics.IterationRecord` becomes timeline spans:
a ``superstep`` span on the coordinator track plus ``busy``/``stall``
spans on each active GPU's track. Engines call it live through
:func:`emit_iteration`; :func:`result_to_spans` replays a finished
:class:`~repro.runtime.metrics.RunResult` through the same function, so
offline reports (``runtime/trace.py``) and interactive traces can never
drift apart.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import COORDINATOR_TRACK, SpanRecord, Tracer
from repro.runtime.metrics import IterationRecord, RunResult

__all__ = [
    "iteration_spans",
    "result_to_spans",
    "emit_iteration",
]


def gpu_track(worker: int) -> str:
    """Track (Chrome process) name of one GPU worker."""
    return f"gpu{worker}"


def iteration_spans(
    record: IterationRecord,
    virtual_start: float,
    engine: str = "",
) -> List[SpanRecord]:
    """Timeline spans for one priced iteration.

    One ``superstep`` span covers the iteration's wall time on the
    coordinator track; each active worker gets a ``busy`` span and — if
    it waited at the barrier — a ``stall`` span directly after it.
    """
    attrs = {
        "iteration": record.iteration,
        "engine": engine,
        "frontier_size": record.frontier_size,
        "frontier_edges": record.frontier_edges,
        "active_workers": list(record.active_workers),
        "fsteal": record.fsteal_applied,
        "group_size": record.osteal_group_size,
        "stolen_edges": record.stolen_edges,
        "breakdown_ms": record.breakdown.scaled_ms(),
    }
    spans = [SpanRecord(
        name="superstep",
        track=COORDINATOR_TRACK,
        cat="superstep",
        virtual_start=virtual_start,
        virtual_dur=record.wall_seconds,
        attrs=attrs,
    )]
    for worker in record.active_workers:
        busy = float(record.busy_seconds[worker])
        stall = float(record.stall_seconds[worker])
        if busy > 0.0:
            spans.append(SpanRecord(
                name="busy",
                track=gpu_track(worker),
                cat="worker",
                virtual_start=virtual_start,
                virtual_dur=busy,
                attrs={"iteration": record.iteration, "gpu": worker},
            ))
        if stall > 0.0:
            spans.append(SpanRecord(
                name="stall",
                track=gpu_track(worker),
                cat="worker",
                virtual_start=virtual_start + busy,
                virtual_dur=stall,
                attrs={"iteration": record.iteration, "gpu": worker},
            ))
    return spans


def _chaos_instant(event: dict, clock: float) -> SpanRecord:
    """Fault marker identical to the live ``chaos.{kind}`` instant."""
    return SpanRecord(
        name=f"chaos.{event.get('kind')}",
        track=COORDINATOR_TRACK,
        kind="instant",
        cat="chaos",
        virtual_start=clock,
        virtual_dur=0.0,
        attrs=dict(event),
    )


def result_to_spans(result: RunResult) -> List[SpanRecord]:
    """Replay a finished run as the spans a live tracer would emit.

    Includes the ``osteal.group_change`` instants between iterations
    whose group size differs (the Figure 9 switching events) and, for
    chaos runs, the ``chaos.{kind}`` fault markers the engine emitted
    live — each placed at the virtual clock *before* its faulted
    iteration, exactly where ``BSPEngine._apply_faults`` put it.
    """
    spans: List[SpanRecord] = []
    clock = 0.0
    prev_group: Optional[int] = None
    chaos_events: List[dict] = list(
        (result.chaos or {}).get("events") or []
    )
    for record in result.iterations:
        remaining = []
        for event in chaos_events:
            if event.get("iteration") == record.iteration:
                spans.append(_chaos_instant(event, clock))
            else:
                remaining.append(event)
        chaos_events = remaining
        spans.extend(iteration_spans(record, clock, engine=result.engine))
        group = record.osteal_group_size
        if group is not None and prev_group is not None \
                and group != prev_group:
            spans.append(SpanRecord(
                name="osteal.group_change",
                track=COORDINATOR_TRACK,
                kind="instant",
                cat="osteal",
                virtual_start=clock,
                virtual_dur=0.0,
                attrs={"from": prev_group, "to": group,
                       "iteration": record.iteration},
            ))
        if group is not None:
            prev_group = group
        clock += record.wall_seconds
    # faults scheduled past the last executed iteration never fired
    # live, so they are (correctly) absent here too
    return spans


def emit_iteration(
    tracer: Tracer,
    metrics: MetricsRegistry,
    record: IterationRecord,
    virtual_start: float,
    prev_group: Optional[int],
    engine: str = "",
) -> float:
    """Publish one iteration to a live tracer + metrics registry.

    Returns the virtual clock *after* the iteration. Engines call this
    once per superstep; with both observers disabled it is a pair of
    attribute reads.
    """
    if tracer.enabled:
        for span in iteration_spans(record, virtual_start, engine=engine):
            tracer.emit(span)
        group = record.osteal_group_size
        if group is not None and prev_group is not None \
                and group != prev_group:
            tracer.instant(
                "osteal.group_change",
                virtual_ts=virtual_start,
                cat="osteal",
                **{"from": prev_group, "to": group,
                   "iteration": record.iteration},
            )
    if metrics.enabled:
        metrics.counter("engine.iterations").inc()
        metrics.counter("engine.frontier_edges").inc(record.frontier_edges)
        if record.stolen_edges:
            metrics.counter("steal.edges_total").inc(record.stolen_edges)
        if record.fsteal_applied:
            metrics.counter("fsteal.iterations").inc()
        if record.osteal_group_size is not None:
            metrics.gauge("osteal.group_size").set(record.osteal_group_size)
        buckets = metrics.counter(
            "engine.bucket_seconds",
            "virtual seconds per Figure-6 cost bucket",
        )
        for bucket, seconds in record.breakdown.as_dict().items():
            if bucket != "total":
                buckets.inc(seconds, bucket=bucket)
        metrics.histogram(
            "engine.iteration_wall_seconds"
        ).observe(record.wall_seconds)
        # per-iteration timeseries: the run registry archives these so
        # two runs can be compared superstep-by-superstep, not just on
        # end-to-end aggregates
        iteration = record.iteration
        metrics.timeseries(
            "engine.wall_ms_series", "per-superstep wall time (ms)"
        ).append(record.wall_seconds * 1e3, index=iteration)
        metrics.timeseries(
            "engine.frontier_edges_series",
            "per-superstep frontier out-edges",
        ).append(record.frontier_edges, index=iteration)
        metrics.timeseries(
            "engine.active_workers_series",
            "per-superstep communication-group size",
        ).append(record.num_active, index=iteration)
        if record.stolen_edges:
            metrics.timeseries(
                "steal.edges_series", "per-superstep stolen edges"
            ).append(record.stolen_edges, index=iteration)
    return virtual_start + record.wall_seconds
