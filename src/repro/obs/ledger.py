"""Per-decision ledger: steal explainability and prediction audit.

The paper's Exp-7 links cost-model accuracy to steal-policy quality,
but an aggregate RMSRE cannot say *which* decision the model got wrong.
This module records one entry per arbitrator decision — the quantized
feature vector it saw, the candidate set it weighed, the plan it chose,
the plan-cache status (``live``/``warm``/``cached``), the predicted
virtual cost, and the measured cost back-filled when the iteration
completes — plus derived analytics: per-iteration and online RMSRE
timeseries, EWMA drift detection on the prediction error, and
per-GPU/per-fragment error attribution.

Everything recorded is a virtual-clock or model quantity, so two runs
of the same workload produce byte-identical ledgers (the property the
committed golden ledger in ``benchmarks/reference`` gates). Recording
never touches the arbitrator's modeled overhead or its decisions: the
ledger observes the physics, it does not perturb them.

The stored schema is versioned (``repro-ledger/1``) and JSON-stable.
:meth:`Ledger.export_samples` emits the ``(features -> measured cost)``
training pairs a ``costmodel fit --from-runs`` harvester needs, and
:func:`reconstruct_rmsre` replays the arbitrator's online RMSRE
bit-identically from the entries alone — ``repro explain`` checks that
equality on every render.
"""

from __future__ import annotations

import math
from typing import (
    Dict, List, NamedTuple, Optional, Sequence, Tuple, Union,
)

import numpy as np

from repro.core.decision_cache import bucketize
from repro.errors import ReproError
from repro.obs.metrics import quantile

__all__ = [
    "LEDGER_SCHEMA",
    "DRIFT_ALPHA",
    "DRIFT_WARMUP",
    "Ledger",
    "LedgerError",
    "LedgerSamples",
    "explain_lines",
    "reconstruct_rmsre",
]

LEDGER_SCHEMA = "repro-ledger/1"

#: EWMA smoothing factor of the drift detector (matches the SLO
#: engine's series rules).
DRIFT_ALPHA = 0.3

#: Iterations before the drift z-score starts reporting (the EWMA
#: mean/variance are meaningless on the first few samples).
DRIFT_WARMUP = 5

#: Zero-variance mismatch clamp — kept finite so stored ledgers stay
#: strict JSON (no ``Infinity`` literals in committed goldens).
_DRIFT_CLAMP = 1e9


class LedgerError(ReproError):
    """Malformed, missing, or unusable decision-ledger payload."""


class LedgerSamples(NamedTuple):
    """Positive-actual audit samples, aligned row for row.

    ``features`` (N, 6) and ``costs`` (N,) are the training pairs;
    ``iterations`` and ``gpus`` carry each sample's provenance — the
    superstep it was recorded in and the worker that owned the
    fragment — in the exact order the arbitrator fed its online RMSRE.
    """

    features: np.ndarray
    costs: np.ndarray
    iterations: np.ndarray
    gpus: np.ndarray


def reconstruct_rmsre(entries: Sequence[dict]) -> Optional[float]:
    """Replay the arbitrator's online RMSRE from ledger entries alone.

    Accumulates ``((predicted - actual) / actual) ** 2`` over every
    positive-actual sample in recorded order — the exact update
    :class:`repro.core.costmodel.OnlineRMSRE` performs — so the result
    is bit-identical to the arbitrator's final value. ``None`` when no
    sample was counted.
    """
    sum_sq = 0.0
    count = 0
    for entry in entries:
        for sample in entry.get("samples", ()):
            actual = sample["actual"]
            if actual <= 0:
                continue
            sum_sq += ((sample["predicted"] - actual) / actual) ** 2
            count += 1
    if count == 0:
        return None
    return float(np.sqrt(sum_sq / count))


class _RawEntry:
    """One iteration's recording, exactly as the arbitrator handed it.

    Recording runs inside the engine's measured wall time, so the hot
    path stores references and tuples only; :meth:`Ledger._materialize`
    turns a raw entry into the JSON-stable schema dict the first time
    anything reads :attr:`Ledger.entries` — after the run, off the
    clock. Derived *sequential* state (the online RMSRE and the EWMA
    drift z-score) is still computed at :meth:`Ledger.commit` time
    because the live ``ledger.*`` metrics publish it every iteration.
    """

    __slots__ = (
        "iteration", "workloads", "fingerprint", "osteal", "fsteal",
        "samples", "skipped", "rmsre_online", "drift_z", "commit_args",
        "measured",
    )

    def __init__(self, iteration: int, workloads, fingerprint) -> None:
        self.iteration = iteration
        self.workloads = workloads
        self.fingerprint = fingerprint
        self.osteal = None
        self.fsteal = None
        self.samples: List[tuple] = []
        self.skipped = 0
        self.rmsre_online: Optional[float] = None
        self.drift_z: Optional[float] = None
        self.commit_args: Optional[tuple] = None
        self.measured: Optional[tuple] = None


class Ledger:
    """Append-only per-decision record of one arbitrator's run.

    The scheduler drives the per-iteration recording protocol —
    :meth:`begin`, the ``record_*`` calls, :meth:`commit` — inside its
    ``plan`` hook, back-fills the measured cost from ``observe`` via
    :meth:`backfill`, attributes injected faults via
    :meth:`record_fault`, and stamps the arbitrator's own final RMSRE
    with :meth:`seal` so post-hoc reconstruction can be verified.

    Recording appends raw tuples; the schema dicts (and the deferred
    fingerprint quantization) materialize lazily on the first read of
    :attr:`entries`, which keeps the in-run recording cost inside the
    observability budget the ``obs.ledger_overhead`` benches pin.
    """

    def __init__(self, model: str = "default",
                 amortize: bool = True,
                 fingerprint_tolerance: float = 0.05) -> None:
        self.model = str(model)
        self.amortize = bool(amortize)
        self.fingerprint_tolerance = float(fingerprint_tolerance)
        self.faults: List[dict] = []
        self.skipped_samples = 0
        self.final_rmsre: Optional[float] = None
        self._open: Optional[_RawEntry] = None
        self._raw: List[_RawEntry] = []
        self._entries: Optional[List[dict]] = None
        self._by_iteration: Dict[int, object] = {}
        # online-RMSRE mirror (same accumulation order as the source)
        self._sum_sq = 0.0
        self._counted = 0
        self._last_rmsre: Optional[float] = None
        # current iteration's signed relative-error accumulator
        self._it_signed = 0.0
        self._it_nsigned = 0
        # past-only EWMA drift state over per-iteration mean rel. error
        self._drift_mean = 0.0
        self._drift_var = 0.0
        self._drift_n = 0
        self._last_z = 0.0

    # --- recording protocol (called by the arbitrator) -----------------
    def begin(self, iteration: int, workloads: Sequence[int],
              fingerprint: Optional[
                  Union[bytes, str, np.ndarray, Sequence[np.ndarray]]
              ] = None) -> None:
        """Open this iteration's entry (quantized inputs snapshot).

        ``fingerprint`` may be the already-quantized bytes/hex, a raw
        input vector, or a sequence of vectors to concatenate — raw
        vectors are log-bucketed lazily (all at once, when the entries
        materialize) so per-iteration recording does not pay for
        quantization.
        """
        if isinstance(workloads, np.ndarray):
            workloads = workloads.tolist()
        self._open = _RawEntry(int(iteration), workloads, fingerprint)
        self._it_signed = 0.0
        self._it_nsigned = 0

    def record_sample(self, fragment: int, worker: int, features,
                      predicted: float, actual: float) -> None:
        """One (features -> predicted vs true edge cost) audit pair.

        Samples land in the exact order the arbitrator feeds its
        online RMSRE, so :func:`reconstruct_rmsre` replays bitwise.
        Non-positive actuals are kept (flagged by ``skipped``) — the
        ledger explains what the model saw, including the samples the
        accuracy statistic refuses.
        """
        entry = self._open
        if entry is None:
            return
        entry.samples.append(
            (fragment, worker, features, predicted, actual)
        )
        if actual <= 0:
            entry.skipped += 1
            self.skipped_samples += 1
            return
        self._sum_sq += ((predicted - actual) / actual) ** 2
        self._counted += 1
        self._it_signed += (predicted - actual) / actual
        self._it_nsigned += 1

    def record_osteal(self, group_size: int, prev_group_size: int,
                      candidates: int, evaluated_sizes: int,
                      reused_sizes: int, estimated_cost: float,
                      estimated_kernel: float,
                      p_estimate: float) -> None:
        """The Algorithm-2 evaluation: candidate sizes and the pick."""
        entry = self._open
        if entry is None:
            return
        entry.osteal = (
            group_size, prev_group_size, candidates, evaluated_sizes,
            reused_sizes, estimated_cost, estimated_kernel, p_estimate,
        )

    def record_fsteal(self, solver: str, cache_status: str,
                      objective: float, warm_started: bool,
                      static_makespan: Optional[float],
                      gain: Optional[float],
                      modeled_overhead: float,
                      rejected_by_gate: bool) -> None:
        """The Algorithm-1 solve: chosen plan, cache status, gate."""
        entry = self._open
        if entry is None:
            return
        entry.fsteal = (
            solver, cache_status, objective, warm_started,
            static_makespan, gain, modeled_overhead, rejected_by_gate,
        )

    def commit(self, group_size: int, active_workers: Sequence[int],
               fsteal_applied: bool, stolen_edges: int,
               migrated_vertices: int,
               inter_node_stolen_edges: int = 0) -> None:
        """Close the entry: chosen plan plus derived accuracy state.

        ``inter_node_stolen_edges`` counts the subset of
        ``stolen_edges`` whose home and executing GPUs live on
        different nodes of a hierarchical topology; single-node runs
        leave it 0 and the serialized entry omits the field, keeping
        committed golden ledgers byte-identical.
        """
        entry = self._open
        if entry is None:
            raise LedgerError("commit without begin")
        entry.commit_args = (
            group_size, tuple(active_workers), fsteal_applied,
            stolen_edges, migrated_vertices, inter_node_stolen_edges,
        )
        if self._counted:
            # math.sqrt == np.sqrt bit for bit (both correctly rounded)
            entry.rmsre_online = float(
                math.sqrt(self._sum_sq / self._counted)
            )
            self._last_rmsre = entry.rmsre_online
        if self._it_nsigned:
            entry.drift_z = self._drift_update(
                self._it_signed / self._it_nsigned
            )
        self._raw.append(entry)
        self._by_iteration[entry.iteration] = entry
        self._open = None
        self._entries = None

    def _drift_update(self, x: float) -> float:
        """Past-only EWMA z-score of the mean signed relative error."""
        if self._drift_n < DRIFT_WARMUP:
            z = 0.0
        elif self._drift_var <= 0.0:
            z = 0.0 if x == self._drift_mean else math.copysign(
                _DRIFT_CLAMP, x - self._drift_mean
            )
        else:
            z = (x - self._drift_mean) / math.sqrt(self._drift_var)
        delta = x - self._drift_mean
        self._drift_mean += DRIFT_ALPHA * delta
        self._drift_var = (1.0 - DRIFT_ALPHA) * (
            self._drift_var + DRIFT_ALPHA * delta * delta
        )
        self._drift_n += 1
        self._last_z = float(z)
        return self._last_z

    def backfill(self, iteration: int, wall_seconds: float,
                 critical_busy_seconds: float, compute_seconds: float,
                 num_active: int) -> None:
        """Attach the measured virtual cost once the iteration ran."""
        entry = self._by_iteration.get(int(iteration))
        if entry is None:
            return
        if type(entry) is _RawEntry:
            entry.measured = (
                wall_seconds, critical_busy_seconds, compute_seconds,
                num_active,
            )
            self._entries = None
            return
        # deserialized (already materialized) entry
        critical = float(critical_busy_seconds)
        entry["measured"] = {
            "wall_seconds": float(wall_seconds),
            "critical_busy_seconds": critical,
            "compute_seconds": float(compute_seconds),
            "num_active": int(num_active),
        }
        predicted = entry["predicted_seconds"]
        if predicted is not None and critical > 0:
            entry["decision_error"] = float(
                (predicted - critical) / critical
            )

    def record_fault(self, iteration: Optional[int], kind: str,
                     worker: Optional[int],
                     heir: Optional[int]) -> None:
        """Attribute an injected fault so evictions leave no gaps."""
        self.faults.append({
            "iteration": None if iteration is None else int(iteration),
            "kind": str(kind),
            "worker": None if worker is None else int(worker),
            "heir": None if heir is None else int(heir),
        })

    def seal(self, final_rmsre: Optional[float],
             skipped: Optional[int] = None) -> None:
        """Stamp the arbitrator's own final online RMSRE (and skips).

        Post-hoc readers verify :func:`reconstruct_rmsre` against this
        value; a mismatch means the ledger missed a sample.
        """
        self.final_rmsre = (
            None if final_rmsre is None else float(final_rmsre)
        )
        if skipped is not None and int(skipped) != self.skipped_samples:
            raise LedgerError(
                f"arbitrator skipped {skipped} non-positive actuals but "
                f"the ledger recorded {self.skipped_samples}"
            )

    # --- materialization -----------------------------------------------
    @property
    def entries(self) -> List[dict]:
        """Schema dicts of every committed decision (lazily built).

        Raw recordings materialize on first access (and again after any
        later :meth:`commit`/:meth:`backfill` — materialization is a
        pure function of the raw state, so rebuilding is safe).
        """
        if self._entries is None:
            entries = []
            deferred: List[Tuple[dict, np.ndarray]] = []
            for raw in self._raw:
                entries.append(self._materialize(raw, deferred))
            self._quantize_fingerprints(deferred)
            self._entries = entries
        return self._entries

    @entries.setter
    def entries(self, value: Sequence[dict]) -> None:
        self._entries = list(value)
        self._raw = []

    def _materialize(
        self, raw: _RawEntry, deferred: List[Tuple[dict, np.ndarray]]
    ) -> dict:
        """Schema dict of one raw entry (same arithmetic, same order,
        as recording inline would have produced — the bit-identity the
        determinism tests pin)."""
        samples: List[dict] = []
        per_worker: Dict[int, float] = {}
        sq_sum = 0.0
        sq_n = 0
        for fragment, worker, features, predicted, actual in raw.samples:
            predicted = float(predicted)
            actual = float(actual)
            worker = int(worker)
            edges = int(features.total_edges)
            samples.append({
                "fragment": int(fragment),
                "worker": worker,
                "edges": edges,
                "features": features.vector().tolist(),
                "predicted": predicted,
                "actual": actual,
            })
            per_worker[worker] = (
                per_worker.get(worker, 0.0) + predicted * edges
            )
            if actual <= 0:
                continue
            rel = (predicted - actual) / actual
            sq_sum += rel * rel
            sq_n += 1
        # the model's predicted critical compute under the ownership it
        # was consulted with
        predicted_seconds = (
            float(max(per_worker.values())) if per_worker else None
        )
        osteal = None
        if raw.osteal is not None:
            (group_size, prev_group_size, candidates, evaluated_sizes,
             reused_sizes, estimated_cost, estimated_kernel,
             p_estimate) = raw.osteal
            osteal = {
                "group_size": int(group_size),
                "prev_group_size": int(prev_group_size),
                "candidates": int(candidates),
                "evaluated_sizes": int(evaluated_sizes),
                "reused_sizes": int(reused_sizes),
                "estimated_cost": float(estimated_cost),
                "estimated_kernel": float(estimated_kernel),
                "p_estimate": float(p_estimate),
            }
        fsteal = None
        cache_status = None
        if raw.fsteal is not None:
            (solver, cache_status, objective, warm_started,
             static_makespan, gain, modeled_overhead,
             rejected_by_gate) = raw.fsteal
            cache_status = str(cache_status)
            fsteal = {
                "solver": str(solver),
                "cache_status": cache_status,
                "objective": float(objective),
                "warm_started": bool(warm_started),
                "static_makespan": (
                    None if static_makespan is None
                    else float(static_makespan)
                ),
                "gain": None if gain is None else float(gain),
                "modeled_overhead": float(modeled_overhead),
                "rejected_by_gate": bool(rejected_by_gate),
            }
        (group_size, active_workers, fsteal_applied, stolen_edges,
         migrated_vertices, inter_node_stolen) = raw.commit_args
        measured = None
        decision_error = None
        if raw.measured is not None:
            (wall_seconds, critical, compute_seconds,
             num_active) = raw.measured
            critical = float(critical)
            measured = {
                "wall_seconds": float(wall_seconds),
                "critical_busy_seconds": critical,
                "compute_seconds": float(compute_seconds),
                "num_active": int(num_active),
            }
            if predicted_seconds is not None and critical > 0:
                decision_error = float(
                    (predicted_seconds - critical) / critical
                )
        entry = {
            "iteration": raw.iteration,
            "fingerprint": None,
            "workloads": [int(w) for w in raw.workloads],
            "osteal": osteal,
            "fsteal": fsteal,
            "cache_status": cache_status,
            "samples": samples,
            "skipped": raw.skipped,
            "predicted_seconds": predicted_seconds,
            "rmsre_iteration": (
                float(math.sqrt(sq_sum / sq_n)) if sq_n else None
            ),
            "rmsre_online": raw.rmsre_online,
            "drift_z": raw.drift_z,
            "group_size": int(group_size),
            "active_workers": [int(w) for w in active_workers],
            "fsteal_applied": bool(fsteal_applied),
            "stolen_edges": int(stolen_edges),
            "migrated_vertices": int(migrated_vertices),
            "measured": measured,
            "decision_error": decision_error,
        }
        if inter_node_stolen:
            entry["inter_node_stolen_edges"] = int(inter_node_stolen)
        fp = raw.fingerprint
        if fp is not None:
            if isinstance(fp, (bytes, bytearray)):
                entry["fingerprint"] = fp.hex()
            elif isinstance(fp, str):
                entry["fingerprint"] = fp
            elif isinstance(fp, np.ndarray):
                deferred.append(
                    (entry, np.asarray(fp, dtype=np.float64))
                )
            else:  # sequence of vectors, concatenated lazily
                deferred.append((entry, np.concatenate(
                    [np.asarray(p, dtype=np.float64) for p in fp]
                )))
        return entry

    def _quantize_fingerprints(
        self, pending: List[Tuple[dict, np.ndarray]]
    ) -> None:
        """Quantize every deferred fingerprint vector in one pass.

        Stacks same-length vectors (one run keeps a fixed fragment
        count, so normally a single stack) and log-buckets them with
        :func:`repro.core.decision_cache.bucketize` — each resolved hex
        string is byte-identical to quantizing that vector alone.
        """
        if not pending:
            return
        tolerance = self.fingerprint_tolerance
        by_size: Dict[int, List[Tuple[dict, np.ndarray]]] = {}
        for item in pending:
            by_size.setdefault(item[1].size, []).append(item)
        for group in by_size.values():
            if tolerance <= 0.0:
                for entry, vec in group:
                    entry["fingerprint"] = vec.tobytes().hex()
                continue
            buckets = bucketize(
                np.stack([vec for _, vec in group]), tolerance
            )
            for (entry, _), row in zip(group, buckets):
                entry["fingerprint"] = row.tobytes().hex()

    # --- queries --------------------------------------------------------
    @property
    def samples(self) -> int:
        """Counted (positive-actual) audit samples so far."""
        return self._counted

    @property
    def num_entries(self) -> int:
        """Committed decisions so far (no materialization needed)."""
        if self._raw:
            return len(self._raw)
        return len(self._entries) if self._entries is not None else 0

    def last_rmsre_online(self) -> Optional[float]:
        """Online RMSRE after the latest committed decision."""
        return self._last_rmsre

    def last_drift_z(self) -> float:
        """Most recent drift z-score (0.0 before any sample)."""
        return self._last_z

    def cache_status_counts(self) -> Dict[str, int]:
        """How many FSteal solves were live, warm-started, or cached."""
        counts = {"live": 0, "warm": 0, "cached": 0}
        for entry in self.entries:
            status = entry["cache_status"]
            if status in counts:
                counts[status] += 1
        return counts

    def export_samples(self) -> "LedgerSamples":
        """Training samples with provenance for cost-model fitting.

        Rows are the recorded 6-entry feature vectors; costs are the
        measured (ground-truth) per-edge seconds, so ``features`` and
        ``costs`` feed ``CostModel.fit`` directly. Each row also
        carries the iteration it was recorded in and the GPU the
        fragment was owned by, so replay error attribution never has
        to re-derive feed order from entry position. Non-positive
        actuals are excluded.
        """
        features: List[List[float]] = []
        costs: List[float] = []
        iterations: List[int] = []
        gpus: List[int] = []
        for entry in self.entries:
            for sample in entry["samples"]:
                if sample["actual"] <= 0:
                    continue
                features.append(sample["features"])
                costs.append(sample["actual"])
                iterations.append(entry["iteration"])
                gpus.append(sample["worker"])
        if not features:
            raise LedgerError(
                "ledger holds no positive-cost samples to export"
            )
        return LedgerSamples(
            features=np.asarray(features, dtype=np.float64),
            costs=np.asarray(costs, dtype=np.float64),
            iterations=np.asarray(iterations, dtype=np.int64),
            gpus=np.asarray(gpus, dtype=np.int64),
        )

    def analytics(self) -> dict:
        """Derived accuracy analytics over the whole run (JSON-ready)."""
        attribution_fragment: Dict[int, List[float]] = {}
        attribution_gpu: Dict[int, List[float]] = {}
        for entry in self.entries:
            for sample in entry["samples"]:
                actual = sample["actual"]
                if actual <= 0:
                    continue
                rel = (sample["predicted"] - actual) / actual
                for acc, key in (
                    (attribution_fragment, sample["fragment"]),
                    (attribution_gpu, sample["worker"]),
                ):
                    acc.setdefault(key, []).append(rel)
        errors = [
            abs(entry["decision_error"]) for entry in self.entries
            if entry["decision_error"] is not None
        ]
        drift = [
            abs(entry["drift_z"]) for entry in self.entries
            if entry["drift_z"] is not None
        ]
        return {
            "iterations": [e["iteration"] for e in self.entries],
            "rmsre_series": [e["rmsre_iteration"] for e in self.entries],
            "rmsre_online_series": [
                e["rmsre_online"] for e in self.entries
            ],
            "drift_z_series": [e["drift_z"] for e in self.entries],
            "max_model_drift": max(drift) if drift else 0.0,
            "final_rmsre": reconstruct_rmsre(self.entries),
            "samples": int(self._counted),
            "skipped_samples": int(self.skipped_samples),
            "cache_status_counts": self.cache_status_counts(),
            "decision_error": {
                "p50": quantile(errors, 0.50),
                "p90": quantile(errors, 0.90),
                "p99": quantile(errors, 0.99),
                "max": max(errors) if errors else None,
                "count": len(errors),
            },
            "by_fragment": _attribution(attribution_fragment),
            "by_gpu": _attribution(attribution_gpu),
        }

    def summary(self) -> dict:
        """Compact block for ``result_summary`` / SLO indicators."""
        counts = self.cache_status_counts()
        errors = [
            abs(entry["decision_error"]) for entry in self.entries
            if entry["decision_error"] is not None
        ]
        drift = [
            abs(entry["drift_z"]) for entry in self.entries
            if entry["drift_z"] is not None
        ]
        return {
            "entries": len(self.entries),
            "samples": int(self._counted),
            "skipped_samples": int(self.skipped_samples),
            "live": counts["live"],
            "warm": counts["warm"],
            "cached": counts["cached"],
            "final_rmsre": reconstruct_rmsre(self.entries),
            "max_model_drift": max(drift) if drift else 0.0,
            "decision_error_p99": quantile(errors, 0.99),
            "faults": len(self.faults),
        }

    # --- (de)serialization ----------------------------------------------
    def as_dict(self) -> dict:
        """Versioned JSON-stable payload (entries + analytics)."""
        return {
            "schema": LEDGER_SCHEMA,
            "model": self.model,
            "amortize": self.amortize,
            "final_rmsre": self.final_rmsre,
            "skipped_samples": int(self.skipped_samples),
            "entries": [dict(entry) for entry in self.entries],
            "faults": [dict(fault) for fault in self.faults],
            "analytics": self.analytics(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Ledger":
        """Rebuild a ledger from :meth:`as_dict` output (validated)."""
        if not isinstance(payload, dict):
            raise LedgerError("ledger payload must be a JSON object")
        schema = payload.get("schema")
        if schema != LEDGER_SCHEMA:
            raise LedgerError(
                f"unsupported ledger schema {schema!r} "
                f"(expected {LEDGER_SCHEMA!r})"
            )
        ledger = cls(
            model=payload.get("model", "default"),
            amortize=bool(payload.get("amortize", True)),
        )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise LedgerError("ledger payload has no entries list")
        ledger.entries = [dict(entry) for entry in entries]
        ledger.faults = [dict(f) for f in payload.get("faults", [])]
        ledger.final_rmsre = payload.get("final_rmsre")
        for entry in ledger.entries:
            ledger._by_iteration[entry["iteration"]] = entry
            if entry.get("drift_z") is not None:
                ledger._last_z = float(entry["drift_z"])
            if entry.get("rmsre_online") is not None:
                ledger._last_rmsre = float(entry["rmsre_online"])
            for sample in entry.get("samples", ()):
                actual = sample["actual"]
                if actual <= 0:
                    ledger.skipped_samples += 1
                    continue
                rel = (sample["predicted"] - actual) / actual
                ledger._sum_sq += rel * rel
                ledger._counted += 1
        return ledger


def _attribution(groups: Dict[int, List[float]]) -> Dict[str, dict]:
    """Per-key error statistics (keys stringified for JSON stability)."""
    out = {}
    for key in sorted(groups):
        rels = groups[key]
        out[str(key)] = {
            "count": len(rels),
            "rmsre": float(
                math.sqrt(sum(r * r for r in rels) / len(rels))
            ),
            "mean_abs_rel_error": float(
                sum(abs(r) for r in rels) / len(rels)
            ),
        }
    return out


# ----------------------------------------------------------------------
# Rendering (the `repro explain` CLI)
# ----------------------------------------------------------------------
def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 1e3:.3f}ms"


def _fmt_pct(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 100:+.1f}%"


def _entry_line(entry: dict) -> str:
    """One-line why-this-steal-happened story for an entry."""
    bits = [f"iter {entry['iteration']:>4d}:"]
    osteal = entry["osteal"]
    if osteal is not None:
        arrow = (
            f"{osteal['prev_group_size']}->{osteal['group_size']}"
            if osteal["group_size"] != osteal["prev_group_size"]
            else f"{osteal['group_size']} (kept)"
        )
        bits.append(
            f"osteal group {arrow} "
            f"[{osteal['evaluated_sizes']} solved/"
            f"{osteal['reused_sizes']} memoized of "
            f"{osteal['candidates']} sizes, "
            f"E={_fmt_seconds(osteal['estimated_cost'])}]"
        )
    fsteal = entry["fsteal"]
    if fsteal is not None:
        if fsteal["rejected_by_gate"]:
            verdict = (
                f"rejected by gate (gain {_fmt_seconds(fsteal['gain'])} "
                f"<= overhead "
                f"{_fmt_seconds(fsteal['modeled_overhead'])})"
            )
        elif entry["fsteal_applied"]:
            inter = entry.get("inter_node_stolen_edges", 0)
            crossed = f", {inter} inter-node" if inter else ""
            verdict = (
                f"applied, stole {entry['stolen_edges']} edges"
                f"{crossed} (gain {_fmt_seconds(fsteal['gain'])})"
            )
        else:
            verdict = "solved but unused"
        bits.append(
            f"fsteal {fsteal['cache_status']} via {fsteal['solver']}, "
            f"objective {_fmt_seconds(fsteal['objective'])}, {verdict}"
        )
    if osteal is None and fsteal is None:
        bits.append(
            f"no steal evaluated (group {entry['group_size']}, "
            f"owner-local plan)"
        )
    measured = entry["measured"]
    if measured is not None and entry["predicted_seconds"] is not None:
        bits.append(
            f"| predicted {_fmt_seconds(entry['predicted_seconds'])} vs "
            f"measured {_fmt_seconds(measured['critical_busy_seconds'])} "
            f"({_fmt_pct(entry['decision_error'])})"
        )
    return " ".join(bits)


def _sample_lines(entry: dict) -> List[str]:
    lines = [
        "    fragment  gpu      edges     predicted        actual"
        "   rel.err",
    ]
    for sample in entry["samples"]:
        actual = sample["actual"]
        rel = (
            (sample["predicted"] - actual) / actual if actual > 0
            else None
        )
        flag = "" if actual > 0 else "  (skipped)"
        lines.append(
            f"    {sample['fragment']:>8d} {sample['worker']:>4d} "
            f"{sample['edges']:>10d} {sample['predicted']:>13.3e} "
            f"{actual:>13.3e} {_fmt_pct(rel):>9s}{flag}"
        )
    return lines


def explain_lines(ledger: Ledger,
                  iteration: Optional[int] = None) -> List[str]:
    """Render a ledger as the `repro explain` report.

    Without ``iteration``: run-level header, accuracy analytics, the
    reconstruction check, and one line per decision where a steal was
    evaluated. With ``iteration``: that entry in full, including the
    per-fragment prediction audit table.
    """
    analytics = ledger.analytics()
    counts = analytics["cache_status_counts"]
    lines = [
        f"decision ledger: {len(ledger.entries)} decisions, "
        f"model={ledger.model}, "
        f"amortize={'on' if ledger.amortize else 'off'}",
        f"  samples: {analytics['samples']} counted, "
        f"{analytics['skipped_samples']} skipped (non-positive actual)",
        f"  fsteal solves: {counts['live']} live, {counts['warm']} warm, "
        f"{counts['cached']} cached",
    ]
    reconstructed = analytics["final_rmsre"]
    if ledger.final_rmsre is not None and reconstructed is not None:
        match = (
            "bit-identical"
            if reconstructed == ledger.final_rmsre
            else f"MISMATCH vs arbitrator {ledger.final_rmsre!r}"
        )
        lines.append(
            f"  final RMSRE: {reconstructed:.6g} "
            f"(reconstructed from entries: {match})"
        )
    elif reconstructed is not None:
        lines.append(f"  final RMSRE: {reconstructed:.6g}")
    error = analytics["decision_error"]
    if error["count"]:
        lines.append(
            f"  decision error |predicted-measured|/measured: "
            f"p50 {_fmt_pct(error['p50'])}, p90 {_fmt_pct(error['p90'])}, "
            f"p99 {_fmt_pct(error['p99'])} over {error['count']} decisions"
        )
    lines.append(
        f"  model drift: max EWMA z {analytics['max_model_drift']:.3g}"
    )
    worst = sorted(
        analytics["by_fragment"].items(),
        key=lambda item: item[1]["rmsre"],
        reverse=True,
    )[:3]
    if worst and worst[0][1]["rmsre"] > 0:
        ranked = ", ".join(
            f"fragment {key} (rmsre {stats['rmsre']:.3g})"
            for key, stats in worst
        )
        lines.append(f"  worst-predicted: {ranked}")
    for fault in ledger.faults:
        where = (
            "before first decision" if fault["iteration"] is None
            else f"iteration {fault['iteration']}"
        )
        detail = ""
        if fault["worker"] is not None:
            detail = f" worker {fault['worker']}"
            if fault["heir"] is not None:
                detail += f" -> heir {fault['heir']}"
        lines.append(f"  fault: {fault['kind']}{detail} at {where}")

    if iteration is not None:
        entry = next(
            (e for e in ledger.entries if e["iteration"] == iteration),
            None,
        )
        if entry is None:
            raise LedgerError(
                f"no ledger entry for iteration {iteration} "
                f"(run has {len(ledger.entries)} decisions)"
            )
        lines.append("")
        lines.append(_entry_line(entry))
        if entry["fingerprint"]:
            lines.append(
                f"    quantized input fingerprint: "
                f"{entry['fingerprint'][:32]}..."
                if len(entry["fingerprint"]) > 32
                else f"    quantized input fingerprint: "
                     f"{entry['fingerprint']}"
            )
        lines.append(
            f"    workloads: {entry['workloads']} -> "
            f"active {entry['active_workers']}"
        )
        if entry["samples"]:
            lines.extend(_sample_lines(entry))
        return lines

    lines.append("")
    decisions = [
        entry for entry in ledger.entries
        if entry["osteal"] is not None or entry["fsteal"] is not None
    ]
    if not decisions:
        lines.append("no steal was evaluated in this run")
    for entry in decisions:
        lines.append(_entry_line(entry))
    return lines
