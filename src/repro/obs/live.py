"""Live telemetry streaming: span events out of a *running* engine.

Everything in :mod:`repro.obs` up to this module is post-hoc — spans
and metrics become inspectable only after ``run()`` returns. A
:class:`StreamingSink` turns the same records into a line-oriented
event stream *while the BSP engine iterates*, so dashboards
(``repro top``), SLO monitors, and the future serving layer can watch
a run instead of autopsying it.

Stream format (``repro-live/1``) — one JSON object per line:

* header — ``{"format": "repro-live", "version": 1, ...meta}``;
* span — ``{"event": "span", ...SpanRecord.as_dict()}``, emitted the
  moment the record completes (supersteps, per-GPU busy/stall, chaos
  fault markers, solver spans; the record's own ``kind`` field still
  distinguishes spans from instants);
* metrics — ``{"event": "metrics", "iteration": N, "snapshot": {...}}``,
  a full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken on
  an iteration cadence (``snapshot_every``);
* end — ``{"event": "end", "spans": N}`` written on close, so tailing
  consumers know the run finished rather than stalled.

Targets: a filesystem path, an open file object, ``fd://N`` (inherit a
file descriptor — how a supervising process tails a child), or
``unix://PATH`` (connect to a Unix domain socket). Instants (chaos
faults, group changes) and metrics events flush immediately; ordinary
span lines batch and ship on the ``snapshot_every`` heartbeat (and on
close), so a tailing consumer lags a live run by at most one heartbeat
while the per-line syscall cost stays inside the observability budget
(the ``obs.*`` bench family enforces < 3 % of run wall time).

Periodic metrics events are **light** snapshots: timeseries
instruments are summarized to ``count``/``last`` instead of shipping
their whole history every cadence (which would make streaming cost
quadratic in run length). The final snapshot written on :meth:`close`
is complete.

The spans on the wire are exactly the spans a post-hoc
:func:`~repro.obs.export.result_to_spans` replay produces for the same
run (order-insensitive) — a pinned invariant, tested, so live
consumers and offline analytics can never disagree about what a run
did.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Sink, SpanRecord

__all__ = [
    "STREAM_FORMAT",
    "STREAM_VERSION",
    "StreamingSink",
    "open_stream_target",
    "read_stream_events",
    "iter_stream_lines",
]

STREAM_FORMAT = "repro-live"
STREAM_VERSION = 1

#: Default superstep cadence for full metrics snapshots.
DEFAULT_SNAPSHOT_EVERY = 10


class _SocketWriter:
    """Minimal file-like adapter over a connected Unix socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.closed = False

    def write(self, text: str) -> int:
        self._sock.sendall(text.encode("utf-8"))
        return len(text)

    def flush(self) -> None:  # sendall already pushed the bytes
        pass

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._sock.close()


def open_stream_target(target: Union[str, Path, object]):
    """Open a stream destination: ``(writable, owns_handle)``.

    Accepts a path (truncate/create), ``fd://N`` (duplicate an
    inherited descriptor), ``unix://PATH`` (connect a Unix socket), or
    any object with a ``write`` method (used as-is, not closed).
    """
    if hasattr(target, "write"):
        return target, False
    text = str(target)
    if text.startswith("fd://"):
        try:
            fd = int(text[5:])
        except ValueError:
            raise ReproError(
                f"bad stream target {text!r}: fd:// needs an integer "
                "file descriptor (e.g. fd://3)"
            ) from None
        try:
            return open(fd, "w", closefd=False), True
        except OSError as exc:
            raise ReproError(
                f"cannot open stream fd {fd}: {exc}"
            ) from exc
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"cannot connect stream socket {path!r}: {exc}"
            ) from exc
        return _SocketWriter(sock), True
    path = Path(text)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        return open(path, "w"), True
    except OSError as exc:
        raise ReproError(
            f"cannot open stream file {path}: {exc}"
        ) from exc


class StreamingSink(Sink):
    """Emits span records incrementally as ``repro-live/1`` JSON lines.

    Parameters
    ----------
    target:
        Path, ``fd://N``, ``unix://PATH``, or a writable file object.
    meta:
        Run annotations merged into the header line.
    metrics:
        Registry to snapshot on a superstep cadence (optional).
    snapshot_every:
        Emit a full metrics snapshot every N ``superstep`` spans
        (0 disables periodic snapshots; one final snapshot is still
        written on :meth:`close`).
    """

    def __init__(
        self,
        target: Union[str, Path, object],
        meta: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        self._handle, self._owns_handle = open_stream_target(target)
        self._metrics = metrics
        self._snapshot_every = max(0, int(snapshot_every))
        self._supersteps = 0
        self._spans = 0
        self._closed = False
        # one reused encoder: json.dumps(default=...) builds a fresh
        # JSONEncoder per call, which dominates small-event cost
        self._encode = json.JSONEncoder(
            separators=(",", ":"), default=_coerce
        ).encode
        self._pending: List[Dict[str, object]] = []
        header = {"format": STREAM_FORMAT, "version": STREAM_VERSION}
        header.update(meta or {})
        self._write(header)

    def _write(self, payload: Dict[str, object], flush: bool = True) -> None:
        # serialization is deferred to flush time: one warm encode loop
        # per batch beats a cold per-record encode inside the engine's
        # iteration path
        self._pending.append(payload)
        if flush:
            self._flush_pending()

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        encode = self._encode
        self._handle.write(
            "".join(encode(p) + "\n" for p in self._pending)
        )
        self._pending.clear()
        self._handle.flush()

    def emit(self, record: SpanRecord) -> None:
        """Stream one completed record (and maybe a metrics snapshot)."""
        event = record.as_dict()  # fresh dict — safe to tag in place
        event["event"] = "span"
        # instants (chaos faults, group changes) flush immediately;
        # span lines batch until the heartbeat cadence so the per-line
        # syscall cost stays inside the <3% observability budget
        self._write(event, flush=record.kind == "instant")
        self._spans += 1
        if record.name == "superstep":
            self._supersteps += 1
            every = self._snapshot_every or 1
            if self._supersteps % every == 0:
                if self._metrics is not None and self._snapshot_every:
                    self.snapshot(iteration=record.attrs.get("iteration"),
                                  light=True)
                else:  # no registry: still flush on the cadence
                    self._flush_pending()

    def snapshot(
        self, iteration: Optional[int] = None, light: bool = False
    ) -> None:
        """Write a metrics snapshot event now.

        ``light`` summarizes timeseries instruments to their
        ``count``/``last`` fields — the periodic cadence must not ship
        a run's whole per-iteration history on every beat.
        """
        if self._metrics is None or self._closed:
            return
        snapshot = self._metrics.snapshot(light=light)
        self._write({
            "event": "metrics",
            "iteration": iteration,
            "snapshot": snapshot,
        })

    def close(self) -> None:
        """Write a final snapshot + end marker, release the target."""
        if self._closed:
            return
        self.snapshot()
        self._write({"event": "end", "spans": self._spans})
        self._closed = True
        if self._owns_handle:
            self._handle.close()


def _coerce(value):
    """JSON fallback for numpy scalars/arrays in span attributes."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(
        f"not JSON serializable: {type(value).__name__}"
    )


def iter_stream_lines(path: Union[str, Path]) -> Iterator[Dict]:
    """Parse a recorded live stream file, yielding event dicts.

    Tolerates a truncated final line (the producer may still be
    writing); raises :class:`ReproError` on anything else malformed.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read stream {path}: {exc}") from exc
    lines = raw.split("\n")
    complete = lines[:-1]  # a trailing fragment has no newline yet
    for lineno, line in enumerate(complete, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: malformed stream line ({exc.msg})"
            ) from exc
        if not isinstance(event, dict):
            raise ReproError(
                f"{path}:{lineno}: expected a JSON object, got "
                f"{type(event).__name__}"
            )
        yield event


def read_stream_events(path: Union[str, Path]) -> List[Dict]:
    """All complete events of a recorded live stream, header included.

    Validates the header line; use :func:`iter_stream_lines` when the
    producer may still be running.
    """
    events = list(iter_stream_lines(path))
    if not events:
        raise ReproError(f"{path}: empty stream (no header line)")
    header = events[0]
    if header.get("format") != STREAM_FORMAT:
        raise ReproError(
            f"{path}: not a {STREAM_FORMAT} stream "
            f"(header format {header.get('format')!r})"
        )
    return events
