"""Live telemetry streaming: span events out of a *running* engine.

Everything in :mod:`repro.obs` up to this module is post-hoc — spans
and metrics become inspectable only after ``run()`` returns. A
:class:`StreamingSink` turns the same records into a line-oriented
event stream *while the BSP engine iterates*, so dashboards
(``repro top``), SLO monitors, and the future serving layer can watch
a run instead of autopsying it.

Stream format (``repro-live/1``) — one JSON object per line:

* header — ``{"format": "repro-live", "version": 1, ...meta}``;
* span — ``{"event": "span", ...SpanRecord.as_dict()}``, emitted the
  moment the record completes (supersteps, per-GPU busy/stall, chaos
  fault markers, solver spans; the record's own ``kind`` field still
  distinguishes spans from instants);
* metrics — ``{"event": "metrics", "iteration": N, "snapshot": {...}}``,
  a full :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` taken on
  an iteration cadence (``snapshot_every``);
* end — ``{"event": "end", "spans": N}`` written on close, so tailing
  consumers know the run finished rather than stalled.

Targets: a filesystem path, an open file object, ``fd://N`` (inherit a
file descriptor — how a supervising process tails a child), or
``unix://PATH`` (connect to a Unix domain socket). JSON encoding and
target writes run on a dedicated writer thread so the engine's emit
path never blocks on serialization (the dominant cost at the <3%
observability budget the ``obs.*`` bench family enforces). Instants
and metrics events hand off to the writer immediately — chaos fault
markers additionally block until they are durable on the wire —
while ordinary span lines batch until the ``snapshot_every``
heartbeat (and close), so a tailing consumer lags a live run by at
most one heartbeat.

Periodic metrics events are **light** snapshots: timeseries
instruments are summarized to ``count``/``last`` instead of shipping
their whole history every cadence (which would make streaming cost
quadratic in run length). The final snapshot written on :meth:`close`
is complete.

The spans on the wire are exactly the spans a post-hoc
:func:`~repro.obs.export.result_to_spans` replay produces for the same
run (order-insensitive) — a pinned invariant, tested, so live
consumers and offline analytics can never disagree about what a run
did.
"""

from __future__ import annotations

import json
import queue
import socket
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, capture_light, render_light
from repro.obs.tracer import Sink, SpanRecord

__all__ = [
    "STREAM_FORMAT",
    "STREAM_VERSION",
    "StreamingSink",
    "open_stream_target",
    "read_stream_events",
    "iter_stream_lines",
]

STREAM_FORMAT = "repro-live"
STREAM_VERSION = 1

#: Default superstep cadence for full metrics snapshots.
DEFAULT_SNAPSHOT_EVERY = 10


class _DeferredSnapshot:
    """A heartbeat's captured registry state, formatted by the writer."""

    __slots__ = ("iteration", "captured")

    def __init__(self, iteration, captured) -> None:
        self.iteration = iteration
        self.captured = captured


class _SocketWriter:
    """Minimal file-like adapter over a connected Unix socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.closed = False

    def write(self, text: str) -> int:
        self._sock.sendall(text.encode("utf-8"))
        return len(text)

    def flush(self) -> None:  # sendall already pushed the bytes
        pass

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._sock.close()


def open_stream_target(target: Union[str, Path, object]):
    """Open a stream destination: ``(writable, owns_handle)``.

    Accepts a path (truncate/create), ``fd://N`` (duplicate an
    inherited descriptor), ``unix://PATH`` (connect a Unix socket), or
    any object with a ``write`` method (used as-is, not closed).
    """
    if hasattr(target, "write"):
        return target, False
    text = str(target)
    if text.startswith("fd://"):
        try:
            fd = int(text[5:])
        except ValueError:
            raise ReproError(
                f"bad stream target {text!r}: fd:// needs an integer "
                "file descriptor (e.g. fd://3)"
            ) from None
        try:
            return open(fd, "w", closefd=False), True
        except OSError as exc:
            raise ReproError(
                f"cannot open stream fd {fd}: {exc}"
            ) from exc
    if text.startswith("unix://"):
        path = text[len("unix://"):]
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
        except OSError as exc:
            sock.close()
            raise ReproError(
                f"cannot connect stream socket {path!r}: {exc}"
            ) from exc
        return _SocketWriter(sock), True
    path = Path(text)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        return open(path, "w"), True
    except OSError as exc:
        raise ReproError(
            f"cannot open stream file {path}: {exc}"
        ) from exc


class StreamingSink(Sink):
    """Emits span records incrementally as ``repro-live/1`` JSON lines.

    Parameters
    ----------
    target:
        Path, ``fd://N``, ``unix://PATH``, or a writable file object.
    meta:
        Run annotations merged into the header line.
    metrics:
        Registry to snapshot on a superstep cadence (optional).
    snapshot_every:
        Emit a full metrics snapshot every N ``superstep`` spans
        (0 disables periodic snapshots; one final snapshot is still
        written on :meth:`close`).
    """

    def __init__(
        self,
        target: Union[str, Path, object],
        meta: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        self._handle, self._owns_handle = open_stream_target(target)
        self._metrics = metrics
        self._snapshot_every = max(0, int(snapshot_every))
        self._supersteps = 0
        self._spans = 0
        self._closed = False
        # one reused encoder: json.dumps(default=...) builds a fresh
        # JSONEncoder per call, which dominates small-event cost
        self._encode = json.JSONEncoder(
            separators=(",", ":"), default=_coerce
        ).encode
        # pending holds dict events (header, metrics, end) and raw
        # SpanRecords; the writer thread turns records into span lines
        self._pending: List[object] = []
        # serialization and target writes run on a dedicated writer
        # thread: the engine's emit path only appends dicts and hands
        # off batches, so JSON float formatting never blocks a
        # superstep (the dominant cost at the <3% obs budget's scale)
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._writer_error: Optional[BaseException] = None
        self._writer = threading.Thread(
            target=self._drain, name="repro-stream-writer", daemon=True
        )
        self._writer.start()
        header = {"format": STREAM_FORMAT, "version": STREAM_VERSION}
        header.update(meta or {})
        self._write(header)

    def _drain(self) -> None:
        """Writer-thread loop: encode and ship queued batches in order."""
        while True:
            kind, payload = self._queue.get()
            if kind == "stop":
                return
            if kind == "barrier":
                payload.set()
                continue
            try:
                encode = self._encode
                lines = []
                for item in payload:
                    if isinstance(item, SpanRecord):
                        event = item.as_dict()
                        event["event"] = "span"
                        item = event
                    elif isinstance(item, _DeferredSnapshot):
                        item = {
                            "event": "metrics",
                            "iteration": item.iteration,
                            "snapshot": render_light(item.captured),
                        }
                    lines.append(encode(item))
                    lines.append("\n")
                self._handle.write("".join(lines))
                self._handle.flush()
            except BaseException as exc:  # surfaced at the next barrier
                self._writer_error = exc

    def _write(self, payload: Dict[str, object], flush: bool = True) -> None:
        # batches hand off to the writer thread; ``flush`` additionally
        # waits until the batch is on the wire (instants, header, close)
        self._pending.append(payload)
        if flush:
            self._flush_pending(wait=True)

    def _flush_pending(self, wait: bool = False) -> None:
        if self._pending:
            self._queue.put(("batch", self._pending))
            self._pending = []
        if wait:
            barrier = threading.Event()
            self._queue.put(("barrier", barrier))
            barrier.wait()
            if self._writer_error is not None:
                error, self._writer_error = self._writer_error, None
                raise error

    def emit(self, record: SpanRecord) -> None:
        """Stream one completed record (and maybe a metrics snapshot).

        The record itself is handed to the writer thread, which builds
        the span event line — records are complete (never mutated
        again) by the time a tracer emits them, so deferring the dict
        view is safe and keeps the engine-side cost to a list append.
        """
        # instants ship to the writer at once (not held for the
        # heartbeat); chaos fault markers additionally *block* until
        # they are on the wire — a fault must be durable even if the
        # engine dies on the very next statement. Ordinary span lines
        # batch until the heartbeat cadence.
        self._pending.append(record)
        if record.kind == "instant":
            self._flush_pending(wait=record.cat == "chaos")
        self._spans += 1
        if record.name == "superstep":
            self._supersteps += 1
            every = self._snapshot_every or 1
            if self._supersteps % every == 0:
                if self._metrics is not None and self._snapshot_every:
                    self.snapshot(iteration=record.attrs.get("iteration"),
                                  light=True)
                else:  # no registry: still ship on the cadence
                    self._flush_pending()

    def snapshot(
        self, iteration: Optional[int] = None, light: bool = False
    ) -> None:
        """Write a metrics snapshot event now.

        ``light`` summarizes timeseries instruments to their
        ``count``/``last`` fields — the periodic cadence must not ship
        a run's whole per-iteration history on every beat. The registry
        state is captured synchronously (at this instant); encoding and
        the write happen on the writer thread.
        """
        if self._metrics is None or self._closed:
            return
        if light:
            # capture the state now, format it on the writer thread
            self._pending.append(_DeferredSnapshot(
                iteration, capture_light(self._metrics)
            ))
        else:
            self._pending.append({
                "event": "metrics",
                "iteration": iteration,
                "snapshot": self._metrics.snapshot(light=False),
            })
        self._flush_pending()

    def close(self) -> None:
        """Write a final snapshot + end marker, release the target."""
        if self._closed:
            return
        self.snapshot()
        self._write({"event": "end", "spans": self._spans})
        self._closed = True
        self._queue.put(("stop", None))
        self._writer.join()
        if self._owns_handle:
            self._handle.close()


def _coerce(value):
    """JSON fallback for numpy scalars/arrays in span attributes."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    raise TypeError(
        f"not JSON serializable: {type(value).__name__}"
    )


def iter_stream_lines(path: Union[str, Path]) -> Iterator[Dict]:
    """Parse a recorded live stream file, yielding event dicts.

    Tolerates a truncated final line (the producer may still be
    writing); raises :class:`ReproError` on anything else malformed.
    """
    path = Path(path)
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ReproError(f"cannot read stream {path}: {exc}") from exc
    lines = raw.split("\n")
    complete = lines[:-1]  # a trailing fragment has no newline yet
    for lineno, line in enumerate(complete, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: malformed stream line ({exc.msg})"
            ) from exc
        if not isinstance(event, dict):
            raise ReproError(
                f"{path}:{lineno}: expected a JSON object, got "
                f"{type(event).__name__}"
            )
        yield event


def read_stream_events(path: Union[str, Path]) -> List[Dict]:
    """All complete events of a recorded live stream, header included.

    Validates the header line; use :func:`iter_stream_lines` when the
    producer may still be running.
    """
    events = list(iter_stream_lines(path))
    if not events:
        raise ReproError(f"{path}: empty stream (no header line)")
    header = events[0]
    if header.get("format") != STREAM_FORMAT:
        raise ReproError(
            f"{path}: not a {STREAM_FORMAT} stream "
            f"(header format {header.get('format')!r})"
        )
    return events
