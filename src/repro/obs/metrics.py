"""Counters, gauges, and histograms engines publish while running.

The paper's evaluation quotes aggregate statistics a timeline cannot
show — stolen edges per GPU pair, MILP solve latency, the cost model's
online RMSRE, hub-cache hit rates, the Figure 6 bucket breakdown. A
:class:`MetricsRegistry` holds those instruments by name; ``bench/``
and the ``profile`` CLI read one :meth:`~MetricsRegistry.snapshot` at
the end of a run.

As with tracing, :data:`NULL_METRICS` is the default everywhere:
instruments it hands out discard updates, and hot paths gate
label-building work on ``metrics.enabled``.

Snapshots are **JSON-stable**: every scalar is coerced to a plain
Python ``int``/``float``/``None`` at observation time and every mapping
is emitted in sorted key order, so two processes that observe the same
values serialize byte-identical JSON — the property the run registry's
``runs diff`` relies on.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "quantile",
    "capture_light",
    "render_light",
]


def quantile(values: List[float], q: float) -> Optional[float]:
    """Linear-interpolated quantile of ``values`` (``None`` if empty).

    Deterministic and dependency-free (no numpy) so snapshot output is
    byte-stable across processes. ``values`` need not be sorted.
    """
    if not values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(float(v) for v in values)
    return _quantile_sorted(ordered, q)


def _quantile_sorted(ordered: List[float], q: float) -> float:
    rank = q * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    return ordered[low] + (ordered[high] - ordered[low]) * (rank - low)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    # the engine's per-iteration instruments carry zero or one label,
    # so those shapes skip the generic sort
    if not labels:
        return ()
    if len(labels) == 1:
        for k, v in labels.items():
            return ((k, v if isinstance(v, str) else str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _key_string(key: Tuple[Tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in key) if key else ""


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the series selected by ``labels``."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + float(value)

    def inc_key(self, key: Tuple[Tuple[str, str], ...],
                value: float = 1.0) -> None:
        """:meth:`inc` with a precomputed label key.

        Hot paths (the engine's per-superstep emitter) cache the
        ``(("label", "value"),)`` tuples once and skip rebuilding them
        every iteration; the series written are exactly the ones
        :meth:`inc` would select.
        """
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of one labelled series (0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state (sorted series, plain floats)."""
        values = self._values
        if len(values) == 1:  # the common unlabelled counter
            for key, value in values.items():
                value = float(value)
                return {
                    "type": self.kind,
                    "total": value,
                    "series": {_key_string(key): value},
                }
        return {
            "type": self.kind,
            "total": float(self.total()),
            "series": {
                _key_string(key): float(value)
                for key, value in sorted(self._values.items())
            },
        }


class Gauge:
    """Last-write-wins value (group size, online RMSRE, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: Optional[float] = None

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self._value = float(value)

    def value(self) -> Optional[float]:
        """Current value, or ``None`` if never set."""
        return self._value

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state."""
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Streaming distribution: count/sum/min/max plus decade buckets.

    Buckets are powers of ten of the observed value — wide enough for
    quantities spanning nanoseconds to seconds without configuration.

    Quantiles (p50/p90/p99) come from a bounded sample buffer: every
    sample is kept until the cap, after which the buffer is decimated
    to every other sample and only every ``stride``-th observation is
    retained. The schedule is purely deterministic (no random
    reservoir), so two processes observing the same sequence snapshot
    byte-identical quantiles — the property ``runs diff`` relies on.
    """

    kind = "histogram"

    #: Sample-buffer cap before deterministic stride doubling.
    SAMPLE_CAP = 4096

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._samples: List[float] = []
        self._stride = 1
        self._pending = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = (
            math.floor(math.log10(abs(value))) if value != 0 else -math.inf
        )
        key = int(exponent) if exponent != -math.inf else -999
        self._buckets[key] = self._buckets.get(key, 0) + 1
        self._pending += 1
        if self._pending >= self._stride:
            self._pending = 0
            self._samples.append(value)
            if len(self._samples) >= self.SAMPLE_CAP:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of the samples seen so far."""
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile from the retained sample buffer."""
        return quantile(self._samples, q)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state (sorted buckets, plain scalars)."""
        ordered = sorted(self._samples)  # one sort for all quantiles
        return {
            "type": self.kind,
            "count": int(self.count),
            "sum": float(self.sum),
            "mean": None if self.mean is None else float(self.mean),
            "min": None if self.min is None else float(self.min),
            "max": None if self.max is None else float(self.max),
            "p50": _quantile_sorted(ordered, 0.50) if ordered else None,
            "p90": _quantile_sorted(ordered, 0.90) if ordered else None,
            "p99": _quantile_sorted(ordered, 0.99) if ordered else None,
            "decade_buckets": {
                f"1e{exp}" if exp != -999 else "0": int(count)
                for exp, count in sorted(self._buckets.items())
            },
        }


class Timeseries:
    """Append-only per-iteration samples (wall ms, frontier edges, ...).

    The missing shape between a histogram (order lost) and a raw trace
    (too heavy): one float per superstep, in superstep order, cheap
    enough to keep for a whole run and archive in a run manifest. The
    run registry stores these so ``runs diff`` can compare *shapes* of
    runs, not just end-to-end aggregates.
    """

    kind = "timeseries"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._index: List[int] = []
        self._values: List[float] = []

    def append(self, value: float, index: Optional[int] = None) -> None:
        """Record the next sample.

        ``index`` is the sample's iteration number; when omitted it
        continues from the previous sample (so a series appended with
        an explicit index — e.g. after skipped supersteps — stays
        monotone).
        """
        if index is None:
            index = self._index[-1] + 1 if self._index else 0
        self._index.append(int(index))
        self._values.append(float(value))

    def values(self) -> List[float]:
        """All samples, in append order."""
        return list(self._values)

    def index(self) -> List[int]:
        """Sample indices (iteration numbers), in append order."""
        return list(self._index)

    def last(self) -> Optional[float]:
        """Most recent sample, or ``None`` if empty."""
        return self._values[-1] if self._values else None

    def __len__(self) -> int:
        return len(self._values)

    def snapshot(self, light: bool = False) -> Dict[str, object]:
        """JSON-friendly state (plain scalars, stable order).

        ``light`` omits the per-iteration ``index``/``values`` arrays —
        the shape live streaming ships on a cadence, where copying (and
        serializing) the whole history every beat would make streaming
        cost quadratic in run length.
        """
        out: Dict[str, object] = {
            "type": self.kind,
            "count": len(self._values),
            "last": self.last(),
        }
        if not light:
            out["index"] = list(self._index)
            out["values"] = list(self._values)
        return out


def capture_light(registry: "MetricsRegistry") -> List[tuple]:
    """Point-in-time instrument state, deferred formatting.

    The streaming heartbeat must capture registry state at the beat
    *instant* but should not pay for building the JSON snapshot on the
    engine thread. This grabs each instrument's mutable state (small
    dict/list copies) for :func:`render_light` to format later —
    ``render_light(capture_light(r))`` equals ``r.snapshot(light=True)``
    exactly (a pinned test).
    """
    captured = []
    for name in sorted(registry._instruments):
        instrument = registry._instruments[name]
        kind = instrument.kind
        if kind == "counter":
            state = dict(instrument._values)
        elif kind == "gauge":
            state = instrument._value
        elif kind == "histogram":
            state = (
                instrument.count, instrument.sum, instrument.min,
                instrument.max, dict(instrument._buckets),
                list(instrument._samples),
            )
        else:  # timeseries — light view only needs count/last
            values = instrument._values
            state = (len(values), values[-1] if values else None)
        captured.append((name, kind, state))
    return captured


def render_light(captured: List[tuple]) -> Dict[str, Dict[str, object]]:
    """Format :func:`capture_light` output as ``snapshot(light=True)``."""
    out: Dict[str, Dict[str, object]] = {}
    for name, kind, state in captured:
        if kind == "counter":
            if len(state) == 1:
                for key, value in state.items():
                    value = float(value)
                    out[name] = {
                        "type": "counter",
                        "total": value,
                        "series": {_key_string(key): value},
                    }
            else:
                out[name] = {
                    "type": "counter",
                    "total": float(sum(state.values())),
                    "series": {
                        _key_string(key): float(value)
                        for key, value in sorted(state.items())
                    },
                }
        elif kind == "gauge":
            out[name] = {"type": "gauge", "value": state}
        elif kind == "histogram":
            count, total, low, high, buckets, samples = state
            ordered = sorted(samples)
            out[name] = {
                "type": "histogram",
                "count": int(count),
                "sum": float(total),
                "mean": float(total / count) if count else None,
                "min": None if low is None else float(low),
                "max": None if high is None else float(high),
                "p50": _quantile_sorted(ordered, 0.50) if ordered else None,
                "p90": _quantile_sorted(ordered, 0.90) if ordered else None,
                "p99": _quantile_sorted(ordered, 0.99) if ordered else None,
                "decade_buckets": {
                    f"1e{exp}" if exp != -999 else "0": int(n)
                    for exp, n in sorted(buckets.items())
                },
            }
        else:
            count, last = state
            out[name] = {"type": "timeseries", "count": count,
                         "last": last}
    return out


class MetricsRegistry:
    """Named instruments, get-or-create semantics.

    Asking twice for the same name returns the same instrument;
    asking for an existing name with a different type raises.
    """

    enabled: bool = True

    _KINDS = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": Histogram,
        "timeseries": Timeseries,
    }

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, cls, name: str, help: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, help)

    def timeseries(self, name: str, help: str = "") -> Timeseries:
        """Get or create a timeseries."""
        return self._get(Timeseries, name, help)

    def names(self) -> List[str]:
        """Registered instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self, light: bool = False) -> Dict[str, Dict[str, object]]:
        """All instruments' state, keyed by name (JSON-friendly).

        ``light`` summarizes timeseries instruments to their
        ``count``/``last`` fields (see :meth:`Timeseries.snapshot`) —
        scalars and histograms are already cheap.
        """
        out = {}
        for name in self.names():
            instrument = self._instruments[name]
            if light and instrument.kind == "timeseries":
                out[name] = instrument.snapshot(light=True)
            else:
                out[name] = instrument.snapshot()
        return out

    def collect(self, prefix: str) -> Dict[str, Dict[str, object]]:
        """Snapshots of the instruments whose name starts with ``prefix``.

        The cheap way for report code to pull one subsystem's metrics
        (e.g. every ``decision.*`` counter) without walking the full
        registry snapshot.
        """
        return {
            name: self._instruments[name].snapshot()
            for name in self.names()
            if name.startswith(prefix)
        }


class _NullInstrument:
    """Discards every update; satisfies all three instrument APIs."""

    __slots__ = ()
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = None

    def inc(self, value: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float, index: Optional[int] = None) -> None:
        pass

    def value(self, **labels):
        return None

    def values(self) -> List[float]:
        return []

    def index(self) -> List[int]:
        return []

    def last(self) -> Optional[float]:
        return None

    def quantile(self, q: float) -> Optional[float]:
        return None

    def total(self) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """Disabled registry: hands out no-op instruments."""

    enabled = False

    def counter(self, name: str, help: str = ""):  # type: ignore[override]
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = ""):  # type: ignore[override]
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = ""):  # type: ignore[override]
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def timeseries(self, name: str, help: str = ""):  # type: ignore[override]
        """Return the shared no-op instrument."""
        return _NULL_INSTRUMENT

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Always empty."""
        return {}


#: Shared disabled registry — the default for every engine.
NULL_METRICS = NullMetrics()
