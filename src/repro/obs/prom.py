"""Prometheus text-format exposition for metrics snapshots.

A :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is the repo's
native metrics shape; this module renders one in the Prometheus
`text exposition format`, so a run's final (or periodically streamed)
metrics can be scraped, pushed to a gateway, or committed as a CI
artifact without any new dependency.

Mapping:

* counter → ``counter`` (one sample per label series, plus an
  unlabelled total when the counter has labelled series);
* gauge → ``gauge`` (skipped while unset);
* histogram → Prometheus *summary*: ``{quantile="0.5|0.9|0.99"}``
  samples from the deterministic p50/p90/p99, plus ``_count``,
  ``_sum``, ``_min``, ``_max`` companions;
* timeseries → gauge of the **last** value, plus a ``_count`` of
  samples (the full series belongs in the run registry, not a scrape).

Names are sanitised to the Prometheus grammar (dots and other
punctuation become underscores) and prefixed (default ``repro_``).
Output is sorted by metric name, so the same snapshot always renders
byte-identical text — diffable like everything else in ``repro.obs``.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError

__all__ = ["prom_name", "prom_text", "write_prom"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram quantiles exported as Prometheus summary samples.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def prom_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a registry metric name into a Prometheus name."""
    base = _NAME_OK.sub("_", name)
    if prefix:
        base = f"{prefix}_{base}"
    if base and base[0].isdigit():
        base = f"_{base}"
    return base


def _fmt(value: float) -> str:
    """Render a sample value (ints without trailing .0)."""
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(series_key: str) -> str:
    """``"bucket=comm,gpu=0"`` → ``{bucket="comm",gpu="0"}``."""
    if not series_key:
        return ""
    pairs = []
    for part in series_key.split(","):
        key, _, value = part.partition("=")
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        pairs.append(f'{key}="{escaped}"')
    return "{" + ",".join(pairs) + "}"


def _counter_lines(name: str, snap: Dict, help: str) -> List[str]:
    lines = [f"# HELP {name} {help}", f"# TYPE {name} counter"]
    series = snap.get("series") or {}
    if series:
        for key in sorted(series):
            lines.append(f"{name}{_labels(key)} {_fmt(series[key])}")
    else:
        lines.append(f"{name} {_fmt(snap.get('total', 0.0))}")
    return lines


def _gauge_lines(name: str, value: float, help: str) -> List[str]:
    return [
        f"# HELP {name} {help}",
        f"# TYPE {name} gauge",
        f"{name} {_fmt(value)}",
    ]


def _summary_lines(name: str, snap: Dict, help: str) -> List[str]:
    lines = [f"# HELP {name} {help}", f"# TYPE {name} summary"]
    for label, key in _QUANTILES:
        value = snap.get(key)
        if value is not None:
            lines.append(f'{name}{{quantile="{label}"}} {_fmt(value)}')
    lines.append(f"{name}_sum {_fmt(snap.get('sum', 0.0))}")
    lines.append(f"{name}_count {_fmt(snap.get('count', 0))}")
    for extra in ("min", "max"):
        value = snap.get(extra)
        if value is not None:
            lines.append(f"{name}_{extra} {_fmt(value)}")
    return lines


def prom_text(
    snapshot: Dict[str, Dict[str, object]],
    prefix: str = "repro",
) -> str:
    """Render a metrics snapshot as Prometheus exposition text."""
    out: List[str] = []
    for raw_name in sorted(snapshot):
        snap = snapshot[raw_name]
        kind = snap.get("type")
        name = prom_name(raw_name, prefix)
        help = f"repro metric {raw_name}"
        if kind == "counter":
            out.extend(_counter_lines(name, snap, help))
        elif kind == "gauge":
            value = snap.get("value")
            if value is not None:
                out.extend(_gauge_lines(name, value, help))
        elif kind == "histogram":
            out.extend(_summary_lines(name, snap, help))
        elif kind == "timeseries":
            last = snap.get("last")
            if last is not None:
                out.extend(
                    _gauge_lines(f"{name}_last", last, help)
                )
            out.append(f"# TYPE {name}_count gauge")
            out.append(f"{name}_count {_fmt(snap.get('count', 0))}")
        # unknown types are skipped: forward compatibility over noise
    return "\n".join(out) + ("\n" if out else "")


def write_prom(
    path: Union[str, Path],
    snapshot: Dict[str, Dict[str, object]],
    prefix: str = "repro",
) -> Optional[Path]:
    """Write exposition text to ``path`` (parents created)."""
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(prom_text(snapshot, prefix=prefix))
    except OSError as exc:
        raise ReproError(
            f"cannot write Prometheus snapshot {path}: {exc}"
        ) from exc
    return path
