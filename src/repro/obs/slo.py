"""Declarative service-level objectives over runs and run history.

The serving-layer north star needs budgets, not just measurements: a
run is *good* when its p99 iteration latency, GPU utilization, stall
fraction, chaos recovery, and observability overhead all sit inside
agreed bounds — and a fleet is healthy when today's run is not a
statistical outlier against its own history. This module makes those
budgets first-class files.

Rule files (``repro-slo/1``, YAML or JSON)::

    schema: repro-slo/1
    rules:
      - metric: p99_iteration_ms      # bound rule
        max: 1.0
      - metric: min_gpu_utilization
        min: 0.9
      - series: wall_ms               # within-run anomaly rule
        zscore_max: 8.0
        warmup: 10
      - metric: total_ms              # cross-run anomaly rule
        zscore_max: 3.0
        history: 20
        required: false               # SKIP (not FAIL) when unavailable

Three rule shapes:

* **bound** — ``metric`` + ``max`` and/or ``min``. The metric resolves
  first against the named SLO indicators (:func:`slo_indicators`),
  then as a dotted path into the run summary (``breakdown_ms.comm``).
* **series** — ``series`` + ``zscore_max``: a rolling EWMA mean/
  variance sweep over one per-iteration array (``wall_ms``,
  ``frontier_edges``, ...) flags iterations whose z-score against the
  running estimate exceeds the bound — latency spikes inside an
  otherwise-green run.
* **history** — ``metric`` + ``zscore_max`` + ``history: N``: the
  value is z-scored against the same metric across up to N prior runs
  of the *same workload fingerprint*; fewer than
  :data:`MIN_HISTORY` priors ⇒ SKIP (anomaly detection needs a
  baseline, and a young registry should not fail CI).

A missing value fails a rule unless ``required: false`` marks it
optional. :func:`evaluate` returns an :class:`SloReport` — one
PASS/FAIL/SKIP outcome per rule — which the ``repro slo check`` CLI
prints one line per rule and converts into its exit code.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import ReproError, SloConfigError
from repro.obs.metrics import quantile

__all__ = [
    "SLO_SCHEMA",
    "MIN_HISTORY",
    "SloRule",
    "SloPolicy",
    "RuleOutcome",
    "SloReport",
    "load_policy",
    "policy_from_dict",
    "slo_indicators",
    "recovery_iterations",
    "ewma_zscores",
    "evaluate",
]

SLO_SCHEMA = "repro-slo/1"

#: Minimum prior runs before a history rule evaluates (else SKIP).
MIN_HISTORY = 3

#: EWMA smoothing used for baselines (series rules, chaos recovery).
DEFAULT_EWMA_ALPHA = 0.3

#: A post-fault iteration has "recovered" when its wall time is back
#: within this multiple of the pre-fault EWMA baseline.
RECOVERY_TOLERANCE = 1.5


# ---------------------------------------------------------------------------
# policy files


@dataclass(frozen=True)
class SloRule:
    """One parsed rule; exactly one of the three shapes is populated."""

    metric: Optional[str] = None
    series: Optional[str] = None
    max: Optional[float] = None
    min: Optional[float] = None
    zscore_max: Optional[float] = None
    history: Optional[int] = None
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    warmup: int = 5
    required: bool = True

    @property
    def kind(self) -> str:
        """``bound`` | ``series`` | ``history``."""
        if self.series is not None:
            return "series"
        if self.history is not None:
            return "history"
        return "bound"

    @property
    def label(self) -> str:
        """Stable one-token identity for report lines."""
        if self.kind == "series":
            return f"series[{self.series}]"
        if self.kind == "history":
            return f"history[{self.metric}]"
        return str(self.metric)

    def describe(self) -> str:
        """Human phrasing of the constraint."""
        if self.kind == "series":
            return f"|z| <= {self.zscore_max:g} (ewma)"
        if self.kind == "history":
            return f"|z| <= {self.zscore_max:g} vs last {self.history}"
        parts = []
        if self.max is not None:
            parts.append(f"<= {self.max:g}")
        if self.min is not None:
            parts.append(f">= {self.min:g}")
        return " and ".join(parts)


@dataclass(frozen=True)
class SloPolicy:
    """A validated rule file."""

    rules: Sequence[SloRule]
    source: str = "<inline>"


_RULE_KEYS = {
    "metric", "series", "max", "min", "zscore_max", "history",
    "ewma_alpha", "warmup", "required",
}


def _rule_from_dict(raw: Dict, where: str) -> SloRule:
    if not isinstance(raw, dict):
        raise SloConfigError(f"{where}: rule must be a mapping")
    unknown = set(raw) - _RULE_KEYS
    if unknown:
        raise SloConfigError(
            f"{where}: unknown rule key(s) {sorted(unknown)} "
            f"(known: {sorted(_RULE_KEYS)})"
        )
    metric = raw.get("metric")
    series = raw.get("series")
    if (metric is None) == (series is None):
        raise SloConfigError(
            f"{where}: exactly one of 'metric' or 'series' is required"
        )
    zscore_max = raw.get("zscore_max")
    history = raw.get("history")
    has_bound = raw.get("max") is not None or raw.get("min") is not None
    if series is not None:
        if zscore_max is None or has_bound or history is not None:
            raise SloConfigError(
                f"{where}: a series rule needs 'zscore_max' "
                "(and takes no max/min/history)"
            )
    elif history is not None:
        if zscore_max is None or has_bound:
            raise SloConfigError(
                f"{where}: a history rule needs 'zscore_max' "
                "(and takes no max/min)"
            )
        if int(history) < 1:
            raise SloConfigError(
                f"{where}: history must be >= 1, got {history}"
            )
    else:
        if not has_bound or zscore_max is not None:
            raise SloConfigError(
                f"{where}: a bound rule needs 'max' and/or 'min' "
                "(zscore_max needs 'series' or 'history')"
            )
    alpha = float(raw.get("ewma_alpha", DEFAULT_EWMA_ALPHA))
    if not 0.0 < alpha <= 1.0:
        raise SloConfigError(
            f"{where}: ewma_alpha must be in (0, 1], got {alpha}"
        )
    try:
        return SloRule(
            metric=metric,
            series=series,
            max=None if raw.get("max") is None else float(raw["max"]),
            min=None if raw.get("min") is None else float(raw["min"]),
            zscore_max=(
                None if zscore_max is None else float(zscore_max)
            ),
            history=None if history is None else int(history),
            ewma_alpha=alpha,
            warmup=int(raw.get("warmup", 5)),
            required=bool(raw.get("required", True)),
        )
    except (TypeError, ValueError) as exc:
        raise SloConfigError(f"{where}: bad rule value: {exc}") from exc


def policy_from_dict(
    payload: Dict, source: str = "<inline>"
) -> SloPolicy:
    """Validate a parsed rule document into an :class:`SloPolicy`."""
    if not isinstance(payload, dict):
        raise SloConfigError(f"{source}: rule file must be a mapping")
    schema = payload.get("schema")
    if schema != SLO_SCHEMA:
        raise SloConfigError(
            f"{source}: unsupported schema {schema!r} "
            f"(expected {SLO_SCHEMA})"
        )
    raw_rules = payload.get("rules")
    if not isinstance(raw_rules, list) or not raw_rules:
        raise SloConfigError(
            f"{source}: 'rules' must be a non-empty list"
        )
    rules = [
        _rule_from_dict(raw, f"{source}: rules[{i}]")
        for i, raw in enumerate(raw_rules)
    ]
    return SloPolicy(rules=tuple(rules), source=source)


def load_policy(path: Union[str, Path]) -> SloPolicy:
    """Load and validate a ``repro-slo/1`` YAML or JSON rule file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SloConfigError(
            f"cannot read SLO rules {path}: {exc}"
        ) from exc
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # keep the stdlib-only JSON path alive
            raise SloConfigError(
                f"{path}: PyYAML is not installed; use a .json rule "
                "file instead"
            ) from None
        try:
            payload = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SloConfigError(
                f"{path}: malformed YAML ({exc})"
            ) from exc
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SloConfigError(
                f"{path}: malformed JSON ({exc.msg})"
            ) from exc
    return policy_from_dict(payload, source=str(path))


# ---------------------------------------------------------------------------
# indicators


def _ewma(values: Sequence[float], alpha: float) -> Optional[float]:
    mean: Optional[float] = None
    for value in values:
        mean = value if mean is None else mean + alpha * (value - mean)
    return mean


def recovery_iterations(
    wall_ms: Sequence[float],
    fault_positions: Sequence[int],
    alpha: float = DEFAULT_EWMA_ALPHA,
    tolerance: float = RECOVERY_TOLERANCE,
) -> Optional[int]:
    """Worst-case iterations-to-recover across fault injections.

    For each fault (a position into ``wall_ms``), the pre-fault EWMA of
    iteration wall time is the baseline; recovery is the number of
    iterations from the fault until wall time first returns within
    ``tolerance``× the baseline. A fault the run never recovers from
    counts every remaining iteration. ``None`` when there are no
    faults (or no iterations) to measure.
    """
    if not wall_ms or not fault_positions:
        return None
    worst: Optional[int] = None
    for position in fault_positions:
        position = max(0, int(position))
        if position >= len(wall_ms):
            continue
        baseline = _ewma(wall_ms[:position], alpha)
        if baseline is None or baseline <= 0:
            recovered = 0
        else:
            limit = tolerance * baseline
            recovered = len(wall_ms) - position
            for offset, value in enumerate(wall_ms[position:]):
                if value <= limit:
                    recovered = offset
                    break
        if worst is None or recovered > worst:
            worst = recovered
    return worst


def slo_indicators(
    summary: Dict, timeseries: Optional[Dict] = None
) -> Dict[str, Optional[float]]:
    """Named SLO indicators of one run.

    ``summary`` is a :func:`repro.cli.result_summary` dict (live or
    from a recorded manifest); ``timeseries`` is the matching
    :meth:`RunResult.timeseries` arrays (quantiles and recovery need
    the per-iteration shape — without it those indicators are
    ``None``).

    ``min_gpu_utilization`` is taken over *participating* GPUs
    (utilization > 0): under OSteal the scheduler deliberately folds
    the group, and an idled-by-design GPU is not an SLO violation.
    """
    timeseries = timeseries or {}
    wall_ms = [float(v) for v in timeseries.get("wall_ms") or []]
    per_gpu = summary.get("per_gpu_utilization") or []
    participating = [float(u) for u in per_gpu if u and float(u) > 0.0]
    indicators: Dict[str, Optional[float]] = {
        "p50_iteration_ms": quantile(wall_ms, 0.50),
        "p90_iteration_ms": quantile(wall_ms, 0.90),
        "p99_iteration_ms": quantile(wall_ms, 0.99),
        "max_iteration_ms": max(wall_ms) if wall_ms else None,
        "min_gpu_utilization": (
            min(participating) if participating else None
        ),
        "max_stall_fraction": summary.get("stall_fraction"),
        "obs_overhead_pct": summary.get("obs_overhead_pct"),
    }
    # decision-ledger accuracy indicators: None for stateless policies
    # or manifests recorded before the ledger existed
    ledger = summary.get("ledger") or {}
    indicators["max_model_drift"] = ledger.get("max_model_drift")
    indicators["max_decision_error_p99"] = ledger.get(
        "decision_error_p99"
    )
    chaos = summary.get("chaos") or {}
    events = chaos.get("events") or []
    if events:
        iteration_numbers = list(timeseries.get("iteration") or [])
        positions = []
        for event in events:
            iteration = event.get("iteration")
            if iteration is None:
                continue
            if iteration in iteration_numbers:
                positions.append(iteration_numbers.index(iteration))
            else:
                positions.append(int(iteration))
        indicators["chaos_recovery_iterations"] = recovery_iterations(
            wall_ms, positions
        )
    return indicators


def _lookup(payload: Dict, dotted: str):
    """Resolve ``a.b.c`` into nested dicts (``None`` when absent)."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


# ---------------------------------------------------------------------------
# evaluation


def ewma_zscores(
    values: Sequence[float], alpha: float, warmup: int
) -> List[Optional[float]]:
    """Rolling z-score of each sample against the EWMA mean/variance.

    The estimate at position ``i`` uses only samples ``< i`` and the
    first ``warmup`` positions yield ``None`` (an EWMA needs history
    before a z-score means anything — BFS ramp-up iterations would
    otherwise all look anomalous).
    """
    scores: List[Optional[float]] = []
    mean: Optional[float] = None
    var = 0.0
    for position, value in enumerate(values):
        value = float(value)
        if mean is None:
            scores.append(None)
            mean = value
            continue
        delta = value - mean
        if position < warmup:
            scores.append(None)
        elif var <= 0.0:
            # zero variance: an exact match scores 0, any deviation
            # from a perfectly flat baseline is infinitely anomalous
            scores.append(
                0.0 if abs(delta) <= 1e-12
                else math.copysign(math.inf, delta)
            )
        else:
            scores.append(delta / math.sqrt(var))
        mean += alpha * delta
        var = (1.0 - alpha) * (var + alpha * delta * delta)
    return scores


@dataclass(frozen=True)
class RuleOutcome:
    """PASS/FAIL/SKIP of one rule, with the evidence."""

    rule: SloRule
    status: str  # "PASS" | "FAIL" | "SKIP"
    observed: Optional[float] = None
    message: str = ""

    def line(self) -> str:
        """The one-line report entry for this rule."""
        return (
            f"{self.status:4s} {self.rule.label} "
            f"{self.rule.describe()} — {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly outcome (for the ``--report`` artifact)."""
        return {
            "label": self.rule.label,
            "kind": self.rule.kind,
            "constraint": self.rule.describe(),
            "status": self.status,
            "observed": self.observed,
            "message": self.message,
        }


@dataclass
class SloReport:
    """Every rule's outcome for one evaluated run."""

    outcomes: List[RuleOutcome] = field(default_factory=list)
    subject: str = ""

    @property
    def ok(self) -> bool:
        """True when no rule failed."""
        return not self.failures

    @property
    def failures(self) -> List[RuleOutcome]:
        """The failing outcomes."""
        return [o for o in self.outcomes if o.status == "FAIL"]

    @property
    def exit_code(self) -> int:
        """0 when green, 1 when any rule failed."""
        return 0 if self.ok else 1

    def lines(self) -> List[str]:
        """One line per rule plus a verdict line."""
        counts = {"PASS": 0, "FAIL": 0, "SKIP": 0}
        for outcome in self.outcomes:
            counts[outcome.status] += 1
        verdict = "OK" if self.ok else "VIOLATION"
        out = [outcome.line() for outcome in self.outcomes]
        out.append(
            f"{verdict}: {counts['PASS']} passed, "
            f"{counts['FAIL']} failed, {counts['SKIP']} skipped"
            + (f" — {self.subject}" if self.subject else "")
        )
        return out

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly report (for the ``--report`` artifact)."""
        return {
            "schema": SLO_SCHEMA,
            "subject": self.subject,
            "ok": self.ok,
            "rules": [o.as_dict() for o in self.outcomes],
        }


def _missing(rule: SloRule, what: str) -> RuleOutcome:
    status = "FAIL" if rule.required else "SKIP"
    return RuleOutcome(rule, status, None, f"{what} unavailable")


def _eval_bound(
    rule: SloRule, indicators: Dict, summary: Dict
) -> RuleOutcome:
    value = indicators.get(rule.metric)
    if value is None:
        value = _lookup(summary, rule.metric)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return _missing(rule, f"metric {rule.metric!r}")
    value = float(value)
    if rule.max is not None and value > rule.max:
        return RuleOutcome(
            rule, "FAIL", value,
            f"observed {value:g} > max {rule.max:g}",
        )
    if rule.min is not None and value < rule.min:
        return RuleOutcome(
            rule, "FAIL", value,
            f"observed {value:g} < min {rule.min:g}",
        )
    return RuleOutcome(rule, "PASS", value, f"observed {value:g}")


def _eval_series(rule: SloRule, timeseries: Dict) -> RuleOutcome:
    values = timeseries.get(rule.series)
    if not values:
        return _missing(rule, f"series {rule.series!r}")
    scores = ewma_zscores(values, rule.ewma_alpha, rule.warmup)
    worst: Optional[float] = None
    worst_position = -1
    for position, score in enumerate(scores):
        if score is None:
            continue
        if worst is None or abs(score) > abs(worst):
            worst = score
            worst_position = position
    if worst is None:
        return RuleOutcome(
            rule, "PASS", None,
            f"{len(values)} samples, all inside warmup",
        )
    if abs(worst) > rule.zscore_max:
        return RuleOutcome(
            rule, "FAIL", worst,
            f"iteration {worst_position}: |z|={abs(worst):.2f} "
            f"> {rule.zscore_max:g}",
        )
    return RuleOutcome(
        rule, "PASS", worst,
        f"worst |z|={abs(worst):.2f} at iteration {worst_position}",
    )


def _eval_history(
    rule: SloRule,
    indicators: Dict,
    summary: Dict,
    history: Sequence[Dict],
) -> RuleOutcome:
    value = indicators.get(rule.metric)
    if value is None:
        value = _lookup(summary, rule.metric)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return _missing(rule, f"metric {rule.metric!r}")
    prior = []
    for prior_summary in list(history)[-rule.history:]:
        prior_value = _lookup(prior_summary, rule.metric)
        if isinstance(prior_value, (int, float)) and not isinstance(
            prior_value, bool
        ):
            prior.append(float(prior_value))
    if len(prior) < MIN_HISTORY:
        return RuleOutcome(
            rule, "SKIP", float(value),
            f"{len(prior)} comparable prior runs (need "
            f">= {MIN_HISTORY})",
        )
    mean = sum(prior) / len(prior)
    var = sum((p - mean) ** 2 for p in prior) / len(prior)
    std = math.sqrt(var)
    if std <= 1e-12:
        score = 0.0 if abs(float(value) - mean) <= 1e-12 else math.inf
    else:
        score = (float(value) - mean) / std
    if abs(score) > rule.zscore_max:
        return RuleOutcome(
            rule, "FAIL", score,
            f"observed {float(value):g} vs mean {mean:g} over "
            f"{len(prior)} runs: |z|={abs(score):.2f} "
            f"> {rule.zscore_max:g}",
        )
    return RuleOutcome(
        rule, "PASS", score,
        f"|z|={abs(score):.2f} over {len(prior)} runs",
    )


def evaluate(
    policy: SloPolicy,
    summary: Dict,
    timeseries: Optional[Dict] = None,
    history: Optional[Sequence[Dict]] = None,
    subject: str = "",
) -> SloReport:
    """Evaluate every rule of ``policy`` against one run.

    ``summary``/``timeseries`` describe the run under test;
    ``history`` is a list of *prior* comparable run summaries (oldest
    first) for history rules. Missing inputs degrade per-rule
    (FAIL when ``required``, SKIP otherwise) — never raise.
    """
    timeseries = timeseries or {}
    indicators = slo_indicators(summary, timeseries)
    report = SloReport(subject=subject)
    for rule in policy.rules:
        if rule.kind == "series":
            outcome = _eval_series(rule, timeseries)
        elif rule.kind == "history":
            outcome = _eval_history(
                rule, indicators, summary, history or []
            )
        else:
            outcome = _eval_bound(rule, indicators, summary)
        report.outcomes.append(outcome)
    return report
