"""``repro top``: a terminal dashboard over live or recorded telemetry.

The serving-layer story needs an operator view: what are the GPUs
doing *right now*? :class:`TopModel` folds a ``repro-live/1`` event
stream (see :mod:`repro.obs.live`) into the current picture of a run —
per-GPU utilization, frontier size, steal traffic, chaos fault
counters — and :func:`render_frame` draws it as a fixed-width text
frame. Two drivers feed it:

* :func:`follow_stream` tails a live stream file, redrawing as span
  events arrive (the producer is a concurrently-running engine with a
  :class:`~repro.obs.live.StreamingSink`);
* :func:`replay_run` reconstructs the same event sequence from a
  recorded registry run's archived trace and plays it back, optionally
  paced at a multiple of the run's virtual time — the flight-recorder
  view of a run that already happened.

Both drivers share one model, so the live view and the replay of the
same run show identical numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = [
    "TopModel",
    "render_frame",
    "follow_stream",
    "replay_run",
    "trace_record_events",
]

#: Sparkline glyphs, lowest to highest.
_SPARKS = "▁▂▃▄▅▆▇█"

#: Frontier-history window kept for the sparkline.
_HISTORY = 60


@dataclass
class _GpuState:
    busy: float = 0.0
    stall: float = 0.0

    @property
    def utilization(self) -> float:
        total = self.busy + self.stall
        return self.busy / total if total > 0 else 0.0


@dataclass
class TopModel:
    """Current state of a run, folded from stream events."""

    meta: Dict[str, object] = field(default_factory=dict)
    iteration: Optional[int] = None
    frontier_size: int = 0
    frontier_edges: int = 0
    group_size: Optional[int] = None
    fsteal_iterations: int = 0
    stolen_edges: int = 0
    virtual_seconds: float = 0.0
    supersteps: int = 0
    chaos_counts: Dict[str, int] = field(default_factory=dict)
    gpus: Dict[int, _GpuState] = field(default_factory=dict)
    frontier_history: List[int] = field(default_factory=list)
    last_snapshot: Optional[Dict] = None
    ended: bool = False

    def feed(self, event: Dict) -> bool:
        """Fold one stream event in; True when the frame changed."""
        if event.get("format"):
            self.meta = {
                k: v for k, v in event.items()
                if k not in ("format", "version")
            }
            num_gpus = self.meta.get("num_gpus")
            if isinstance(num_gpus, int):
                for gpu in range(num_gpus):
                    self.gpus.setdefault(gpu, _GpuState())
            return True
        kind = event.get("event")
        if kind == "metrics":
            self.last_snapshot = event.get("snapshot")
            return False
        if kind == "end":
            self.ended = True
            return True
        if kind != "span" and "name" not in event:
            return False
        return self._feed_span(event)

    def _feed_span(self, event: Dict) -> bool:
        name = event.get("name")
        attrs = event.get("attrs") or {}
        if event.get("cat") == "chaos":
            short = str(name).removeprefix("chaos.")
            self.chaos_counts[short] = self.chaos_counts.get(short, 0) + 1
            return True
        if name == "superstep":
            self.supersteps += 1
            self.iteration = attrs.get("iteration", self.iteration)
            self.frontier_size = attrs.get(
                "frontier_size", self.frontier_size
            )
            self.frontier_edges = attrs.get(
                "frontier_edges", self.frontier_edges
            )
            self.group_size = attrs.get("group_size", self.group_size)
            if attrs.get("fsteal"):
                self.fsteal_iterations += 1
            self.stolen_edges += int(attrs.get("stolen_edges") or 0)
            start = event.get("virtual_start")
            dur = event.get("virtual_dur")
            if start is not None and dur is not None:
                self.virtual_seconds = max(
                    self.virtual_seconds, float(start) + float(dur)
                )
            self.frontier_history.append(int(self.frontier_size))
            del self.frontier_history[:-_HISTORY]
            return True
        if name in ("busy", "stall"):
            gpu = attrs.get("gpu")
            if gpu is None:
                track = str(event.get("track", ""))
                if track.startswith("gpu") and track[3:].isdigit():
                    gpu = int(track[3:])
            if gpu is None:
                return False
            state = self.gpus.setdefault(int(gpu), _GpuState())
            dur = float(event.get("virtual_dur") or 0.0)
            if name == "busy":
                state.busy += dur
            else:
                state.stall += dur
            return False  # the superstep span triggers the redraw
        return False


def _snapshot_value(
    snapshot: Optional[Dict], name: str
) -> Optional[float]:
    """One instrument's scalar out of a registry snapshot.

    Counters expose ``total``, gauges ``value``, timeseries ``last`` —
    whichever the named instrument carries. ``None`` when the metric
    (or the snapshot itself) is absent.
    """
    if not snapshot:
        return None
    instrument = snapshot.get(name)
    if not isinstance(instrument, dict):
        return None
    for key in ("value", "total", "last"):
        if instrument.get(key) is not None:
            return float(instrument[key])
    return None


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "█" * filled + "·" * (width - filled)


def _sparkline(values: List[int], width: int = 24) -> str:
    if not values:
        return ""
    tail = values[-width:]
    peak = max(tail) or 1
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int(v / peak * (len(_SPARKS) - 1)))]
        for v in tail
    )


def render_frame(model: TopModel, width: int = 72) -> str:
    """Draw the model as one fixed-width text frame."""
    meta = model.meta
    title_bits = [
        str(meta.get(key))
        for key in ("engine", "algorithm", "graph")
        if meta.get(key)
    ]
    title = "/".join(title_bits) or "repro run"
    status = "done" if model.ended else "live"
    lines = [
        f"repro top — {title} [{status}]".ljust(width),
        (
            f"iter {model.iteration if model.iteration is not None else '-'}"
            f"  virtual {model.virtual_seconds * 1e3:.2f} ms"
            f"  frontier {model.frontier_size}"
            f" ({model.frontier_edges} edges)"
        ).ljust(width),
        (
            f"group {model.group_size if model.group_size is not None else '-'}"
            f"  fsteal iters {model.fsteal_iterations}"
            f"  stolen edges {model.stolen_edges}"
        ).ljust(width),
    ]
    spark = _sparkline(model.frontier_history)
    if spark:
        lines.append(f"frontier {spark}".ljust(width))
    for gpu in sorted(model.gpus):
        state = model.gpus[gpu]
        util = state.utilization
        lines.append(
            f"gpu{gpu:<3d} {_bar(util)} {util * 100:5.1f}%  "
            f"busy {state.busy * 1e3:9.2f} ms  "
            f"stall {state.stall * 1e3:8.2f} ms".ljust(width)
        )
    if model.chaos_counts:
        faults = "  ".join(
            f"{kind}:{count}"
            for kind, count in sorted(model.chaos_counts.items())
        )
        lines.append(f"chaos  {faults}".ljust(width))
    snapshot = model.last_snapshot
    workers = _snapshot_value(snapshot, "backend.workers")
    if workers is not None:
        tasks = _snapshot_value(snapshot, "backend.tasks") or 0
        dispatch = _snapshot_value(snapshot, "backend.dispatch_seconds")
        collect = _snapshot_value(snapshot, "backend.collect_seconds")
        startup = _snapshot_value(snapshot, "backend.startup_seconds")
        lines.append(
            f"backend  {int(workers)} workers  {int(tasks)} tasks  "
            f"startup {(startup or 0) * 1e3:.1f} ms  "
            f"dispatch {(dispatch or 0) * 1e3:.1f} ms  "
            f"collect {(collect or 0) * 1e3:.1f} ms".ljust(width)
        )
    entries = _snapshot_value(snapshot, "ledger.entries")
    if entries is not None:
        rmsre = _snapshot_value(snapshot, "ledger.rmsre_series")
        drift = _snapshot_value(snapshot, "ledger.drift_z")
        samples = _snapshot_value(snapshot, "ledger.samples") or 0
        skipped = _snapshot_value(snapshot, "ledger.skipped_samples") or 0
        lines.append(
            f"ledger   {int(entries)} decisions  "
            f"{int(samples)} samples ({int(skipped)} skipped)  "
            f"rmsre {rmsre:.4f}  "
            f"drift z {drift:+.2f}".ljust(width)
            if rmsre is not None and drift is not None else
            f"ledger   {int(entries)} decisions  "
            f"{int(samples)} samples ({int(skipped)} skipped)".ljust(width)
        )
    return "\n".join(lines)


def trace_record_events(
    header: Dict, records: List[Dict]
) -> List[Dict]:
    """Rebuild a run's stream events from its archived trace records.

    The replay equivalent of what a :class:`StreamingSink` saw live:
    a header, then per iteration the ``busy``/``stall`` worker spans
    and the ``superstep`` span (superstep last, mirroring live
    emission order closely enough for the dashboard — per-iteration
    ordering within a superstep does not change any rendered number).
    """
    events: List[Dict] = [{
        "format": "repro-live", "version": 1, **header,
    }]
    clock = 0.0
    for record in records:
        wall = float(record.get("wall_ms", 0.0)) / 1e3
        busy_ms = record.get("busy_ms") or []
        stall_ms = record.get("stall_ms") or []
        for gpu in record.get("active_workers") or []:
            busy = float(busy_ms[gpu]) / 1e3 if gpu < len(busy_ms) else 0.0
            stall = (
                float(stall_ms[gpu]) / 1e3 if gpu < len(stall_ms) else 0.0
            )
            if busy > 0:
                events.append({
                    "event": "span", "name": "busy",
                    "track": f"gpu{gpu}", "cat": "worker",
                    "virtual_start": clock, "virtual_dur": busy,
                    "attrs": {"iteration": record.get("iteration"),
                              "gpu": gpu},
                })
            if stall > 0:
                events.append({
                    "event": "span", "name": "stall",
                    "track": f"gpu{gpu}", "cat": "worker",
                    "virtual_start": clock + busy, "virtual_dur": stall,
                    "attrs": {"iteration": record.get("iteration"),
                              "gpu": gpu},
                })
        events.append({
            "event": "span", "name": "superstep",
            "track": "coordinator", "cat": "superstep",
            "virtual_start": clock, "virtual_dur": wall,
            "attrs": {
                "iteration": record.get("iteration"),
                "frontier_size": record.get("frontier_size"),
                "frontier_edges": record.get("frontier_edges"),
                "fsteal": record.get("fsteal"),
                "group_size": record.get("group_size"),
                "stolen_edges": record.get("stolen_edges"),
            },
        })
        clock += wall
    events.append({"event": "end", "spans": len(events) - 1})
    return events


def _emit_frame(
    model: TopModel, write: Callable[[str], None], ansi: bool
) -> None:
    frame = render_frame(model)
    if ansi:
        write("\x1b[2J\x1b[H" + frame + "\n")
    else:
        write(frame + "\n\n")


def replay_run(
    header: Dict,
    records: List[Dict],
    write: Callable[[str], None],
    speed: float = 0.0,
    frames: Optional[int] = None,
    ansi: bool = True,
) -> TopModel:
    """Replay archived trace records into dashboard frames.

    ``speed`` paces playback at that multiple of the run's virtual
    time (0 = as fast as possible); ``frames`` caps the number of
    redraws (handy for CI smoke tests); a final frame is always drawn.
    """
    model = TopModel()
    drawn = 0
    for event in trace_record_events(header, records):
        changed = model.feed(event)
        if not changed or model.ended:
            continue
        if frames is not None and drawn >= frames:
            continue
        if speed > 0 and event.get("name") == "superstep":
            time.sleep(float(event.get("virtual_dur") or 0.0) / speed)
        _emit_frame(model, write, ansi)
        drawn += 1
    _emit_frame(model, write, ansi)
    return model


def follow_stream(
    path,
    write: Callable[[str], None],
    follow: bool = False,
    ansi: bool = True,
    poll_seconds: float = 0.2,
    timeout: Optional[float] = None,
    frames: Optional[int] = None,
) -> TopModel:
    """Tail a recorded or still-growing live-stream file into frames.

    Without ``follow`` the file is read once and the final frame drawn.
    With ``follow`` the file is polled until the producer writes its
    ``end`` event (or ``timeout`` seconds pass). Unparseable trailing
    data is treated as "producer mid-write" and retried.
    """
    from repro.obs.live import iter_stream_lines

    model = TopModel()
    consumed = 0
    deadline = (
        time.monotonic() + timeout if timeout is not None else None
    )
    drawn = 0
    while True:
        events = list(iter_stream_lines(path))
        for event in events[consumed:]:
            changed = model.feed(event)
            if changed and not model.ended and follow:
                if frames is None or drawn < frames:
                    _emit_frame(model, write, ansi)
                    drawn += 1
        consumed = len(events)
        if model.ended or not follow:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        time.sleep(poll_seconds)
    _emit_frame(model, write, ansi)
    return model
