"""Structured tracing: nestable spans over two clocks.

The runtime runs on a *virtual* clock (simulated GPU seconds) while the
arbitrator's decision code runs on the *host* clock (real wall time of
the MILP solves, cost-model predictions, ...). A :class:`SpanRecord`
can carry either or both, so one trace tells the paper's two stories at
once: the Figure 1/8 per-GPU timeline (virtual) and the Table IV
decision-overhead story (host).

Usage::

    tracer = Tracer(sinks=[InMemorySink()])
    with tracer.span("fsteal.milp", solver="greedy") as sp:
        solution = solver.solve(problem)
        sp.set(objective=solution.objective)
    tracer.virtual_span("busy", start=t, dur=busy_j, track=f"gpu{j}")

Call sites in hot paths guard on ``tracer.enabled`` before computing
attributes; :data:`NULL_TRACER` (the default everywhere) makes every
operation a no-op so an uninstrumented run pays nothing but a handful
of attribute reads.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "SpanRecord",
    "Span",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]

#: Track (Chrome "process") the coordinator's decisions render on.
COORDINATOR_TRACK = "coordinator"


@dataclass(slots=True)
class SpanRecord:
    """One completed span or instant event.

    ``wall_*`` are host seconds relative to the tracer's epoch;
    ``virtual_*`` are simulated seconds relative to the run's start.
    Either clock may be absent (``None``) — the engine's per-GPU
    busy/stall spans are purely virtual, the arbitrator's solver spans
    purely host-timed.
    """

    name: str
    track: str = "host"
    kind: str = "span"  # "span" | "instant"
    cat: str = "repro"
    wall_start: Optional[float] = None
    wall_dur: Optional[float] = None
    virtual_start: Optional[float] = None
    virtual_dur: Optional[float] = None
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (``None`` clocks omitted)."""
        out: Dict[str, object] = {
            "name": self.name,
            "track": self.track,
            "kind": self.kind,
            "cat": self.cat,
            "depth": self.depth,
        }
        if self.wall_start is not None:
            out["wall_start"] = self.wall_start
            out["wall_dur"] = self.wall_dur
        if self.virtual_start is not None:
            out["virtual_start"] = self.virtual_start
            out["virtual_dur"] = self.virtual_dur
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Span:
    """Live handle for an open span; records host time on exit."""

    __slots__ = ("_tracer", "_record", "_started")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record
        self._started = 0.0

    def set(self, **attrs) -> "Span":
        """Attach structured attributes to the span."""
        self._record.attrs.update(attrs)
        return self

    def set_virtual(self, start: float, dur: float) -> "Span":
        """Pin the span to the virtual clock as well."""
        self._record.virtual_start = float(start)
        self._record.virtual_dur = float(dur)
        return self

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        self._record.wall_start = self._started - self._tracer.epoch
        self._record.depth = self._tracer._enter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._record.wall_dur = time.perf_counter() - self._started
        self._tracer._exit()
        self._tracer.emit(self._record)
        return False


class Sink:
    """Receives completed records; subclasses define where they go."""

    def emit(self, record: SpanRecord) -> None:
        """Consume one completed record."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class InMemorySink(Sink):
    """Keeps every record in a list (tests, reporting, Chrome export)."""

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []

    def emit(self, record: SpanRecord) -> None:
        """Consume one completed record."""
        self.records.append(record)


class JsonlSink(Sink):
    """Streams records as JSON lines; the first line is a header."""

    def __init__(self, path: Union[str, Path],
                 meta: Optional[Dict[str, object]] = None) -> None:
        self._path = Path(path)
        self._handle = open(self._path, "w")
        header = {"format": "repro-trace", "version": 1}
        header.update(meta or {})
        self._handle.write(json.dumps(header) + "\n")

    @property
    def path(self) -> Path:
        """Destination file."""
        return self._path

    def emit(self, record: SpanRecord) -> None:
        """Consume one completed record."""
        self._handle.write(json.dumps(record.as_dict()) + "\n")

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        if not self._handle.closed:
            self._handle.close()


class Tracer:
    """Span factory fanning completed records out to sinks.

    Parameters
    ----------
    sinks:
        Initial destinations; more can be attached with
        :meth:`add_sink`.
    meta:
        Run-level annotations exported alongside the trace (engine,
        graph, algorithm, ...).
    """

    enabled: bool = True

    def __init__(
        self,
        sinks: Optional[List[Sink]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self._sinks: List[Sink] = list(sinks or [])
        self.meta: Dict[str, object] = dict(meta or {})
        self.epoch = time.perf_counter()
        self._depth = 0

    # -- span construction ---------------------------------------------
    def span(self, name: str, track: str = "host", cat: str = "repro",
             **attrs) -> Span:
        """Open a host-timed span (use as a context manager)."""
        return Span(self, SpanRecord(name=name, track=track, cat=cat,
                                     attrs=dict(attrs)))

    def virtual_span(
        self,
        name: str,
        start: float,
        dur: float,
        track: str = COORDINATOR_TRACK,
        cat: str = "virtual",
        **attrs,
    ) -> None:
        """Record a span measured on the virtual clock (no host time)."""
        self.emit(SpanRecord(
            name=name, track=track, cat=cat,
            virtual_start=float(start), virtual_dur=float(dur),
            attrs=dict(attrs),
        ))

    def instant(
        self,
        name: str,
        track: str = COORDINATOR_TRACK,
        cat: str = "virtual",
        virtual_ts: Optional[float] = None,
        **attrs,
    ) -> None:
        """Record a zero-duration marker event."""
        record = SpanRecord(name=name, track=track, kind="instant",
                            cat=cat, attrs=dict(attrs))
        if virtual_ts is not None:
            record.virtual_start = float(virtual_ts)
            record.virtual_dur = 0.0
        else:
            record.wall_start = time.perf_counter() - self.epoch
            record.wall_dur = 0.0
        self.emit(record)

    # -- plumbing -------------------------------------------------------
    def _enter(self) -> int:
        depth = self._depth
        self._depth += 1
        return depth

    def _exit(self) -> None:
        self._depth = max(0, self._depth - 1)

    def emit(self, record: SpanRecord) -> None:
        """Deliver a completed record to every sink."""
        for sink in self._sinks:
            sink.emit(record)

    def add_sink(self, sink: Sink) -> None:
        """Attach another destination."""
        self._sinks.append(sink)

    @property
    def sinks(self) -> List[Sink]:
        """Attached destinations."""
        return list(self._sinks)

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self._sinks:
            sink.close()


class _NullSpan:
    """Reusable no-op span handle."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def set_virtual(self, start: float, dur: float) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: every operation is a no-op.

    The single shared instance :data:`NULL_TRACER` is the default
    everywhere, so uninstrumented runs never allocate records. The
    acceptance bound (tracing off must not move ``total_ms``) holds by
    construction: virtual time is charged by the timing model, never by
    the tracer.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, track: str = "host", cat: str = "repro",
             **attrs) -> Span:
        """Return the shared no-op span handle."""
        return _NULL_SPAN  # type: ignore[return-value]

    def virtual_span(self, name, start, dur, track=COORDINATOR_TRACK,
                     cat="virtual", **attrs) -> None:
        """No-op."""

    def instant(self, name, track=COORDINATOR_TRACK, cat="virtual",
                virtual_ts=None, **attrs) -> None:
        """No-op."""

    def emit(self, record: SpanRecord) -> None:
        """No-op."""

    def add_sink(self, sink: Sink) -> None:
        """Reject sinks: a null tracer would silently drop records."""
        raise ValueError("cannot attach sinks to NULL_TRACER; "
                         "construct a Tracer instead")


#: Shared disabled tracer — the default for every engine and scheduler.
NULL_TRACER = NullTracer()
