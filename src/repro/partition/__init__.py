"""Edge-cut partitioning: structures, partitioners, quality metrics."""

from repro.partition.base import Partition
from repro.partition.partitioners import (
    PARTITIONERS,
    make_partition,
    metis_like_partition,
    random_partition,
    segmented_partition,
)
from repro.partition.quality import (
    PartitionQuality,
    edge_balance,
    edge_cut_fraction,
    evaluate_partition,
    replication_factor,
)

__all__ = [
    "Partition",
    "random_partition",
    "segmented_partition",
    "metis_like_partition",
    "make_partition",
    "PARTITIONERS",
    "PartitionQuality",
    "evaluate_partition",
    "edge_balance",
    "edge_cut_fraction",
    "replication_factor",
]
