"""Edge-cut graph partitions.

The paper (Section II) uses edge-cut partitioning: every vertex — and
with it, its out-adjacency list — is owned by exactly one fragment.
"Inner" vertices are the owned ones; destinations of cross-fragment
edges are kept as "outer" (ghost) vertices for message aggregation.

:class:`Partition` is a validated owner map plus cached per-fragment
views. Ownership is *initial* placement: at runtime OSteal reassigns
whole fragments to other workers, which is tracked by the engines, not
by mutating this object.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph

__all__ = ["Partition"]


class Partition:
    """An n-way edge-cut partition of a graph's vertex set.

    Parameters
    ----------
    graph:
        The partitioned graph (kept by reference for edge accounting).
    owner:
        ``int64`` array mapping every vertex to a fragment id in
        ``[0, num_fragments)``.
    num_fragments:
        Number of fragments (workers). Fragments may be empty.
    name:
        Label of the producing partitioner, for reports.
    """

    def __init__(
        self,
        graph: CSRGraph,
        owner: np.ndarray,
        num_fragments: int,
        name: str = "partition",
    ) -> None:
        owner = np.ascontiguousarray(owner, dtype=np.int64)
        if owner.shape != (graph.num_vertices,):
            raise PartitionError(
                f"owner array has shape {owner.shape}, expected "
                f"({graph.num_vertices},)"
            )
        if num_fragments < 1:
            raise PartitionError("need at least one fragment")
        if owner.size and (owner.min() < 0 or owner.max() >= num_fragments):
            raise PartitionError("owner ids out of range")
        owner.setflags(write=False)
        self._graph = graph
        self._owner = owner
        self._k = int(num_fragments)
        self._name = str(name)
        self._vertices_cache: List[np.ndarray] | None = None
        self._edges_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        """The partitioned graph."""
        return self._graph

    @property
    def owner(self) -> np.ndarray:
        """Read-only vertex → fragment owner array."""
        return self._owner

    @property
    def num_fragments(self) -> int:
        """Number of fragments ``n``."""
        return self._k

    @property
    def name(self) -> str:
        """Partitioner label."""
        return self._name

    def __repr__(self) -> str:
        return (
            f"Partition(name={self._name!r}, k={self._k}, "
            f"|V|={self._graph.num_vertices})"
        )

    # ------------------------------------------------------------------
    def vertices_of(self, fragment: int) -> np.ndarray:
        """Inner vertices of one fragment (sorted, cached)."""
        if self._vertices_cache is None:
            order = np.argsort(self._owner, kind="stable")
            boundaries = np.searchsorted(
                self._owner[order], np.arange(self._k + 1)
            )
            self._vertices_cache = [
                order[boundaries[i]: boundaries[i + 1]]
                for i in range(self._k)
            ]
        return self._vertices_cache[fragment]

    def fragment_sizes(self) -> np.ndarray:
        """Number of inner vertices per fragment."""
        return np.bincount(self._owner, minlength=self._k).astype(np.int64)

    def fragment_edges(self) -> np.ndarray:
        """Number of owned out-edges per fragment (cached)."""
        if self._edges_cache is None:
            degrees = self._graph.out_degrees()
            counts = np.zeros(self._k, dtype=np.int64)
            np.add.at(counts, self._owner, degrees)
            counts.setflags(write=False)
            self._edges_cache = counts
        return self._edges_cache

    def outer_vertices_of(self, fragment: int) -> np.ndarray:
        """Ghost vertices: cross-edge destinations not owned locally."""
        inner = self.vertices_of(fragment)
        if inner.size == 0:
            return inner
        indptr, indices = self._graph.indptr, self._graph.indices
        chunks = [
            indices[indptr[v]: indptr[v + 1]] for v in inner.tolist()
        ]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        destinations = np.unique(np.concatenate(chunks))
        return destinations[self._owner[destinations] != fragment]

    # ------------------------------------------------------------------
    def split_frontier(self, frontier: np.ndarray) -> List[np.ndarray]:
        """Split a global frontier into per-fragment frontiers.

        Returns a list of ``num_fragments`` sorted vertex arrays whose
        disjoint union is ``frontier`` — the distributed frontier
        ``f_i^k`` of the paper.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        owners = self._owner[frontier]
        order = np.argsort(owners, kind="stable")
        sorted_frontier = frontier[order]
        boundaries = np.searchsorted(
            owners[order], np.arange(self._k + 1)
        )
        return [
            np.sort(sorted_frontier[boundaries[i]: boundaries[i + 1]])
            for i in range(self._k)
        ]

    def validate(self) -> None:
        """Check the cover/disjoint invariants; raise on violation.

        Edge-cut invariants hold by construction (single owner array),
        so this only re-checks ranges — exposed for tests and for
        partitions deserialized from user input.
        """
        if self._owner.size and (
            self._owner.min() < 0 or self._owner.max() >= self._k
        ):
            raise PartitionError("owner ids out of range")
