"""The three partitioner families evaluated in the paper (Exp-6).

* :func:`random_partition` — the trivial hash partitioner ("random");
  destroys locality, balances vertices in expectation. Used as the
  default for the main comparison (Exp-1) to neutralize partitioning
  effects across systems, as the paper does.
* :func:`segmented_partition` — the locality-aware "seq" partitioner:
  contiguous vertex-id ranges with equal *edge* counts (prefix-sum
  split). Preserves generator/crawl locality; prone to the
  "cocooning effect" the paper describes.
* :func:`metis_like_partition` — a multilevel-flavoured stand-in for
  METIS: BFS-grown fragments with an edge budget, followed by greedy
  boundary refinement that reduces edge-cut under a balance constraint.
  Not the real METIS (unavailable offline), but optimizes the same
  objective (min cut, balanced edges), which is all Exp-6 requires.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.partition.base import Partition

__all__ = [
    "random_partition",
    "segmented_partition",
    "metis_like_partition",
    "make_partition",
    "PARTITIONERS",
]


def _check_k(graph: CSRGraph, num_fragments: int) -> None:
    if num_fragments < 1:
        raise PartitionError("need at least one fragment")
    if graph.num_vertices == 0 and num_fragments > 1:
        raise PartitionError("cannot split an empty graph")


def random_partition(
    graph: CSRGraph, num_fragments: int, seed: Optional[int] = 0
) -> Partition:
    """Assign each vertex to a uniformly random fragment (seeded)."""
    _check_k(graph, num_fragments)
    rng = np.random.default_rng(seed)
    owner = rng.integers(
        0, num_fragments, size=graph.num_vertices, dtype=np.int64
    )
    return Partition(graph, owner, num_fragments, name="random")


def segmented_partition(graph: CSRGraph, num_fragments: int) -> Partition:
    """Contiguous vertex ranges with (approximately) equal edge counts.

    Splits the out-degree prefix sum at multiples of ``|E| / n``:
    adjacent vertices stay together ("seq" locality) and every fragment
    owns about the same number of edges.
    """
    _check_k(graph, num_fragments)
    n = graph.num_vertices
    owner = np.zeros(n, dtype=np.int64)
    if n == 0 or num_fragments == 1:
        return Partition(graph, owner, num_fragments, name="seg")
    prefix = graph.indptr[1:].astype(np.float64)  # edges up to vertex v
    total = float(graph.num_edges)
    if total == 0:
        # no edges: fall back to equal vertex ranges
        owner = np.minimum(
            (np.arange(n) * num_fragments) // max(1, n), num_fragments - 1
        ).astype(np.int64)
        return Partition(graph, owner, num_fragments, name="seg")
    targets = total * np.arange(1, num_fragments) / num_fragments
    boundaries = np.searchsorted(prefix, targets, side="left") + 1
    owner = np.searchsorted(boundaries, np.arange(n), side="right").astype(
        np.int64
    )
    return Partition(graph, owner, num_fragments, name="seg")


def metis_like_partition(
    graph: CSRGraph,
    num_fragments: int,
    seed: Optional[int] = 0,
    refine_passes: int = 2,
    balance_slack: float = 0.05,
) -> Partition:
    """BFS-grown, cut-refined partition (METIS stand-in).

    Phase 1 grows fragments one at a time from unassigned seed vertices
    by BFS until the fragment reaches its edge budget — this keeps
    topologically-close vertices together (low cut). Phase 2 runs
    greedy Kernighan-Lin-style refinement: boundary vertices move to
    the neighboring fragment where most of their edges point, when the
    move reduces cut and respects the edge-balance slack.
    """
    _check_k(graph, num_fragments)
    n = graph.num_vertices
    if num_fragments == 1 or n == 0:
        return Partition(
            graph, np.zeros(n, dtype=np.int64), num_fragments, name="metis"
        )
    rng = np.random.default_rng(seed)
    degrees = graph.out_degrees()
    budget = graph.num_edges / num_fragments
    owner = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices

    visit_order = rng.permutation(n)
    cursor = 0
    for frag in range(num_fragments - 1):
        # find an unassigned seed
        while cursor < n and owner[visit_order[cursor]] >= 0:
            cursor += 1
        if cursor >= n:
            break
        seed_vertex = int(visit_order[cursor])
        frontier = [seed_vertex]
        owner[seed_vertex] = frag
        edges_taken = int(degrees[seed_vertex])
        while frontier and edges_taken < budget:
            next_frontier: list[int] = []
            for v in frontier:
                for u in indices[indptr[v]: indptr[v + 1]].tolist():
                    if owner[u] < 0:
                        owner[u] = frag
                        edges_taken += int(degrees[u])
                        next_frontier.append(u)
                        if edges_taken >= budget:
                            break
                if edges_taken >= budget:
                    break
            frontier = next_frontier
    # Leftover vertices go to the currently lightest fragment (by
    # edges), heaviest vertices first — plain LPT balancing.
    frag_edges = np.zeros(num_fragments, dtype=np.int64)
    assigned = owner >= 0
    np.add.at(frag_edges, owner[assigned], degrees[assigned])
    leftovers = np.flatnonzero(~assigned)
    for v in leftovers[np.argsort(-degrees[leftovers])].tolist():
        target = int(np.argmin(frag_edges))
        owner[v] = target
        frag_edges[target] += int(degrees[v])

    # --- Phase 2: greedy boundary refinement -------------------------
    max_edges = (1.0 + balance_slack) * graph.num_edges / num_fragments
    for __ in range(max(0, refine_passes)):
        src, dst = graph.edge_array()
        cross = owner[src] != owner[dst]
        boundary = np.unique(src[cross])
        moved = 0
        for v in boundary.tolist():
            neigh = indices[indptr[v]: indptr[v + 1]]
            if neigh.size == 0:
                continue
            counts = np.bincount(owner[neigh], minlength=num_fragments)
            best = int(np.argmax(counts))
            current = int(owner[v])
            if best == current:
                continue
            gain = int(counts[best] - counts[current])
            deg = int(degrees[v])
            if gain > 0 and frag_edges[best] + deg <= max_edges:
                owner[v] = best
                frag_edges[current] -= deg
                frag_edges[best] += deg
                moved += 1
        if moved == 0:
            break
    return Partition(graph, owner, num_fragments, name="metis")


#: Partitioner registry keyed by the paper's names (Exp-6 x-axis).
PARTITIONERS = {
    "random": random_partition,
    "seg": lambda graph, k, seed=0: segmented_partition(graph, k),
    "metis": metis_like_partition,
}


def make_partition(
    name: str, graph: CSRGraph, num_fragments: int, seed: Optional[int] = 0
) -> Partition:
    """Build a partition by registry name (``random``/``seg``/``metis``)."""
    try:
        factory = PARTITIONERS[name]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {name!r}; known: {sorted(PARTITIONERS)}"
        ) from None
    return factory(graph, num_fragments, seed=seed)
