"""Partition quality metrics.

The classic static criteria a partitioner optimizes — and which the
paper argues are *insufficient* because they cannot see runtime
frontier dynamics (Section II, "Graph partitions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.base import Partition

__all__ = ["PartitionQuality", "evaluate_partition", "edge_cut_fraction",
           "edge_balance", "replication_factor"]


def edge_balance(partition: Partition) -> float:
    """Max/mean ratio of fragment edge counts (1.0 = perfectly even)."""
    edges = partition.fragment_edges().astype(np.float64)
    mean = edges.mean()
    if mean == 0:
        return 1.0
    return float(edges.max() / mean)


def edge_cut_fraction(partition: Partition) -> float:
    """Fraction of edges whose endpoints live in different fragments."""
    graph = partition.graph
    if graph.num_edges == 0:
        return 0.0
    src, dst = graph.edge_array()
    owner = partition.owner
    return float(np.count_nonzero(owner[src] != owner[dst]) / graph.num_edges)


def replication_factor(partition: Partition) -> float:
    """Average number of fragments that must know each vertex.

    1.0 means no ghost (outer) copies at all; higher values cost ghost
    memory and message-aggregation state.
    """
    graph = partition.graph
    n = graph.num_vertices
    if n == 0:
        return 1.0
    total_copies = n  # every vertex has its inner copy
    for frag in range(partition.num_fragments):
        total_copies += partition.outer_vertices_of(frag).size
    return float(total_copies / n)


@dataclass(frozen=True)
class PartitionQuality:
    """Bundle of static quality metrics for one partition."""

    edge_balance: float
    edge_cut_fraction: float
    replication_factor: float

    def as_dict(self) -> dict:
        """Plain-dict view for reporting."""
        return {
            "edge_balance": self.edge_balance,
            "edge_cut_fraction": self.edge_cut_fraction,
            "replication_factor": self.replication_factor,
        }


def evaluate_partition(partition: Partition) -> PartitionQuality:
    """Compute all static quality metrics at once."""
    return PartitionQuality(
        edge_balance=edge_balance(partition),
        edge_cut_fraction=edge_cut_fraction(partition),
        replication_factor=replication_factor(partition),
    )
