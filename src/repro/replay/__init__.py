"""Trace replay: re-execute recorded runs under modified models.

See :mod:`repro.replay.simulator` for the semantics. The headline
invariant: replaying a recorded run under its *original* cost model is
bit-identical to the recording in virtual-time totals — the
``repro replay --check`` gate CI runs against the committed reference
runs.
"""

from repro.replay.simulator import (
    REPLAY_SCHEMA,
    ReplayError,
    ReplayIteration,
    ReplayRunResult,
    format_replay_result,
    replay_run,
    resolve_replay_model,
)

__all__ = [
    "REPLAY_SCHEMA",
    "ReplayError",
    "ReplayIteration",
    "ReplayRunResult",
    "format_replay_result",
    "replay_run",
    "resolve_replay_model",
]
