"""The replay simulator: recorded decision sequences, swapped physics.

PR 3's what-if analytics (:mod:`repro.obs.analysis`) re-simulate a
run's span DAG under *hardware* hypotheticals. This module generalizes
that to the quantities cost-model v2 cares about: re-execute a recorded
run's decision sequence under a **modified cost model** (an artifact
from ``repro costmodel fit``) and/or a **modified topology**, and
attribute per-iteration virtual-time error — the model's predicted
critical compute against the ledger-measured one — per superstep and
per GPU.

The replay is a pure function of the archived run (trace + ledger), so
it is deterministic, and it is *anchored*: each iteration's replayed
wall is the recorded wall with the original model's predicted critical
compute substituted for the candidate model's,

    replayed_wall(k) = wall(k) + predicted_ms(candidate, k)
                               - predicted_ms(original, k)

where ``predicted_ms(original, k)`` is recomputed from the ledger's
*stored* per-sample predictions with the exact accumulation the
arbitrator used. Under the original model the substitution term is
identically zero term by term, so the replayed per-iteration walls —
and their total — are **bit-identical** to the recording. That is the
pinned invariant (``repro replay --check``), alongside two more
byte-level checks: the no-op span-DAG replay reproduces the recorded
walls, and the ledger's sealed online RMSRE reconstructs exactly.

A topology override scales each iteration's communication attribution
by the ratio of mean effective interconnect bandwidth (recorded
machine over hypothetical machine); an identical topology yields a
ratio of exactly 1.0 and changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.costmodel import CostModel, pretrained_default
from repro.errors import ReproError, TopologyError
from repro.hardware.topology import Topology, parse_topology
from repro.obs import analysis
from repro.obs.ledger import Ledger, reconstruct_rmsre
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "REPLAY_SCHEMA",
    "ReplayError",
    "ReplayIteration",
    "ReplayRunResult",
    "format_replay_result",
    "replay_run",
    "resolve_replay_model",
]

REPLAY_SCHEMA = "repro-replay/1"


class ReplayError(ReproError):
    """A recorded run that cannot be replayed (no ledger, bad ref)."""


def resolve_replay_model(spec: Union[str, CostModel]) -> CostModel:
    """A usable cost model from a CLI ``--cost-model`` operand.

    Accepts a fitted :class:`CostModel`, ``"default"`` (the shipped
    pretrained polynomial), ``"uniform"``, or a path to a
    ``repro-costmodel/1`` artifact. ``"oracle"`` is rejected — the
    oracle reads the simulated device, which a replay does not have.
    """
    if isinstance(spec, CostModel):
        return spec
    if spec == "default":
        return pretrained_default()
    if spec == "uniform":
        from repro.core.costmodel import UniformCostModel

        return UniformCostModel()
    if spec == "oracle":
        raise ReplayError(
            "the oracle model reads the simulated device and cannot "
            "be replayed offline; use 'default', 'uniform', or a "
            "repro-costmodel/1 artifact path"
        )
    from repro.core.costmodel_v2 import load_artifact

    return load_artifact(spec)


def _model_label(model: Optional[CostModel]) -> Optional[str]:
    if model is None:
        return None
    return getattr(model, "artifact_label", None) or model.name


@dataclass
class ReplayIteration:
    """One superstep of the replay, recorded vs replayed."""

    iteration: int
    recorded_wall_ms: float
    replayed_wall_ms: float
    #: original model's predicted critical compute (from stored samples)
    original_predicted_ms: Optional[float]
    #: candidate model's predicted critical compute (None = no override)
    model_predicted_ms: Optional[float]
    #: ledger-measured critical busy compute
    measured_ms: Optional[float]
    #: recorded-model decision error, (predicted - measured) / measured
    recorded_error: Optional[float]
    #: candidate-model decision error under the same measurement
    model_error: Optional[float]
    samples: int = 0
    communication_delta_ms: float = 0.0

    @property
    def delta_ms(self) -> float:
        """Replayed minus recorded wall for this superstep."""
        return self.replayed_wall_ms - self.recorded_wall_ms

    def as_dict(self) -> dict:
        """JSON-friendly view."""
        return {
            "iteration": self.iteration,
            "recorded_wall_ms": float(self.recorded_wall_ms),
            "replayed_wall_ms": float(self.replayed_wall_ms),
            "delta_ms": float(self.delta_ms),
            "original_predicted_ms": _opt(self.original_predicted_ms),
            "model_predicted_ms": _opt(self.model_predicted_ms),
            "measured_ms": _opt(self.measured_ms),
            "recorded_error": _opt(self.recorded_error),
            "model_error": _opt(self.model_error),
            "samples": int(self.samples),
            "communication_delta_ms": float(
                self.communication_delta_ms
            ),
        }


def _opt(value: Optional[float]) -> Optional[float]:
    return None if value is None else float(value)


@dataclass
class ReplayRunResult:
    """Outcome of :func:`replay_run` — totals, checks, attribution."""

    ref: str
    run_id: str
    model_label: Optional[str]
    topology_label: Optional[str]
    recorded_total_ms: float
    replayed_total_ms: float
    iterations: List[ReplayIteration]
    #: byte-level invariants of the original-model path, each True/False
    checks: Dict[str, bool]
    #: True iff no override was applied and every check passed — the
    #: ``repro replay --check`` gate
    bit_identical: bool
    #: sealed online RMSRE of the recording
    recorded_rmsre: Optional[float]
    #: RMSRE of the candidate model against the same ledger actuals
    model_rmsre: Optional[float]
    #: per-GPU candidate-model RMSRE (LedgerSamples provenance)
    by_gpu: Dict[int, dict] = field(default_factory=dict)

    @property
    def delta_ms(self) -> float:
        """Replayed minus recorded end-to-end virtual time."""
        return self.replayed_total_ms - self.recorded_total_ms

    def as_dict(self) -> dict:
        """JSON-friendly payload (``repro replay --json``)."""
        return {
            "schema": REPLAY_SCHEMA,
            "ref": self.ref,
            "run_id": self.run_id,
            "model": self.model_label,
            "topology": self.topology_label,
            "recorded_total_ms": float(self.recorded_total_ms),
            "replayed_total_ms": float(self.replayed_total_ms),
            "delta_ms": float(self.delta_ms),
            "bit_identical": bool(self.bit_identical),
            "checks": {k: bool(v) for k, v in self.checks.items()},
            "recorded_rmsre": _opt(self.recorded_rmsre),
            "model_rmsre": _opt(self.model_rmsre),
            "by_gpu": {
                str(gpu): dict(stats)
                for gpu, stats in sorted(self.by_gpu.items())
            },
            "iterations": [it.as_dict() for it in self.iterations],
        }


def _predicted_critical_seconds(
    samples: List[dict], predictions: Optional[np.ndarray] = None
) -> Optional[float]:
    """Max over per-worker sums of ``predicted * edges``.

    With ``predictions=None`` the stored per-sample predictions are
    used, accumulated in the exact order
    :meth:`repro.obs.ledger.Ledger._materialize` uses — so the result
    is bit-identical to the entry's stored ``predicted_seconds``.
    """
    per_worker: Dict[int, float] = {}
    for position, sample in enumerate(samples):
        predicted = (
            float(sample["predicted"]) if predictions is None
            else float(predictions[position])
        )
        worker = int(sample["worker"])
        per_worker[worker] = (
            per_worker.get(worker, 0.0)
            + predicted * int(sample["edges"])
        )
    if not per_worker:
        return None
    return float(max(per_worker.values()))


def _mean_offdiag_bandwidth(topology: Topology) -> float:
    matrix = topology.effective_bandwidth_matrix()
    n = matrix.shape[0]
    if n < 2:
        return float(matrix[0, 0])
    off = matrix[~np.eye(n, dtype=bool)]
    return float(off.mean())


def _topology_factor(
    manifest: dict, spec: Union[str, Topology]
) -> Tuple[float, str]:
    """Communication scale factor of a topology override.

    Ratio of the recorded machine's mean effective bandwidth to the
    hypothetical one's: halved bandwidth doubles communication time.
    """
    workload = manifest.get("fingerprint", {}).get("workload", {})
    recorded_spec = workload.get("topology", "default")
    num_gpus = workload.get("num_gpus")
    recorded = parse_topology(
        None if recorded_spec in (None, "default") else recorded_spec,
        None if num_gpus is None else int(num_gpus),
    )
    try:
        hypothetical = parse_topology(spec, recorded.num_gpus)
    except TopologyError as exc:
        raise ReplayError(
            f"topology override {spec!r} does not fit the recorded "
            f"run's {recorded.num_gpus} GPUs ({exc}); replay keeps "
            "the recorded decision sequence, so worker counts must "
            "match"
        ) from exc
    if hypothetical.num_gpus != recorded.num_gpus:
        raise ReplayError(
            f"topology override carries {hypothetical.num_gpus} GPUs "
            f"but the recorded run used {recorded.num_gpus}; replay "
            "keeps the recorded decision sequence, so worker counts "
            "must match"
        )
    factor = (
        _mean_offdiag_bandwidth(recorded)
        / _mean_offdiag_bandwidth(hypothetical)
    )
    return float(factor), hypothetical.name


def replay_run(
    registry,
    ref: str,
    cost_model: Optional[Union[str, CostModel]] = None,
    topology: Optional[Union[str, Topology]] = None,
    tracer: Tracer = NULL_TRACER,
) -> ReplayRunResult:
    """Replay one recorded run, optionally under modified physics.

    Parameters
    ----------
    registry:
        A :class:`repro.runs.registry.RunRegistry`; ``ref`` is any
        reference it resolves (id, prefix, ``latest``, or a run
        directory path such as ``benchmarks/reference/tx-bfs-4gpu``).
    cost_model:
        ``None`` replays under the original model (bit-identical by
        construction); otherwise anything
        :func:`resolve_replay_model` accepts.
    topology:
        ``None``, or a :func:`repro.hardware.parse_topology` selector
        to rescale the recorded communication time under.

    Requires the run to carry an archived decision ledger (GUM runs
    with ``GumConfig(ledger=True)``, the default); baseline-engine
    recordings raise :class:`ReplayError`.
    """
    with tracer.span("replay.simulate", cat="replay", ref=str(ref)):
        manifest = registry.load_manifest(ref)
        run_id = str(manifest.get("id", ref))
        source = registry.load_run_trace(ref)
        try:
            ledger = Ledger.from_dict(registry.load_ledger(ref))
        except ReproError as exc:
            raise ReplayError(
                f"run {run_id} has no decision ledger to replay "
                f"({exc}); replay needs a GUM run recorded with the "
                "ledger enabled"
            ) from exc
        model = (
            None if cost_model is None
            else resolve_replay_model(cost_model)
        )
        comm_factor = 1.0
        topology_label = None
        if topology is not None:
            comm_factor, topology_label = _topology_factor(
                manifest, topology
            )

        __, costs = analysis._costs(source)
        noop = analysis.replay(source)
        entries = {
            entry["iteration"]: entry for entry in ledger.entries
        }

        # candidate-model predictions over every recorded sample, in
        # one batch, addressed back by (iteration, position)
        predictions_by_iteration: Dict[int, np.ndarray] = {}
        if model is not None:
            rows: List[List[float]] = []
            spans: List[Tuple[int, int, int]] = []
            for iteration, entry in entries.items():
                start = len(rows)
                rows.extend(
                    sample["features"] for sample in entry["samples"]
                )
                spans.append((iteration, start, len(rows)))
            if rows:
                predicted = model.predict(
                    np.asarray(rows, dtype=np.float64)
                )
                for iteration, start, stop in spans:
                    predictions_by_iteration[iteration] = (
                        predicted[start:stop]
                    )

        iterations: List[ReplayIteration] = []
        predicted_consistent = True
        sq_sum = 0.0
        sq_n = 0
        by_gpu_rel: Dict[int, List[float]] = {}
        for position, cost in enumerate(costs):
            entry = entries.get(cost.iteration)
            samples = entry["samples"] if entry is not None else []
            original_pred = _predicted_critical_seconds(samples)
            if entry is not None and \
                    original_pred != entry["predicted_seconds"]:
                predicted_consistent = False
            model_pred = None
            model_error = None
            if model is not None and samples:
                predicted = predictions_by_iteration[cost.iteration]
                model_pred = _predicted_critical_seconds(
                    samples, predicted
                )
                for sample, value in zip(samples, predicted):
                    actual = sample["actual"]
                    if actual <= 0:
                        continue
                    rel = (float(value) - actual) / actual
                    sq_sum += rel * rel
                    sq_n += 1
                    by_gpu_rel.setdefault(
                        int(sample["worker"]), []
                    ).append(rel)
            measured = None
            recorded_error = None
            if entry is not None and entry["measured"] is not None:
                critical = entry["measured"]["critical_busy_seconds"]
                measured = critical * 1e3
                if original_pred is not None and critical > 0:
                    recorded_error = (
                        (original_pred - critical) / critical
                    )
                    if model_pred is not None:
                        model_error = (
                            (model_pred - critical) / critical
                        )
            wall = cost.wall_ms
            # model substitution: candidate predicted critical compute
            # replaces the original's; identically zero with no override
            if model_pred is not None and original_pred is not None:
                wall = wall + (model_pred - original_pred) * 1e3
            comm_delta = 0.0
            if comm_factor != 1.0:
                comm = (
                    cost.attribution_ms["communication"]
                    + cost.attribution_ms["stall"]
                )
                comm_delta = comm * (comm_factor - 1.0)
                wall = wall + comm_delta
            iterations.append(ReplayIteration(
                iteration=cost.iteration,
                recorded_wall_ms=cost.wall_ms,
                replayed_wall_ms=max(wall, 0.0),
                original_predicted_ms=(
                    None if original_pred is None
                    else original_pred * 1e3
                ),
                model_predicted_ms=(
                    None if model_pred is None else model_pred * 1e3
                ),
                measured_ms=measured,
                recorded_error=recorded_error,
                model_error=model_error,
                samples=len(samples),
                communication_delta_ms=comm_delta,
            ))

        recorded_total = float(
            sum(it.recorded_wall_ms for it in iterations)
        )
        replayed_total = float(
            sum(it.replayed_wall_ms for it in iterations)
        )
        recorded_rmsre = reconstruct_rmsre(ledger.entries)
        checks = {
            # the span-DAG no-op replay reproduces the recorded walls
            "noop_walls": (
                noop.wall_ms_series
                == [c.wall_ms for c in costs]
            ),
            # stored predicted_seconds reconstructs from the samples
            "predicted_seconds": predicted_consistent,
            # the sealed online RMSRE reconstructs from the entries
            "final_rmsre": (
                recorded_rmsre == ledger.final_rmsre
            ),
        }
        overridden = model is not None or topology is not None
        bit_identical = (
            not overridden
            and all(checks.values())
            and replayed_total == recorded_total
        )
        by_gpu = {
            gpu: {
                "count": len(rels),
                "rmsre": float(np.sqrt(
                    sum(r * r for r in rels) / len(rels)
                )),
                "mean_abs_rel_error": float(
                    sum(abs(r) for r in rels) / len(rels)
                ),
            }
            for gpu, rels in by_gpu_rel.items()
        }
        return ReplayRunResult(
            ref=str(ref),
            run_id=run_id,
            model_label=_model_label(model),
            topology_label=topology_label,
            recorded_total_ms=recorded_total,
            replayed_total_ms=replayed_total,
            iterations=iterations,
            checks=checks,
            bit_identical=bit_identical,
            recorded_rmsre=recorded_rmsre,
            model_rmsre=(
                float(np.sqrt(sq_sum / sq_n)) if sq_n else None
            ),
            by_gpu=by_gpu,
        )


def format_replay_result(result: ReplayRunResult) -> str:
    """Human-readable replay report (the ``repro replay`` output)."""
    what = []
    if result.model_label:
        what.append(f"model={result.model_label}")
    if result.topology_label:
        what.append(f"topology={result.topology_label}")
    scenario = ", ".join(what) if what else "original model"
    lines = [
        f"replay {result.run_id} [{scenario}]: "
        f"{result.recorded_total_ms:.4f} ms -> "
        f"{result.replayed_total_ms:.4f} ms "
        f"({result.delta_ms:+.4f} ms over "
        f"{len(result.iterations)} supersteps)",
    ]
    check_text = ", ".join(
        f"{name}={'ok' if passed else 'FAIL'}"
        for name, passed in result.checks.items()
    )
    verdict = (
        "bit-identical to the recording" if result.bit_identical
        else ("not bit-identical (override applied)"
              if (result.model_label or result.topology_label)
              else "NOT bit-identical")
    )
    lines.append(f"  invariants: {check_text} -> {verdict}")
    if result.recorded_rmsre is not None:
        rmsre_bits = [f"recorded {result.recorded_rmsre:.4f}"]
        if result.model_rmsre is not None:
            rmsre_bits.append(f"candidate {result.model_rmsre:.4f}")
        lines.append("  model RMSRE: " + " vs ".join(rmsre_bits))
    if result.by_gpu:
        worst = sorted(
            result.by_gpu.items(),
            key=lambda item: item[1]["rmsre"],
            reverse=True,
        )[:3]
        ranked = ", ".join(
            f"gpu{gpu} (rmsre {stats['rmsre']:.3g}, "
            f"{stats['count']} samples)"
            for gpu, stats in worst
        )
        lines.append(f"  worst-predicted GPUs: {ranked}")
    movers = sorted(
        (it for it in result.iterations if it.delta_ms != 0.0),
        key=lambda it: abs(it.delta_ms),
        reverse=True,
    )[:5]
    for it in movers:
        lines.append(
            f"  iter {it.iteration:>4d}: {it.recorded_wall_ms:.4f} -> "
            f"{it.replayed_wall_ms:.4f} ms ({it.delta_ms:+.4f})"
        )
    return "\n".join(lines)
