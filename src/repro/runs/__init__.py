"""Persistent run registry and cross-run regression diffs.

* :class:`RunRegistry` — archive a finished run (manifest + trace +
  per-iteration timeseries) under ``.repro/runs/<id>/``, look runs up
  by id/prefix/``latest``/path, and prune old ones.
* :func:`diff_manifests` — compare two recorded runs metric by metric
  with the perfharness noise guards; refuses incommensurable runs
  (different workload fingerprint) instead of printing garbage deltas.

The CLI surface is ``repro runs record|list|show|analyze|diff|gc``
plus ``--record`` on ``run``/``compare``/``profile``/``bench``.
"""

from repro.runs.registry import (
    DEFAULT_RUNS_ROOT,
    RUN_SCHEMA,
    RunRegistry,
    environment_info,
    provenance_fingerprint,
    workload_fingerprint,
)
from repro.runs.diff import (
    MetricDelta,
    MetricSpec,
    RUN_METRICS,
    RunDiff,
    diff_manifests,
    format_diff,
)

__all__ = [
    "RUN_SCHEMA",
    "DEFAULT_RUNS_ROOT",
    "RunRegistry",
    "workload_fingerprint",
    "provenance_fingerprint",
    "environment_info",
    "MetricSpec",
    "MetricDelta",
    "RUN_METRICS",
    "RunDiff",
    "diff_manifests",
    "format_diff",
]
