"""Cross-run regression diffs over recorded manifests.

``diff_manifests`` compares two run manifests metric by metric and
flags regressions using the same dual noise guard as the benchmark
gate (:mod:`repro.bench.perfharness`): a metric regresses only when it
moves by more than a *relative* threshold AND by more than an
*absolute* floor. The relative bar rejects "1.5x slower" noise framing
on microsecond-scale metrics; the absolute floor rejects the opposite
failure, where a 0.001 ms metric doubling trips a percentage gate.

Two manifests are only diffed when their **workload** fingerprints
match (engine, algorithm, graph, GPUs, partitioner, solver, cost
model, seeds) — otherwise the numbers were never comparable and the
diff raises :class:`~repro.errors.RunRegistryError` instead of
printing misleading deltas (``force=True`` overrides, for exploratory
cross-workload comparisons). Provenance differences (git SHA, package
versions) are *reported* but never block: comparing across commits is
what a regression diff is for.

Host-clock metrics (``real_decision_ms``) and behavioural counters
(stolen edges, group sizes) are shown as informational deltas only —
they vary across machines or describe policy, not performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench import perfharness
from repro.errors import RunRegistryError

__all__ = [
    "MetricDelta",
    "MetricSpec",
    "RunDiff",
    "RUN_METRICS",
    "diff_manifests",
    "format_diff",
]

#: Relative threshold shared with the benchmark gate.
DEFAULT_THRESHOLD = perfharness.DEFAULT_THRESHOLD


@dataclass(frozen=True)
class MetricSpec:
    """How one summary metric participates in a diff.

    ``key`` is a dotted path into ``manifest["summary"]``. ``floor``
    is the absolute-delta noise floor in the metric's own unit; a
    change below it never regresses no matter the ratio. Metrics with
    ``gated=False`` are displayed but cannot fail the diff.
    """

    key: str
    floor: float = 0.0
    gated: bool = True
    note: str = ""


#: Metrics compared for ``kind == "run"`` manifests. All virtual-clock
#: metrics are deterministic given the workload fingerprint, so the
#: thresholds here guard against *model* changes, not machine noise.
RUN_METRICS = (
    MetricSpec("total_ms", floor=1e-3),
    MetricSpec("iterations", floor=0.5),
    MetricSpec("stall_fraction", floor=0.02),
    MetricSpec("breakdown_ms.compute", floor=1e-3),
    MetricSpec("breakdown_ms.communication", floor=1e-3),
    MetricSpec("breakdown_ms.serialization", floor=1e-3),
    MetricSpec("breakdown_ms.sync", floor=1e-3),
    MetricSpec("breakdown_ms.overhead", floor=1e-3),
    MetricSpec("stolen_edges", gated=False, note="policy behaviour"),
    MetricSpec("fsteal_iterations", gated=False, note="policy behaviour"),
    MetricSpec("mean_group_size", gated=False, note="policy behaviour"),
    MetricSpec("min_group_size", gated=False, note="policy behaviour"),
    MetricSpec("real_decision_ms", gated=False,
               note="host clock; machine-dependent"),
    MetricSpec("decision_cache.hits", gated=False,
               note="amortization behaviour"),
    MetricSpec("decision_cache.misses", gated=False,
               note="amortization behaviour"),
    MetricSpec("decision_cache.invalidations", gated=False,
               note="amortization behaviour"),
    MetricSpec("decision_cache.warm_accepts", gated=False,
               note="amortization behaviour"),
    # fault-injection counters: absent on healthy runs (_lookup -> None)
    MetricSpec("chaos.faults_injected", gated=False,
               note="fault injection"),
    MetricSpec("chaos.evictions", gated=False, note="fault injection"),
    MetricSpec("chaos.solver_fallbacks", gated=False,
               note="fault injection"),
    MetricSpec("chaos.transfer_retries", gated=False,
               note="fault injection"),
    # SLO indicators: informational here (the hard gate is `repro slo
    # check` against a rule file); absent on pre-SLO manifests
    MetricSpec("slo.p50_iteration_ms", gated=False, note="SLO indicator"),
    MetricSpec("slo.p90_iteration_ms", gated=False, note="SLO indicator"),
    MetricSpec("slo.p99_iteration_ms", gated=False, note="SLO indicator"),
    MetricSpec("slo.min_gpu_utilization", gated=False,
               note="SLO indicator"),
    MetricSpec("slo.max_stall_fraction", gated=False,
               note="SLO indicator"),
    MetricSpec("slo.chaos_recovery_iterations", gated=False,
               note="SLO indicator"),
    MetricSpec("obs_overhead_pct", gated=False,
               note="host clock; machine-dependent"),
    # decision-ledger analytics: absent on pre-ledger manifests and on
    # stateless policies (_lookup -> None); informational — the model's
    # accuracy is audited, not gated, here
    MetricSpec("ledger.entries", gated=False, note="decision ledger"),
    MetricSpec("ledger.samples", gated=False, note="decision ledger"),
    MetricSpec("ledger.skipped_samples", gated=False,
               note="decision ledger"),
    MetricSpec("ledger.final_rmsre", gated=False, note="decision ledger"),
    MetricSpec("ledger.max_model_drift", gated=False,
               note="decision ledger"),
    MetricSpec("ledger.decision_error_p99", gated=False,
               note="decision ledger"),
    MetricSpec("ledger.live", gated=False, note="decision ledger"),
    MetricSpec("ledger.warm", gated=False, note="decision ledger"),
    MetricSpec("ledger.cached", gated=False, note="decision ledger"),
)


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two runs."""

    name: str
    base: Optional[float]
    current: Optional[float]
    gated: bool
    regressed: bool
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """``current / base`` where defined, else ``None``."""
        if self.base is None or self.current is None:
            return None
        if abs(self.base) < 1e-12:
            return None
        return self.current / self.base

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "name": self.name,
            "base": self.base,
            "current": self.current,
            "ratio": self.ratio,
            "gated": self.gated,
            "regressed": self.regressed,
            "note": self.note,
        }


@dataclass
class RunDiff:
    """Outcome of diffing two manifests."""

    base_id: str
    current_id: str
    kind: str
    deltas: List[MetricDelta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        """Deltas that tripped the gate."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """True when no gated metric regressed."""
        return not self.regressions

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "base": self.base_id,
            "current": self.current_id,
            "kind": self.kind,
            "ok": self.ok,
            "deltas": [d.as_dict() for d in self.deltas],
            "notes": list(self.notes),
        }


def _lookup(summary: Dict, dotted: str) -> Optional[float]:
    node = summary
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def _check_commensurable(base: Dict, current: Dict, force: bool) -> List[str]:
    """Notes about fingerprint differences; raises when they gate."""
    notes = []
    base_work = base.get("fingerprint", {}).get("workload", {})
    cur_work = current.get("fingerprint", {}).get("workload", {})
    mismatched = sorted(
        key for key in set(base_work) | set(cur_work)
        if base_work.get(key) != cur_work.get(key)
    )
    if mismatched:
        detail = ", ".join(
            f"{key}: {base_work.get(key)!r} vs {cur_work.get(key)!r}"
            for key in mismatched
        )
        if not force:
            raise RunRegistryError(
                "refusing to diff incommensurable runs — workload "
                f"fingerprints differ on {detail}. These numbers were "
                "never comparable; pass --force to diff anyway."
            )
        notes.append(f"workload mismatch (forced diff): {detail}")
    base_prov = base.get("fingerprint", {}).get("provenance", {})
    cur_prov = current.get("fingerprint", {}).get("provenance", {})
    for key in sorted(set(base_prov) | set(cur_prov)):
        if base_prov.get(key) != cur_prov.get(key):
            notes.append(
                f"provenance: {key} {base_prov.get(key)} -> "
                f"{cur_prov.get(key)}"
            )
    return notes


def _diff_run_kind(
    base: Dict,
    current: Dict,
    threshold: float,
) -> List[MetricDelta]:
    deltas = []
    for spec in RUN_METRICS:
        before = _lookup(base.get("summary", {}), spec.key)
        after = _lookup(current.get("summary", {}), spec.key)
        regressed = False
        if spec.gated and before is not None and after is not None:
            # Dual guard, mirroring perfharness.compare_reports: the
            # relative ratio must exceed the bar AND the raw delta
            # must clear the absolute noise floor.
            ratio = after / max(before, 1e-12)
            regressed = (
                ratio > 1.0 + threshold
                and (after - before) > spec.floor
            )
        deltas.append(MetricDelta(
            name=spec.key,
            base=before,
            current=after,
            gated=spec.gated,
            regressed=regressed,
            note=spec.note,
        ))
    return deltas


def _diff_bench_kind(
    base: Dict,
    current: Dict,
    threshold: float,
) -> List[MetricDelta]:
    base_report = base.get("report")
    cur_report = current.get("report")
    if not base_report or not cur_report:
        raise RunRegistryError(
            "bench manifest without an embedded report cannot be diffed"
        )
    regressions = {
        reg.name: reg
        for reg in perfharness.compare_reports(
            cur_report, base_report, threshold=threshold
        )
    }
    deltas = []
    names = sorted(
        set(base_report.get("benchmarks", {}))
        & set(cur_report.get("benchmarks", {}))
    )
    for name in names:
        deltas.append(MetricDelta(
            name=f"bench.{name}.score",
            base=float(base_report["benchmarks"][name]["score"]),
            current=float(cur_report["benchmarks"][name]["score"]),
            gated=True,
            regressed=name in regressions,
            note="machine-normalized score",
        ))
    return deltas


def diff_manifests(
    base: Dict,
    current: Dict,
    threshold: float = DEFAULT_THRESHOLD,
    force: bool = False,
) -> RunDiff:
    """Compare two manifests; flag regressions of ``current`` vs ``base``.

    Raises :class:`RunRegistryError` when the runs are incommensurable
    (different workload fingerprint or different manifest kinds) unless
    ``force`` is set.
    """
    base_kind = base.get("kind", "run")
    cur_kind = current.get("kind", "run")
    if base_kind != cur_kind:
        raise RunRegistryError(
            f"cannot diff a {base_kind!r} manifest against a "
            f"{cur_kind!r} manifest"
        )
    notes = _check_commensurable(base, current, force)
    if base_kind == "bench":
        deltas = _diff_bench_kind(base, current, threshold)
    else:
        deltas = _diff_run_kind(base, current, threshold)
    return RunDiff(
        base_id=str(base.get("id", "<base>")),
        current_id=str(current.get("id", "<current>")),
        kind=base_kind,
        deltas=deltas,
        notes=notes,
    )


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4f}"


def format_diff(diff: RunDiff, verbose: bool = True) -> str:
    """Human-readable diff table.

    With ``verbose=False`` only regressions and notes are shown — an
    identical pair of runs prints nothing but the OK line.
    """
    lines = [f"diff {diff.base_id} -> {diff.current_id} ({diff.kind})"]
    shown = diff.deltas if verbose else diff.regressions
    if shown:
        lines.append(
            f"  {'metric':30s} {'base':>12s} {'current':>12s} "
            f"{'ratio':>8s}  flag"
        )
    for delta in shown:
        ratio = delta.ratio
        ratio_text = f"{ratio:8.3f}" if ratio is not None else f"{'-':>8s}"
        flag = "REGRESSED" if delta.regressed else (
            "" if delta.gated else "info"
        )
        lines.append(
            f"  {delta.name:30s} {_fmt(delta.base):>12s} "
            f"{_fmt(delta.current):>12s} {ratio_text}  {flag}".rstrip()
        )
    for note in diff.notes:
        lines.append(f"  note: {note}")
    lines.append(
        "OK: no gated regressions" if diff.ok else
        f"FAIL: {len(diff.regressions)} metric(s) regressed beyond "
        f"threshold"
    )
    return "\n".join(lines)
